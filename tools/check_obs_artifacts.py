#!/usr/bin/env python
"""Schema check for the observability artifacts the CLI exports.

CI runs an instrumented churn replay (``python -m repro replay ... --trace
trace.json --metrics-out metrics.json``) and then validates both files with
this tool, so a refactor that silently changes the artifact layout — renamed
stages, dropped cache counters, a trace that no longer nests — fails the
build instead of producing dashboards that read from keys that no longer
exist.

Checked for ``--metrics-out`` files:

* top-level blocks: ``repro_version``, ``counters``, ``gauges``,
  ``histograms``, ``stages``, ``stage_coverage``, ``cache_hit_ratios``;
* every histogram summary carries the stable BENCH latency fields
  (``count``/``mean_seconds``/``p50``/``p95``/``p99``/``max_seconds``)
  plus the registry extras ``sum_seconds`` and ``sampled``;
* the four ``service.apply.*`` stages are present with non-negative
  inclusive/exclusive seconds and ``stage_coverage`` is within [0, 1+eps];
* each cache-hit entry has consistent ``hits``/``misses``/``hit_ratio``.

Checked for ``--trace`` files (either export flavour):

* Chrome trace-event JSON: a ``traceEvents`` list of complete (``ph: "X"``)
  events with microsecond ``ts``/``dur``;
* JSONL: one span record per line with ids, timing, depth, and attrs —
  and every non-root ``parent_id`` resolving to another span in the file.

``BENCH_load.json`` artifacts (``kind`` ``"load_test"``) are validated
against :func:`repro.serve.loadgen.check_load` — schema shape, the qps
floor, per-kind latency summaries, pinned bit-identity and the
monotonic-observation bar — plus the stable latency fields per query kind.

``BENCH_knn.json`` artifacts (``kind`` ``"knn_bench"``) are validated
against :func:`repro.index.bench.check_knn` — schema shape, per-rung
recall@k and speedup floors — plus the stable latency fields per index.

``BENCH_streaming.json`` artifacts are recognised too, in both formats:

* the throughput-ladder payload (``schema_version`` 2, a ``rungs`` list) is
  validated against :func:`repro.service.ladder.check_ladder` — schema
  shape, per-rung throughput floors and both exactness bars — so the CI
  perf job fails on a floor violation even when the producing run forgot
  to assert;
* the old single-run replay report (``python -m repro bench`` still emits
  it) keeps passing: throughput/latency fields plus, when present, a
  honoured one-shot verification tolerance.

Run from the repository root (CI does)::

    python tools/check_obs_artifacts.py metrics.json trace.json
    python tools/check_obs_artifacts.py benchmarks/results/BENCH_streaming.json
    python tools/check_obs_artifacts.py benchmarks/results/BENCH_load.json

Exit code 0 when every named artifact is well-formed; 1 with one line per
violation otherwise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

LATENCY_FIELDS = {
    "count", "mean_seconds", "p50_seconds", "p95_seconds",
    "p99_seconds", "max_seconds",
}
HISTOGRAM_FIELDS = LATENCY_FIELDS | {"sum_seconds", "sampled"}
METRICS_BLOCKS = {
    "repro_version", "counters", "gauges", "histograms",
    "stages", "stage_coverage", "cache_hit_ratios",
}
SERVICE_STAGES = {
    "service.apply.decode",
    "service.apply.engine_sync",
    "service.apply.embed",
    "service.apply.store_commit",
}
TRACE_EVENT_FIELDS = {"name", "ph", "ts", "dur", "pid", "tid"}
SPAN_FIELDS = {
    "span_id", "parent_id", "name", "start", "duration",
    "depth", "thread_id", "attrs",
}


def _number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_metrics(path: Path) -> list[str]:
    """All schema violations of one ``--metrics-out`` file (empty = clean)."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"{path}: metrics payload is not a JSON object"]
    missing = METRICS_BLOCKS - payload.keys()
    if missing:
        problems.append(f"{path}: missing top-level blocks {sorted(missing)}")
        return problems
    for name, value in payload["counters"].items():
        if not isinstance(value, int) or value < 0:
            problems.append(f"{path}: counter {name!r} is not a non-negative int")
    for name, summary in payload["histograms"].items():
        if not isinstance(summary, dict) or not HISTOGRAM_FIELDS <= summary.keys():
            problems.append(
                f"{path}: histogram {name!r} lacks the stable summary fields "
                f"{sorted(HISTOGRAM_FIELDS - set(summary or ()))}"
            )
            continue
        if summary["count"] > 0 and not (
            summary["p50_seconds"] <= summary["p95_seconds"]
            <= summary["p99_seconds"] <= summary["max_seconds"]
        ):
            problems.append(f"{path}: histogram {name!r} percentiles are not ordered")
    stages = payload["stages"]
    missing_stages = SERVICE_STAGES - stages.keys()
    if missing_stages:
        problems.append(f"{path}: missing apply stages {sorted(missing_stages)}")
    for name, totals in stages.items():
        for field in ("calls", "inclusive_seconds", "exclusive_seconds"):
            if not _number(totals.get(field)) or totals[field] < 0:
                problems.append(f"{path}: stage {name!r} field {field!r} is invalid")
    coverage = payload["stage_coverage"]
    if not _number(coverage) or not 0.0 <= coverage <= 1.0 + 1e-6:
        problems.append(f"{path}: stage_coverage {coverage!r} is outside [0, 1]")
    for kind, entry in payload["cache_hit_ratios"].items():
        if not isinstance(entry, dict) or {"hits", "misses", "hit_ratio"} - entry.keys():
            problems.append(f"{path}: cache entry {kind!r} lacks hits/misses/hit_ratio")
            continue
        total = entry["hits"] + entry["misses"]
        if total <= 0 or abs(entry["hit_ratio"] - entry["hits"] / total) > 1e-9:
            problems.append(f"{path}: cache entry {kind!r} ratio is inconsistent")
    return problems


def _check_span(path: Path, payload: dict, line: int) -> list[str]:
    problems: list[str] = []
    missing = SPAN_FIELDS - payload.keys()
    if missing:
        return [f"{path}:{line}: span record lacks fields {sorted(missing)}"]
    if not _number(payload["start"]) or not _number(payload["duration"]):
        problems.append(f"{path}:{line}: span timing is not numeric")
    elif payload["start"] < 0 or payload["duration"] < 0:
        problems.append(f"{path}:{line}: span timing is negative")
    if not isinstance(payload["depth"], int) or payload["depth"] < 0:
        problems.append(f"{path}:{line}: span depth is not a non-negative int")
    if not isinstance(payload["attrs"], dict):
        problems.append(f"{path}:{line}: span attrs is not an object")
    return problems


def check_trace(path: Path) -> list[str]:
    """All violations of one trace file, JSONL or Chrome (empty = clean)."""
    text = path.read_text(encoding="utf-8")
    if path.suffix == ".jsonl":
        problems: list[str] = []
        span_ids: set[int] = set()
        parents: list[tuple[int, int]] = []
        for line_no, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            payload = json.loads(line)
            problems.extend(_check_span(path, payload, line_no))
            if "span_id" in payload:
                span_ids.add(payload["span_id"])
            if payload.get("parent_id") is not None:
                parents.append((line_no, payload["parent_id"]))
        for line_no, parent_id in parents:
            if parent_id not in span_ids:
                problems.append(
                    f"{path}:{line_no}: parent span {parent_id} is not in the file"
                )
        return problems
    payload = json.loads(text)
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        return [f"{path}: Chrome trace lacks a 'traceEvents' list"]
    problems = []
    for i, event in enumerate(payload["traceEvents"]):
        missing = TRACE_EVENT_FIELDS - set(event)
        if missing:
            problems.append(f"{path}: event {i} lacks fields {sorted(missing)}")
            continue
        if event["ph"] != "X":
            problems.append(f"{path}: event {i} is not a complete event (ph=X)")
        if not _number(event["ts"]) or not _number(event["dur"]) or event["dur"] < 0:
            problems.append(f"{path}: event {i} has invalid ts/dur")
    return problems


def check_ladder_payload(path: Path, payload: dict) -> list[str]:
    """Violations of one throughput-ladder ``BENCH_streaming.json``."""
    try:
        from repro.service.ladder import check_ladder
    except ModuleNotFoundError:  # invoked without PYTHONPATH=src; self-locate
        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
        from repro.service.ladder import check_ladder

    problems = [f"{path}: {problem}" for problem in check_ladder(payload)]
    for rung in payload.get("rungs", ()):
        label = f"{path}: rung scale={rung.get('scale')}"
        latency = rung.get("latency")
        if not isinstance(latency, dict) or LATENCY_FIELDS - latency.keys():
            problems.append(f"{label}: latency summary lacks the stable fields")
        if not _number(rung.get("facts_per_second")):
            problems.append(f"{label}: facts_per_second is not numeric")
    return problems


def check_load_payload(path: Path, payload: dict) -> list[str]:
    """Violations of one serve-tier ``BENCH_load.json`` (empty = clean)."""
    try:
        from repro.serve.loadgen import check_load
    except ModuleNotFoundError:  # invoked without PYTHONPATH=src; self-locate
        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
        from repro.serve.loadgen import check_load

    problems = [f"{path}: {problem}" for problem in check_load(payload)]
    for kind, entry in payload.get("per_kind", {}).items():
        latency = entry.get("latency") if isinstance(entry, dict) else None
        if not isinstance(latency, dict) or LATENCY_FIELDS - latency.keys():
            problems.append(
                f"{path}: query kind {kind!r} latency summary lacks the "
                "stable fields"
            )
    if not _number(payload.get("qps")):
        problems.append(f"{path}: qps is not numeric")
    return problems


def check_knn_payload(path: Path, payload: dict) -> list[str]:
    """Violations of one kNN index ladder ``BENCH_knn.json`` (empty = clean)."""
    try:
        from repro.index.bench import check_knn
    except ModuleNotFoundError:  # invoked without PYTHONPATH=src; self-locate
        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
        from repro.index.bench import check_knn

    problems = [f"{path}: {problem}" for problem in check_knn(payload)]
    for rung in payload.get("rungs", ()):
        label = f"{path}: rung scale={rung.get('scale')}"
        for index in ("exact", "ivf"):
            entry = rung.get(index)
            latency = entry.get("latency") if isinstance(entry, dict) else None
            if not isinstance(latency, dict) or LATENCY_FIELDS - latency.keys():
                problems.append(
                    f"{label}: {index} latency summary lacks the stable fields"
                )
        if not _number(rung.get("speedup")):
            problems.append(f"{label}: speedup is not numeric")
    return problems


def check_single_run_payload(path: Path, payload: dict) -> list[str]:
    """Violations of one old-format (single-run) ``BENCH_streaming.json``."""
    problems: list[str] = []
    for field in ("repro_version", "dataset", "facts_per_second", "latency"):
        if field not in payload:
            problems.append(f"{path}: single-run report lacks {field!r}")
    latency = payload.get("latency")
    if isinstance(latency, dict) and LATENCY_FIELDS - latency.keys():
        problems.append(f"{path}: latency summary lacks the stable fields")
    diff = payload.get("one_shot_max_abs_diff")
    tolerance = payload.get("one_shot_tolerance")
    if diff is not None and _number(tolerance) and diff > tolerance:
        problems.append(
            f"{path}: one-shot difference {diff:.2e} exceeds the recorded "
            f"tolerance {tolerance:.0e}"
        )
    return problems


def check_artifact(path: Path) -> list[str]:
    """Dispatch on content: metrics, trace, or benchmark-report files."""
    if not path.is_file():
        return [f"{path}: no such file"]
    if path.suffix == ".jsonl":
        return check_trace(path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    if isinstance(payload, dict) and "traceEvents" in payload:
        return check_trace(path)
    if isinstance(payload, dict) and payload.get("kind") == "load_test":
        return check_load_payload(path, payload)
    # must precede the ladder check: a knn payload also carries a rungs list
    if isinstance(payload, dict) and payload.get("kind") == "knn_bench":
        return check_knn_payload(path, payload)
    if isinstance(payload, dict) and "rungs" in payload:
        return check_ladder_payload(path, payload)
    if isinstance(payload, dict) and "facts_per_second" in payload:
        return check_single_run_payload(path, payload)
    return check_metrics(path)


def main(argv: list[str] | None = None) -> int:
    paths = [Path(arg) for arg in (argv if argv is not None else sys.argv[1:])]
    if not paths:
        print("usage: check_obs_artifacts.py METRICS_OR_TRACE_FILE [...]")
        return 2
    problems: list[str] = []
    for path in paths:
        problems.extend(check_artifact(path))
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} observability artifact violation(s)")
        return 1
    print(f"observability artifacts: clean ({len(paths)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Docstring lint: every module and public class must document its contract.

Checked over ``src/repro`` (and ``examples/``):

* every module has a header docstring (at least 20 characters — a bare
  title does not state a contract);
* every public (non-underscore) module-level class has a docstring.

Run from the repository root (CI does)::

    python tools/lint_docstrings.py

Exit code 0 when clean; 1 with one line per violation otherwise.  The
test suite runs the same check (``tests/docs/test_docs_quality.py``), so
a missing docstring fails locally before it fails CI.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

MIN_MODULE_DOCSTRING = 20

CHECKED_TREES = ("src/repro", "examples")


def check_file(path: Path) -> list[str]:
    """All docstring violations of one Python file (empty when clean)."""
    problems: list[str] = []
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    module_doc = ast.get_docstring(tree)
    if not module_doc:
        problems.append(f"{path}: missing module docstring")
    elif len(module_doc.strip()) < MIN_MODULE_DOCSTRING:
        problems.append(
            f"{path}: module docstring is too short to state a contract "
            f"({len(module_doc.strip())} characters)"
        )
    for node in tree.body:
        if (
            isinstance(node, ast.ClassDef)
            and not node.name.startswith("_")
            and not ast.get_docstring(node)
        ):
            problems.append(
                f"{path}:{node.lineno}: public class {node.name!r} has no docstring"
            )
    return problems


def run(root: Path | None = None) -> list[str]:
    """Check every Python file of the linted trees; returns all violations."""
    root = root or Path(__file__).resolve().parents[1]
    problems: list[str] = []
    for tree in CHECKED_TREES:
        base = root / tree
        for path in sorted(base.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            problems.extend(check_file(path))
    return problems


def main() -> int:
    problems = run()
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} docstring violation(s)")
        return 1
    print("docstring lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

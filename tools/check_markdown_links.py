#!/usr/bin/env python
"""Markdown link check: every intra-repository link must resolve.

Scans every tracked ``*.md`` file in the repository for inline links and
images (``[text](target)`` / ``![alt](target)``) and verifies that each
*relative* target exists on disk (anchors are stripped; external
``http(s)://`` / ``mailto:`` targets and pure in-page ``#anchors`` are
skipped, as are links inside fenced code blocks).

Run from the repository root (CI does)::

    python tools/check_markdown_links.py

Exit code 0 when every link resolves; 1 with one line per broken link
otherwise.  The test suite runs the same check
(``tests/docs/test_docs_quality.py``), so a renamed document breaks the
build the moment a stale link points at it.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE_RE = re.compile(r"^(```|~~~)")
_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")
_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules"}


def links_in(text: str) -> list[tuple[int, str]]:
    """All ``(line_number, target)`` pairs outside fenced code blocks."""
    found: list[tuple[int, str]] = []
    in_fence = False
    for number, line in enumerate(text.splitlines(), start=1):
        if _FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_RE.finditer(line):
            found.append((number, match.group(1)))
    return found


def check_file(path: Path, root: Path) -> list[str]:
    """All broken relative links of one markdown file (empty when clean)."""
    problems: list[str] = []
    for number, target in links_in(path.read_text(encoding="utf-8")):
        if target.startswith(_SKIP_PREFIXES):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            try:
                shown = resolved.relative_to(root)
            except ValueError:  # link escapes the repository
                shown = resolved
            problems.append(
                f"{path.relative_to(root)}:{number}: broken link {target!r} "
                f"(resolves to {shown}, which does not exist)"
            )
    return problems


def run(root: Path | None = None) -> list[str]:
    """Check every markdown file under ``root``; returns all broken links."""
    root = (root or Path(__file__).resolve().parents[1]).resolve()
    problems: list[str] = []
    for path in sorted(root.rglob("*.md")):
        if _SKIP_DIRS.intersection(path.parts):
            continue
        problems.extend(check_file(path, root))
    return problems


def main() -> int:
    problems = run()
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} broken link(s)")
        return 1
    print("markdown links: all resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())

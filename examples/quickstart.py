"""Quickstart: embed the Figure-2 movie database and extend it to a new tuple.

Run with::

    python examples/quickstart.py

The script builds the small movie database from Figure 2 of the paper,
trains a FoRWaRD embedding of the MOVIES relation, then simulates the
arrival of a new collaboration (Example 3.1) and embeds the new fact
without touching any existing embedding.
"""

from __future__ import annotations

import numpy as np

from repro import (
    ForwardConfig,
    ForwardDynamicExtender,
    ForwardEmbedder,
    embedding_drift,
)
from repro.datasets.movies import movies_database


def main() -> None:
    db = movies_database()
    print("Database:", db)

    # --- static phase -------------------------------------------------------
    config = ForwardConfig(
        dimension=16, n_samples=300, batch_size=512, max_walk_length=2, epochs=10,
        learning_rate=0.02, n_new_samples=50,
    )
    model = ForwardEmbedder(db, "MOVIES", config, rng=0).fit()
    embedding_before = model.embedding()
    print(f"Trained FoRWaRD on {len(embedding_before)} movies "
          f"({len(model.targets)} walk targets, final loss {model.loss_history[-1]:.4f})")

    titanic = db.lookup_by_key("MOVIES", ["m01"])
    interstellar = db.lookup_by_key("MOVIES", ["m04"])
    inception = db.lookup_by_key("MOVIES", ["m02"])

    def cosine(a, b):
        return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b)))

    print("cos(Interstellar, Inception)  =",
          round(cosine(model.vector(interstellar), model.vector(inception)), 3))
    print("cos(Interstellar, Titanic)    =",
          round(cosine(model.vector(interstellar), model.vector(titanic)), 3))

    # --- dynamic phase (Example 3.1: a new collaboration arrives) ------------
    new_movie = db.insert(
        "MOVIES",
        {"mid": "m07", "studio": "s03", "title": "Dunkirk", "genre": "Drama", "budget": 100},
    )
    db.insert("COLLABORATIONS", {"actor1": "a03", "actor2": "a05", "movie": "m07"})

    extender = ForwardDynamicExtender(model, db, recompute_old_paths=True, rng=0)
    new_vectors = extender.extend([new_movie])
    print(f"\nEmbedded the newly inserted movie {new_movie['title']!r}: "
          f"vector of dimension {new_vectors.vector(new_movie).shape[0]}")

    drift = embedding_drift(embedding_before, model.embedding())
    print(f"Drift of existing embeddings after the extension: {drift.max_drift} "
          "(stability requires exactly 0.0)")


if __name__ == "__main__":
    main()

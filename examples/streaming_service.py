"""Serving-layer quickstart: a live embedding service over a growing database.

Where ``dynamic_insertion.py`` runs the paper's protocol as an offline
experiment, this script runs it the way a server would: newly discovered
genes arrive on a change feed, an :class:`EmbeddingService` applies each
batch — insert, incremental engine append, dynamic extension — and commits
one immutable store version per batch.  Queries (k-nearest-neighbour,
batched fetch) run against versioned snapshots that never change under
later applies, and the whole serving state (store, compiled engine, model)
survives a process restart.

Run with::

    python examples/streaming_service.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import ForwardConfig, ForwardEmbedder, WalkEngine, load_dataset
from repro.core import load_forward_model, save_forward_model
from repro.dynamic import partition_dataset
from repro.service import EmbeddingService, EmbeddingStore, partition_feed


def main(scale: float = 0.12, config: ForwardConfig | None = None) -> None:
    config = config or ForwardConfig(
        dimension=32, n_samples=1500, batch_size=2048, max_walk_length=2, epochs=15,
        learning_rate=0.01, n_new_samples=60,
    )
    dataset = load_dataset("genes", scale=scale, seed=0)
    partition = partition_dataset(dataset, ratio_new=0.2, rng=0)
    print("Dataset:", dataset)
    print(f"Serving {partition.num_old_prediction_facts} genes; "
          f"{partition.num_new_prediction_facts} more will arrive on the feed.")

    # --- bring the service up ------------------------------------------------
    engine = WalkEngine(partition.db)  # one shared compiled engine
    model = ForwardEmbedder(
        partition.db, dataset.prediction_relation, config, rng=0, engine=engine
    ).fit()
    service = EmbeddingService(model, partition.db, engine=engine, policy="recompute", seed=0)
    print(f"Store baseline committed: version {service.store.version} "
          f"({service.store.head.num_facts} embeddings).")

    # --- stream the feed -----------------------------------------------------
    feed = partition_feed(partition, group_size=max(1, len(partition.new_batches) // 5))
    for batch in feed:
        outcome = service.apply(batch)
        print(f"  applied {batch.batch_id}: +{outcome.facts_inserted} facts, "
              f"{outcome.facts_embedded} embeddings -> store v{outcome.store_version} "
              f"({outcome.seconds * 1000:.1f} ms)")
    stats = service.stats(feed)
    print(f"Caught up: lag {stats.feed_lag}, {stats.facts_per_second:.0f} facts/s, "
          f"version skew {stats.version_skew}.")

    # --- query a versioned snapshot ------------------------------------------
    head = service.store.head
    new_gene_id = int(partition.new_prediction_ids[0])
    neighbours = head.nearest(new_gene_id, k=3, relation=dataset.prediction_relation)
    print(f"Nearest neighbours of newly arrived gene {new_gene_id}:")
    for fact_id, score in neighbours:
        print(f"  gene {fact_id}  cosine {score:.3f}")

    # --- restart: everything serving-critical persists -----------------------
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        service.store.save(tmp / "store")
        engine.save(tmp / "engine.npz")          # compiled CSR arrays + codes
        save_forward_model(model, tmp / "model")  # φ, ψ, kernel state

        warm_engine = WalkEngine.load(partition.db, tmp / "engine.npz")
        restored_model = load_forward_model(tmp / "model", partition.db)
        restarted = EmbeddingService(
            restored_model, partition.db, engine=warm_engine,
            store=EmbeddingStore.load(tmp / "store"), policy="recompute", seed=0,
        )
        replayed = restarted.sync(feed)  # at-least-once redelivery after restart
        print(f"After restart: store v{restarted.store.version}, "
              f"{sum(o.applied for o in replayed)} of {len(replayed)} redelivered "
              f"batches re-applied (idempotent).")


if __name__ == "__main__":
    main()

"""The unified estimator API, end to end on one dataset.

Everything the other examples do through the core classes, done through
the single surface every consumer now shares: ``make_embedder`` specs,
the ``fit / transform / partial_fit`` protocol, and the same fitted
estimator handed straight to the online :class:`EmbeddingService`.

Run with::

    python examples/unified_api.py
"""

from __future__ import annotations

import numpy as np

from repro.api import available_methods, make_embedder
from repro.datasets import load_dataset
from repro.dynamic import partition_dataset
from repro.service import EmbeddingService, partition_feed


def main(scale: float = 0.1, seed: int = 0, spec: str | None = None) -> None:
    spec = spec or "forward(dimension=16, n_samples=400, batch_size=1024, epochs=4)"
    print("Registered methods:", ", ".join(available_methods()))
    print("Using spec:", spec)

    dataset = load_dataset("genes", scale=scale, seed=seed)
    partition = partition_dataset(dataset, ratio_new=0.2, rng=seed)

    # --- static phase: one estimator, sklearn-shaped -----------------------
    embedder = make_embedder(spec)
    embedder.fit(partition.db, dataset.prediction_relation, rng=seed)
    embedding = embedder.transform()
    print(f"fit: {len(embedding)} facts embedded in R^{embedder.dimension}")

    # Reproducibility is part of the contract: the same spec and seed give
    # bit-identical embeddings.
    twin_partition = partition_dataset(dataset, ratio_new=0.2, rng=seed)
    twin = make_embedder(spec)
    twin.fit(twin_partition.db, dataset.prediction_relation, rng=seed)
    twin_embedding = twin.transform()
    identical = all(
        np.array_equal(embedding.vector(fid), twin_embedding.vector(fid))
        for fid in embedding.fact_ids
    )
    print("two fits of the same spec are bit-identical:", identical)

    # --- dynamic phase: the same estimator drives the online service -------
    service = EmbeddingService(embedder, partition.db, policy="recompute", seed=seed)
    feed = partition_feed(partition, group_size=4)
    service.sync(feed)
    stats = service.stats(feed)
    print(
        f"served {stats.batches_applied} feed batches: "
        f"{stats.facts_inserted} facts inserted, "
        f"{stats.facts_embedded} embedded, store at version {stats.store_version}, "
        f"feed lag {stats.feed_lag}"
    )

    # Trained embeddings never drift — the paper's stability guarantee.
    head = service.store.head
    stable = all(
        np.array_equal(head.vector(fid), embedding.vector(fid))
        for fid in embedding.fact_ids
    )
    print("trained embeddings unchanged after streaming:", stable)


if __name__ == "__main__":
    main()

"""Embedding your own relational database.

Shows the full public API surface a downstream user needs: define a schema
with key and foreign-key constraints, load facts, choose per-attribute
kernels, train both embedding methods, and persist the database to disk.

Run with::

    python examples/custom_database.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    Database,
    ForeignKey,
    ForwardConfig,
    ForwardEmbedder,
    Node2VecConfig,
    Node2VecEmbedder,
    RelationSchema,
    Schema,
)
from repro.db import AttributeType, save_database_csv_dir
from repro.kernels import EditDistanceKernel, default_kernels


def build_database() -> Database:
    """A tiny order-management database with two foreign keys."""
    schema = Schema(
        [
            RelationSchema(
                "CUSTOMERS",
                [("cid", AttributeType.IDENTIFIER), ("name", AttributeType.TEXT),
                 ("segment", AttributeType.CATEGORICAL)],
                key=["cid"],
            ),
            RelationSchema(
                "PRODUCTS",
                [("pid", AttributeType.IDENTIFIER), ("category", AttributeType.CATEGORICAL),
                 ("price", AttributeType.NUMERIC)],
                key=["pid"],
            ),
            RelationSchema(
                "ORDERS",
                [("oid", AttributeType.IDENTIFIER), ("customer", AttributeType.IDENTIFIER),
                 ("product", AttributeType.IDENTIFIER), ("quantity", AttributeType.NUMERIC)],
                key=["oid"],
            ),
        ],
        [
            ForeignKey("ORDERS", ("customer",), "CUSTOMERS", ("cid",)),
            ForeignKey("ORDERS", ("product",), "PRODUCTS", ("pid",)),
        ],
    )
    db = Database(schema)
    db.insert_many("CUSTOMERS", [
        {"cid": f"c{i}", "name": f"Customer {i}", "segment": "retail" if i % 2 else "business"}
        for i in range(12)
    ])
    db.insert_many("PRODUCTS", [
        {"pid": f"p{i}", "category": ["tools", "toys", "food"][i % 3], "price": 5.0 + 3 * i}
        for i in range(9)
    ])
    db.insert_many("ORDERS", [
        {"oid": f"o{i}", "customer": f"c{i % 12}", "product": f"p{(i * 7) % 9}",
         "quantity": 1 + i % 4}
        for i in range(60)
    ])
    return db


def main() -> None:
    db = build_database()
    print("Custom database:", db)
    db.require_consistent()

    # Kernels: defaults give Gaussian kernels to numeric columns; we also show
    # how to override a text column with an edit-distance kernel.
    kernels = default_kernels(db)
    kernels.register("CUSTOMERS", "name", EditDistanceKernel())

    forward = ForwardEmbedder(
        db,
        "CUSTOMERS",
        ForwardConfig(dimension=16, n_samples=300, batch_size=1024, max_walk_length=2,
                      epochs=10, learning_rate=0.02, n_new_samples=50),
        kernels=kernels,
        rng=0,
    ).fit()
    print(f"FoRWaRD embedded {len(forward.embedding())} customers "
          f"using {len(forward.targets)} walk targets.")

    node2vec = Node2VecEmbedder(
        db,
        Node2VecConfig(dimension=16, walks_per_node=8, walk_length=10, window_size=3,
                       negatives_per_positive=5, batch_size=4096, epochs=3),
        rng=0,
    ).fit()
    print(f"Node2Vec embedded all {len(node2vec.embedding())} facts of the database.")

    with tempfile.TemporaryDirectory() as tmp:
        target = Path(tmp) / "orders_db"
        save_database_csv_dir(db, target)
        print("Database exported to CSV:", sorted(p.name for p in target.iterdir()))


if __name__ == "__main__":
    main()

"""Dynamic-database scenario: a biology database that keeps growing.

This example reproduces the paper's dynamic protocol on the (synthetic)
Genes dataset: train an embedding and a downstream classifier on the current
database, then stream in newly discovered genes one at a time — each with
its laboratory records and interactions — embedding every new tuple on
arrival while keeping all existing embeddings frozen.

Run with::

    python examples/dynamic_insertion.py
"""

from __future__ import annotations

from repro import ForwardConfig
from repro.datasets import load_dataset
from repro.dynamic import partition_dataset, replay_one_by_one
from repro.evaluation import ForwardMethod
from repro.evaluation.downstream import DownstreamClassifier, align_embedding


def main(scale: float = 0.15, config: ForwardConfig | None = None) -> None:
    dataset = load_dataset("genes", scale=scale, seed=0)
    labels = dataset.labels()
    print("Dataset:", dataset)

    # 20% of the genes will arrive "in the future".
    partition = partition_dataset(dataset, ratio_new=0.2, rng=0)
    print(f"Old prediction tuples: {partition.num_old_prediction_facts}, "
          f"arriving later: {partition.num_new_prediction_facts} "
          f"(plus {len(partition.new_facts) - partition.num_new_prediction_facts} related facts)")

    method = ForwardMethod(config or ForwardConfig(
        dimension=32, n_samples=1500, batch_size=2048, max_walk_length=2, epochs=15,
        learning_rate=0.01, n_new_samples=200,
    ))
    model = method.fit(partition.db, dataset.prediction_relation, rng=0)

    old_facts = partition.db.facts(dataset.prediction_relation)
    classifier = DownstreamClassifier()
    classifier.train(align_embedding(method.embedding(model, old_facts), labels))
    print("Downstream classifier trained on the old data.")

    extender = method.make_extender(model, partition.db, recompute_old_paths=False, rng=0)
    arrived = []

    def on_batch(batch):
        extender.notify_inserted(batch)
        extender.extend(batch)
        arrived.extend(f for f in batch if f.relation == dataset.prediction_relation)

    replay_one_by_one(partition, on_batch)
    print(f"Streamed in {len(arrived)} new genes one by one.")

    all_facts = partition.db.facts(dataset.prediction_relation)
    embedding_after = method.embedding(model, all_facts)
    new_data = align_embedding(embedding_after, labels, facts=arrived)
    accuracy = classifier.accuracy(new_data)
    baseline = max(
        sum(1 for v in labels.values() if v == label) for label in set(labels.values())
    ) / len(labels)
    print(f"Accuracy on the newly arrived genes: {accuracy:.2%} "
          f"(majority baseline {baseline:.2%})")


if __name__ == "__main__":
    main()

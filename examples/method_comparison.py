"""Compare FoRWaRD and the Node2Vec adaptation on a geographical workload.

Reproduces a single row of Table III (static accuracy) and of Table IV
(dynamic accuracy at 10% new data) on the synthetic World dataset, at a
reduced scale so the script finishes in a couple of minutes on a laptop.

Run with::

    python examples/method_comparison.py
"""

from __future__ import annotations

from repro import ForwardConfig, Node2VecConfig
from repro.datasets import load_dataset
from repro.evaluation import (
    ForwardMethod,
    Node2VecMethod,
    format_dynamic_table,
    format_static_table,
    run_dynamic_experiment,
    run_static_experiment,
)


def main(
    scale: float = 0.3,
    n_splits: int = 5,
    n_runs: int = 2,
    forward_config: ForwardConfig | None = None,
    node2vec_config: Node2VecConfig | None = None,
) -> None:
    dataset = load_dataset("world", scale=scale, seed=0)
    print("Dataset:", dataset)

    forward = ForwardMethod(forward_config or ForwardConfig(
        dimension=32, n_samples=1000, batch_size=2048, max_walk_length=2, epochs=12,
        learning_rate=0.01, n_new_samples=100,
    ))
    node2vec = Node2VecMethod(node2vec_config or Node2VecConfig(
        dimension=32, walks_per_node=10, walk_length=15, window_size=4,
        negatives_per_positive=8, batch_size=8192, epochs=4, dynamic_epochs=3,
        dynamic_walks_per_node=10,
    ))

    print("\n=== Static experiment (Table III style) ===")
    static = run_static_experiment(
        dataset, [forward, node2vec], n_splits=n_splits, fresh_embedding_per_fold=False, rng=0
    )
    print(format_static_table(static))

    print("\n=== Dynamic experiment at 10% new data (Table IV style) ===")
    dynamic = [
        run_dynamic_experiment(dataset, method, ratio_new=0.1, mode=mode, n_runs=n_runs, rng=1)
        for method in (forward, node2vec)
        for mode in ("all_at_once", "one_by_one")
    ]
    print(format_dynamic_table(dynamic))
    print("\nAll runs kept existing embeddings perfectly stable:",
          all(run.max_drift == 0.0 for result in dynamic for run in result.runs))


if __name__ == "__main__":
    main()

"""Ingestion quickstart: plain CSV files → typed database → embeddings → kNN.

This example shows the third entry point of the library (after the offline
experiments and the streaming service): bringing *your own* relational
data in.  It writes a tiny CSV corpus — two tables with an implicit
foreign key and no schema information whatsoever — into a temporary
directory, then:

1. ingests it (:func:`repro.io.ingest_csv_dir`): per-column types,
   primary keys and the foreign key are all inferred from the data and
   explained in the inference report;
2. trains FoRWaRD embeddings on one relation of the resulting database;
3. answers a nearest-neighbour query over the embeddings;
4. replays the tail of the ingested table through the online embedding
   service (:func:`repro.io.stream_table`), the way external data would
   arrive in production.

Run with::

    python examples/ingest_csv.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import ForwardConfig, ForwardEmbedder
from repro.core import most_similar
from repro.io import ingest_csv_dir, stream_table
from repro.service import EmbeddingService

PLAYERS = """player_id,team,name,rating
p01,t1,Quick Quinn,1510
p02,t1,Steady Sam,1492
p03,t1,Lofty Lee,1475
p04,t2,Rapid Ray,1603
p05,t2,Calm Cam,1588
p06,t2,Bold Bo,1621
p07,t3,Merry Mo,1405
p08,t3,Witty Wes,1398
p09,t3,Jolly Jo,1412
p10,t1,Brisk Bea,1501
p11,t2,Keen Kit,1599
p12,t3,Sunny Sol,1401
"""

TEAMS = """team_id,city,founded
t1,Aachen,1901
t2,Bonn,1925
t3,Cologne,1948
"""


def main(scale: float | None = None, config: ForwardConfig | None = None) -> None:
    del scale  # the corpus has one fixed size; kept for the smoke-test harness
    config = config or ForwardConfig(
        dimension=16, n_samples=400, batch_size=1024, max_walk_length=2,
        epochs=6, learning_rate=0.02, n_new_samples=30,
    )
    with tempfile.TemporaryDirectory() as tmp:
        corpus = Path(tmp) / "corpus"
        corpus.mkdir()
        (corpus / "players.csv").write_text(PLAYERS)
        (corpus / "teams.csv").write_text(TEAMS)

        # --- 1. ingest: schema, keys and the players→teams FK are inferred --
        result = ingest_csv_dir(corpus)
        print("Ingested:", result.summary())
        for fk in result.schema.foreign_keys:
            print("  discovered FK:", fk.name)
        print("  players key:", result.schema.relation("players").key,
              "| rating type:", result.schema.attribute_type("players", "rating").value)

        # --- 2. embed the players relation --------------------------------
        db = result.database
        model = ForwardEmbedder(db, "players", config, rng=0).fit()
        embedding = model.embedding()
        print(f"Embedded {len(embedding)} players in R^{embedding.dimension} "
              f"(final loss {model.loss_history[-1]:.4f}).")

        # --- 3. nearest neighbours of one player --------------------------
        anchor = db.facts("players")[0]
        print(f"Players most similar to {anchor['name']} ({anchor['team']}):")
        for fact_id, score in most_similar(embedding, anchor, top_k=3):
            fact = db.fact(fact_id)
            print(f"  {fact['name']:<12} ({fact['team']})  cosine {score:.3f}")

        # --- 4. stream the tail of the table through the service ----------
        stream = stream_table(db, "players", count=3, batch_size=2, name="arrivals")
        served = ForwardEmbedder(
            stream.base, "players", config, rng=0
        ).fit()
        service = EmbeddingService(served, stream.base, policy="recompute", seed=0)
        for outcome in service.sync(stream.feed):
            print(f"  applied {outcome.batch_id}: +{outcome.facts_inserted} facts "
                  f"-> store v{outcome.store_version}")
        print(f"Service caught up: {service.stats().facts_inserted} streamed players "
              f"embedded online.")


if __name__ == "__main__":
    main()

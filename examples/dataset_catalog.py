"""Print the structure of every benchmark dataset (Table I of the paper).

Run with::

    python examples/dataset_catalog.py [scale]

The optional ``scale`` argument (default 0.1) controls the size of the
generated synthetic databases; pass 1.0 for paper-scale tuple counts.
"""

from __future__ import annotations

import sys

from repro.datasets import dataset_structure_rows, format_table_i, load_dataset
from repro.datasets.registry import PAPER_DATASETS


def main(scale: float | None = None) -> None:
    if scale is None:
        scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    datasets = [load_dataset(name, scale=scale, seed=0) for name in PAPER_DATASETS]
    rows = dataset_structure_rows(datasets)
    print(f"Dataset structure at scale={scale} (paper's Table I shape):\n")
    print(format_table_i(rows))
    print("\nClass balance:")
    for dataset in datasets:
        distribution = dataset.class_distribution()
        top = sorted(distribution.items(), key=lambda kv: -kv[1])[:3]
        rendered = ", ".join(f"{label}: {count}" for label, count in top)
        suffix = " ..." if len(distribution) > 3 else ""
        print(f"  {dataset.name:<12} {rendered}{suffix}")


if __name__ == "__main__":
    main()

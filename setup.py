"""Setuptools entry point.

The package version has a single source — the ``__version__`` assignment in
``src/repro/__init__.py`` — which is parsed here (not imported: the package's
dependencies need not be installed at build time).  The file also keeps the
project installable in environments without the ``wheel`` package (where
PEP 660 editable installs are unavailable) via ``python setup.py develop``.
"""

import re
from pathlib import Path

from setuptools import find_packages, setup


def read_version() -> str:
    """Parse ``__version__`` out of ``src/repro/__init__.py``."""
    text = (Path(__file__).parent / "src" / "repro" / "__init__.py").read_text()
    match = re.search(r'^__version__ = "([^"]+)"$', text, re.MULTILINE)
    if match is None:
        raise RuntimeError("__version__ not found in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro",
    version=read_version(),
    description="Stable Tuple Embeddings for Dynamic Databases (reproduction)",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "networkx"],
)

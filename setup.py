"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so the
package can also be installed in environments without the ``wheel`` package
(where PEP 660 editable installs are unavailable) via
``python setup.py develop``.
"""

from setuptools import setup

setup()

"""Table IV — dynamic accuracy at 10% new tuples, all-at-once vs one-by-one.

Reproduces the paper's comparison of the two embedding-extension setups.
The qualitative claims checked: (1) existing embeddings never move
(stability), (2) accuracy on the new tuples beats the majority baseline,
(3) the two insertion modes give similar accuracy (the paper's "surprisingly,
the results are very similar in both setups").
"""

import pytest
from conftest import N_RUNS, forward_method, node2vec_method, write_result

from repro.evaluation import format_dynamic_table, run_dynamic_experiment

_ALL_RESULTS = []


@pytest.mark.parametrize("method_name", ["forward", "node2vec"])
def test_table4_dynamic_10_percent(benchmark, datasets, method_name):
    dataset = datasets["genes"]
    method = forward_method() if method_name == "forward" else node2vec_method()

    def run():
        return [
            run_dynamic_experiment(
                dataset, method, ratio_new=0.1, mode=mode, n_runs=N_RUNS, rng=1
            )
            for mode in ("all_at_once", "one_by_one")
        ]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    _ALL_RESULTS.extend(results)
    write_result("table4_dynamic_10pct", format_dynamic_table(_ALL_RESULTS))

    all_at_once, one_by_one = results
    for result in results:
        for run in result.runs:
            assert run.max_drift == 0.0
        if method_name == "forward":
            # With a single run at reduced scale only ~7 new tuples are
            # evaluated, so allow a small noise margin around the baseline.
            assert result.accuracy_mean >= result.baseline_mean - 0.05
        else:
            # Node2Vec's continuation training is noisier at reduced scale.
            assert result.accuracy_mean >= result.baseline_mean - 0.20
    # The two setups are close (within 25 accuracy points at reduced scale).
    assert abs(all_at_once.accuracy_mean - one_by_one.accuracy_mean) < 0.25

"""Streaming service benchmark — the Mondial throughput ladder.

Replays the Mondial insert stream through a live
:class:`~repro.service.service.EmbeddingService` at increasing dataset
scales (the "rungs") and asserts, at every rung, the throughput floor and
both exactness bars of :mod:`repro.service.ladder`:

* facts/second (telemetry off) must clear the rung's recorded floor — at
  scale 0.3 the floor *is* the acceptance bar, 10x the seed repository's
  single-run baseline of 12.603 facts/s;
* the streamed store must match a one-shot dynamic-extender run to 1e-9;
* a full-CRUD churn replay of the same rung must match its one-shot run to
  1e-12 (deletes/updates invalidate the batched pipeline's struct-keyed
  caches, so this is the cache-correctness leg).

The reduced profile (default) climbs scales 0.15 and 0.3; the full profile
(``REPRO_BENCH_SCALE=full``) adds 1.0 and 4.0 (a 4x-replicated Mondial).
The versioned ladder payload is written to
``benchmarks/results/BENCH_streaming.json`` (uploaded as a CI artifact);
a rendered table goes to ``benchmarks/results/streaming_service.txt``.

Run under pytest (``python -m pytest benchmarks/bench_streaming_service.py``)
or directly (``python benchmarks/bench_streaming_service.py``).
"""

from __future__ import annotations

import json

from repro.service.ladder import (
    check_ladder,
    render_ladder,
    run_throughput_ladder,
)

try:  # pytest-style result persistence when run by the harness
    from conftest import FULL_SCALE, RESULTS_DIR, write_result
except ImportError:  # direct script execution from the repository root
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).parent))
    from conftest import FULL_SCALE, RESULTS_DIR, write_result


def _run() -> dict:
    payload = run_throughput_ladder(full=FULL_SCALE, progress=print)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_streaming.json").write_text(json.dumps(payload, indent=2))
    write_result("streaming_service", render_ladder(payload))
    return payload


def test_streaming_throughput_ladder():
    payload = _run()
    problems = check_ladder(payload)
    assert not problems, "ladder violations:\n" + "\n".join(problems)
    assert len(payload["rungs"]) >= 2
    for rung in payload["rungs"]:
        latency = rung["latency"]
        assert latency["count"] == rung["feed_batches"]
        assert latency["p99_seconds"] >= latency["p95_seconds"] >= latency["p50_seconds"]
        assert rung["feed_lag"] == 0 and rung["version_skew"] == 0
        verification = rung["verification"]
        assert verification["verified"] and verification["churn_verified"]
        assert verification["churn_facts_deleted"] > 0
        assert verification["churn_facts_updated"] > 0
    # the smallest rung carries the instrumented run's observability block
    obs = payload["rungs"][0]["observability"]
    assert obs["stage_coverage"] >= 0.9, (
        f"apply stages account for only {obs['stage_coverage']:.1%} of apply "
        "wall time (required >=90%)"
    )
    assert set(obs["stages"]) == {
        "service.apply.decode",
        "service.apply.engine_sync",
        "service.apply.embed",
        "service.apply.store_commit",
    }
    assert set(obs["pipeline"]["stages"]) == {
        "service.embed.prepare",
        "service.embed.assemble",
        "service.embed.solve",
    }
    assert obs["pipeline"]["coverage"] >= 0.9, (
        f"pipeline stages account for only "
        f"{obs['pipeline']['coverage']:.1%} of the embed stage"
    )
    assert obs["cache_hit_ratios"], "no engine cache activity was recorded"


if __name__ == "__main__":
    result = _run()
    print(render_ladder(result))
    problems = check_ladder(result)
    if problems:
        raise SystemExit("ladder violations:\n" + "\n".join(problems))

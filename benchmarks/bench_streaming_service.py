"""Streaming service benchmark — Mondial insert stream, served online.

Replays a 10% insert stream of the Mondial dataset through a live
:class:`~repro.service.service.EmbeddingService` and records what a server
operator watches: ingest throughput (facts/second) and per-batch apply
latency (p50/p95).  The run is self-verifying — the final store must match
a one-shot dynamic-extender run on the same final database to 1e-9 — and
must commit at least two store versions.

The full JSON report is written to ``benchmarks/results/BENCH_streaming.json``
(uploaded as a CI artifact); a rendered summary goes to
``benchmarks/results/streaming_service.txt``.

Run under pytest (``python -m pytest benchmarks/bench_streaming_service.py``)
or directly (``python benchmarks/bench_streaming_service.py``).
"""

from __future__ import annotations

import json

from repro.core import ForwardConfig
from repro.obs import Telemetry
from repro.service.replay import run_streaming_replay, render_report

try:  # pytest-style result persistence when run by the harness
    from conftest import FULL_SCALE, RESULTS_DIR, write_result
except ImportError:  # direct script execution from the repository root
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).parent))
    from conftest import FULL_SCALE, RESULTS_DIR, write_result

SCALE = 1.0 if FULL_SCALE else 0.15
INSERT_RATIO = 0.1

#: Tiny hyper-parameters: the benchmark measures the serving layer, not
#: embedding quality, so training is kept as small as the pipeline allows.
TINY_CONFIG = ForwardConfig(
    dimension=16, n_samples=400, batch_size=1024, max_walk_length=2, epochs=4,
    learning_rate=0.02, n_new_samples=30,
)


def _run() -> dict:
    report = run_streaming_replay(
        "mondial",
        insert_ratio=INSERT_RATIO,
        scale=SCALE,
        seed=0,
        policy="recompute",
        config=TINY_CONFIG,
        telemetry=Telemetry(),
    )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_streaming.json").write_text(json.dumps(report, indent=2))
    write_result("streaming_service", render_report(report))
    return report


def test_streaming_service_on_mondial():
    report = _run()
    assert report["store_versions_committed"] >= 2
    assert report["verified_against_one_shot"], (
        f"streamed store deviates from the one-shot run by "
        f"{report['one_shot_max_abs_diff']:.2e} (tolerance {report['one_shot_tolerance']:.0e})"
    )
    assert report["facts_per_second"] > 0
    latency = report["latency"]
    assert latency["count"] == report["feed_batches"]
    assert latency["p99_seconds"] >= latency["p95_seconds"] >= latency["p50_seconds"]
    assert report["feed_lag"] == 0 and report["version_skew"] == 0
    obs = report["observability"]
    assert obs["stage_coverage"] >= 0.9, (
        f"apply stages account for only {obs['stage_coverage']:.1%} of apply "
        "wall time (required >=90%)"
    )
    assert set(obs["stages"]) == {
        "service.apply.decode",
        "service.apply.engine_sync",
        "service.apply.embed",
        "service.apply.store_commit",
    }
    assert obs["cache_hit_ratios"], "no engine cache activity was recorded"


if __name__ == "__main__":
    result = _run()
    print(render_report(result))
    if not result["verified_against_one_shot"]:
        raise SystemExit("streamed store does not match the one-shot run")

"""Shared configuration of the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
scale so the full harness finishes on a laptop CPU; set the environment
variable ``REPRO_BENCH_SCALE=full`` to use paper-scale dataset sizes and
hyper-parameters (expect hours of runtime on CPU).  Numerical results are
appended to ``benchmarks/results/`` as plain-text tables so they survive
pytest's output capture; EXPERIMENTS.md is written from those files.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core import ForwardConfig, Node2VecConfig
from repro.datasets import load_dataset
from repro.evaluation import ForwardMethod, Node2VecMethod

RESULTS_DIR = Path(__file__).parent / "results"

FULL_SCALE = os.environ.get("REPRO_BENCH_SCALE", "reduced") == "full"

#: Dataset generation scale per benchmark profile.
DATASET_SCALE = 1.0 if FULL_SCALE else 0.08

#: Datasets exercised by the reduced-profile benchmarks.  The reduced profile
#: uses the three structurally distinct datasets (biological multi-class,
#: medical binary with bridge tables, geographic with FK-only prediction
#: relation); the full profile runs all five of Table I.
BENCH_DATASETS = (
    ("genes", "hepatitis", "world", "mutagenesis", "mondial") if FULL_SCALE
    else ("genes", "hepatitis", "world")
)


def forward_method() -> ForwardMethod:
    if FULL_SCALE:
        return ForwardMethod(ForwardConfig())
    return ForwardMethod(
        ForwardConfig(
            dimension=32, n_samples=1500, batch_size=2048, max_walk_length=2, epochs=15,
            learning_rate=0.01, n_new_samples=60,
        )
    )


def node2vec_method() -> Node2VecMethod:
    if FULL_SCALE:
        return Node2VecMethod(Node2VecConfig())
    return Node2VecMethod(
        Node2VecConfig(
            dimension=16, walks_per_node=5, walk_length=10, window_size=3,
            negatives_per_positive=5, batch_size=8192, epochs=3, dynamic_epochs=3,
            dynamic_walks_per_node=8,
        )
    )


N_RUNS = 10 if FULL_SCALE else 1
N_SPLITS = 10 if FULL_SCALE else 4
SWEEP_RATIOS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9) if FULL_SCALE else (0.1, 0.5, 0.9)
SWEEP_DATASETS = ("genes", "world") if FULL_SCALE else ("genes",)


@pytest.fixture(scope="session")
def datasets():
    """The benchmark datasets, generated once per session."""
    return {name: load_dataset(name, scale=DATASET_SCALE, seed=0) for name in BENCH_DATASETS}


def write_result(name: str, content: str) -> Path:
    """Persist a rendered table/series under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(content + "\n")
    return path

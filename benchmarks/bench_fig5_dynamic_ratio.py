"""Figure 5 — accuracy on new tuples as a function of the new-data ratio.

Sweeps the ratio of new data (one-by-one insertion) for both methods and
the majority baseline.  The qualitative shape reproduced from the paper:
accuracy stays well above the baseline at moderate ratios and degrades
slowly (the drop only becomes pronounced beyond roughly 50% new data).
"""

import numpy as np
import pytest
from conftest import N_RUNS, SWEEP_DATASETS, SWEEP_RATIOS, forward_method, node2vec_method, write_result

from repro.evaluation import format_figure5_series, run_ratio_sweep

_PANELS = []


@pytest.mark.parametrize("dataset_name", list(SWEEP_DATASETS))
def test_figure5_ratio_sweep(benchmark, datasets, dataset_name):
    if dataset_name not in datasets:
        pytest.skip(f"{dataset_name} not in the current benchmark profile")
    dataset = datasets[dataset_name]
    methods = [forward_method(), node2vec_method()]

    def run():
        return run_ratio_sweep(
            dataset,
            methods,
            ratios=SWEEP_RATIOS,
            mode="one_by_one",
            n_runs=max(1, N_RUNS // 2),
            rng=3,
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    _PANELS.append(format_figure5_series(sweep))
    write_result("figure5_dynamic_ratio", "\n\n".join(_PANELS))

    baseline = np.array(sweep.series["baseline"])
    for method in methods:
        series = np.array(sweep.series[method.name])
        assert series.shape == (len(SWEEP_RATIOS),)
        margin = -0.05 if method.name == "forward" else -0.20
        # At the lowest ratio the method must beat the majority baseline...
        assert series[0] > baseline[0] + margin
        # ...and on average across the sweep it stays above the baseline.
        assert series.mean() > baseline.mean() + margin

"""Ablation — maximum walk-scheme length ℓ_max ∈ {1, 2, 3}.

The paper uses ℓ_max between 1 and 3 (Table II).  This ablation measures how
static FoRWaRD accuracy and the number of walk targets grow with the walk
length on the Genes dataset, whose class signal sits one FK step away from
the prediction relation.
"""

import pytest
from conftest import FULL_SCALE, write_result

from repro.core import ForwardConfig
from repro.evaluation import ForwardMethod, run_static_experiment
from repro.walks import walk_targets

_ROWS = []


@pytest.mark.parametrize("max_walk_length", [1, 2] if not FULL_SCALE else [1, 2, 3])
def test_ablation_walk_length(benchmark, datasets, max_walk_length):
    dataset = datasets["genes"]
    config = ForwardConfig(
        dimension=24, n_samples=600, batch_size=2048, max_walk_length=max_walk_length,
        epochs=10, learning_rate=0.015, n_new_samples=60,
    )
    method = ForwardMethod(config)

    def run():
        return run_static_experiment(
            dataset, [method], n_splits=5, fresh_embedding_per_fold=False,
            include_baselines=False, rng=4,
        )[0]

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    num_targets = len(
        walk_targets(dataset.db.schema, dataset.prediction_relation, max_walk_length)
    )
    _ROWS.append(
        f"l_max={max_walk_length}  targets={num_targets:<4d} "
        f"accuracy={result.accuracy_mean:.3f} ±{result.accuracy_std:.3f} "
        f"train_seconds={result.train_seconds:.2f}"
    )
    write_result("ablation_walk_length", "\n".join(_ROWS))
    assert result.accuracy_mean > 0.0
    assert num_targets > 0

"""Serve-tier load benchmark — concurrent readers vs one churn writer.

Runs the :mod:`repro.serve` load generator against a live service: zipfian
reader clients issue fetch/kNN/relation-slice queries through the snapshot
router while a single writer thread applies the churn feed concurrently.
The payload asserts the serving-tier acceptance bars:

* sustained qps must clear the recorded floor under >= 64 simulated
  clients;
* every query kind reports p50/p99 latency;
* clients pinned to the pre-churn snapshot must observe results
  bit-identical (0.0 max-abs-diff) to a serial query of that version, no
  matter how far the writer has advanced;
* unpinned readers must observe store versions monotonically, and the
  writer must commit at least once while reads are in flight (otherwise
  nothing concurrent was measured).

The reduced profile (default) runs the in-process transport; the full
profile (``REPRO_BENCH_SCALE=full``) additionally drives the loopback HTTP
transport with more clients.  The payload is written to
``benchmarks/results/BENCH_load.json`` (uploaded as a CI artifact and
validated by ``tools/check_obs_artifacts.py``); a rendered summary goes to
``benchmarks/results/load_service.txt``.

Run under pytest (``python -m pytest benchmarks/bench_load_service.py``)
or directly (``python benchmarks/bench_load_service.py``).
"""

from __future__ import annotations

import json

from repro.serve import LoadProfile, check_load, render_load, run_load_test

try:  # pytest-style result persistence when run by the harness
    from conftest import FULL_SCALE, RESULTS_DIR, write_result
except ImportError:  # direct script execution from the repository root
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).parent))
    from conftest import FULL_SCALE, RESULTS_DIR, write_result


def _profile(transport: str) -> LoadProfile:
    if FULL_SCALE:
        return LoadProfile(
            scale=0.3, clients=128, worker_threads=8, queries_per_client=8,
            pinned_clients=8, transport=transport,
            qps_floor=2000.0 if transport == "inproc" else 300.0,
        )
    return LoadProfile(
        scale=0.1, clients=64, worker_threads=6, queries_per_client=4,
        pinned_clients=4, transport=transport,
        qps_floor=1000.0 if transport == "inproc" else 150.0,
    )


def _run() -> dict:
    payload = run_load_test(_profile("inproc"))
    if FULL_SCALE:
        payload["http"] = run_load_test(_profile("http"))
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_load.json").write_text(json.dumps(payload, indent=2))
    rendered = render_load(payload)
    if "http" in payload:
        rendered += "\n\n" + render_load(payload["http"])
    write_result("load_service", rendered)
    return payload


def test_serve_load():
    payload = _run()
    problems = check_load(payload)
    if "http" in payload:
        problems += [f"http: {p}" for p in check_load(payload["http"])]
    assert not problems, "load-test violations:\n" + "\n".join(problems)
    assert payload["profile"]["clients"] >= 64
    pinned = payload["pinned_verification"]
    assert pinned["bit_identical"] and pinned["max_abs_diff"] == 0.0
    assert pinned["queries"] > 0
    assert payload["writer"]["commits_during_load"] >= 1
    for kind in ("fetch", "knn", "slice"):
        entry = payload["per_kind"][kind]
        assert entry["count"] >= 1
        assert entry["latency"]["p99_seconds"] >= entry["latency"]["p50_seconds"]


if __name__ == "__main__":
    result = _run()
    print(render_load(result))
    problems = check_load(result)
    if "http" in result:
        print()
        print(render_load(result["http"]))
        problems += [f"http: {p}" for p in check_load(result["http"])]
    if problems:
        raise SystemExit("load-test violations:\n" + "\n".join(problems))

"""Table I — structure of the benchmark datasets.

Benchmarks dataset generation and regenerates the structure table
(#samples, #relations, #tuples, #attributes per dataset).
"""

from conftest import DATASET_SCALE, write_result

from repro.datasets import dataset_structure_rows, format_table_i, load_dataset
from repro.datasets.registry import PAPER_DATASETS


def test_table1_dataset_structure(benchmark, datasets):
    def generate_all():
        return [load_dataset(name, scale=DATASET_SCALE, seed=0) for name in PAPER_DATASETS]

    generated = benchmark.pedantic(generate_all, rounds=1, iterations=1)
    rows = dataset_structure_rows(generated)
    table = format_table_i(rows)
    write_result("table1_dataset_structure", table)

    by_name = {row["dataset"]: row for row in rows}
    # The structural shape of Table I: relation counts are exact, the
    # prediction relation/attribute match, Mondial has by far the most
    # relations and Genes the most classes.
    assert by_name["hepatitis"]["relations"] == 7
    assert by_name["genes"]["relations"] == 3
    assert by_name["mutagenesis"]["relations"] == 3
    assert by_name["world"]["relations"] == 3
    assert by_name["mondial"]["relations"] == 40
    assert by_name["genes"]["classes"] <= 15
    assert by_name["mondial"]["classes"] == 2
    for row in rows:
        assert row["tuples"] > row["samples"]

"""Table VI — average time to embed a newly arrived tuple.

Measures the per-new-tuple embedding time in both insertion modes.  The
paper's qualitative claim reproduced here: in the one-by-one setting
FoRWaRD is markedly faster than Node2Vec, because FoRWaRD only solves a
small linear system per tuple whereas Node2Vec must run gradient-descent
continuation training for every arrival.
"""

import pytest
from conftest import N_RUNS, forward_method, node2vec_method, write_result

from repro.evaluation import format_timing_table, run_dynamic_experiment

_ALL_RESULTS = []


@pytest.mark.parametrize("mode", ["all_at_once", "one_by_one"])
def test_table6_seconds_per_new_tuple(benchmark, datasets, mode):
    dataset = datasets["genes"]
    methods = {"forward": forward_method(), "node2vec": node2vec_method()}

    def run():
        return {
            name: run_dynamic_experiment(
                dataset, method, ratio_new=0.1, mode=mode, n_runs=max(1, N_RUNS // 2), rng=2
            )
            for name, method in methods.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    _ALL_RESULTS.extend(results.values())
    write_result("table6_dynamic_times", format_timing_table(_ALL_RESULTS, per_tuple=True))

    for result in results.values():
        assert result.seconds_per_new_tuple_mean > 0
    if mode == "one_by_one":
        # FoRWaRD's linear-system extension beats Node2Vec's continuation training.
        assert (
            results["forward"].seconds_per_new_tuple_mean
            < results["node2vec"].seconds_per_new_tuple_mean
        )

"""Churn benchmark — full-CRUD streaming on Mondial, served online.

Two claims are measured and asserted:

1. **Incremental deletion beats recompile-per-delete by ≥5×.**  The same
   sequence of deletions is applied to two engines over the Mondial
   database; one tombstones each deleted fact incrementally
   (:meth:`CompiledDatabase.remove_fact`) and re-derives a warm destination
   matrix, the other pays the pre-tombstone cost — a full recompile (fresh
   ``WalkEngine``) per deletion, which is exactly what ``refresh()`` used
   to do the moment any compiled fact disappeared.

2. **The churn service stream stays exact.**  A mixed
   insert/delete/update replay through the live service must verify
   against a one-shot extender on the reconstructed final database (1e-9)
   with every deleted tuple absent from the store.

The combined JSON report is written to
``benchmarks/results/BENCH_churn.json`` (uploaded as a CI artifact); a
rendered summary goes to ``benchmarks/results/churn_service.txt``.

Run under pytest (``python -m pytest benchmarks/bench_churn_service.py``)
or directly (``python benchmarks/bench_churn_service.py``).
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.core import ForwardConfig
from repro.datasets import load_dataset
from repro.engine import WalkEngine
from repro.obs import Telemetry
from repro.service.replay import render_report, run_streaming_replay
from repro.walks import enumerate_walk_schemes

try:  # pytest-style result persistence when run by the harness
    from conftest import FULL_SCALE, RESULTS_DIR, write_result
except ImportError:  # direct script execution from the repository root
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).parent))
    from conftest import FULL_SCALE, RESULTS_DIR, write_result

SCALE = 1.0 if FULL_SCALE else 0.15
#: Mondial's prediction relation is small and cascade-free, so the churn
#: replay streams at a higher ratio (and churns harder) than the insert-only
#: streaming benchmark to get a meaningful number of delete/update ops.
REPLAY_SCALE = 1.0 if FULL_SCALE else 0.4
INSERT_RATIO = 0.3
CHURN_FRACTION = 0.3
N_DELETES = 40 if FULL_SCALE else 12
MIN_SPEEDUP = 5.0

#: Tiny hyper-parameters: the benchmark measures the serving layer, not
#: embedding quality, so training is kept as small as the pipeline allows.
TINY_CONFIG = ForwardConfig(
    dimension=16, n_samples=400, batch_size=1024, max_walk_length=2, epochs=4,
    learning_rate=0.02, n_new_samples=30,
)


def _bench_delete_paths() -> dict:
    """Time N deletions: incremental tombstoning vs recompile-per-delete."""
    rng = np.random.default_rng(0)
    dataset = load_dataset("mondial", scale=SCALE, seed=0)
    schemes = enumerate_walk_schemes(
        dataset.db.schema, dataset.prediction_relation, 2
    )
    facts = dataset.db.facts()
    picks = rng.choice(len(facts), size=N_DELETES, replace=False)
    victims = [facts[int(i)].fact_id for i in picks]

    # incremental: one engine, tombstone + warm matrix re-derivation per delete
    db = dataset.db.copy()
    engine = WalkEngine(db)
    for scheme in schemes:
        engine.destination_matrix(scheme)
    start = time.perf_counter()
    for fact_id in victims:
        db.delete(fact_id)
        engine.remove_facts([fact_id])
        for scheme in schemes:
            engine.destination_matrix(scheme)
    incremental_seconds = time.perf_counter() - start

    # baseline: what the pre-tombstone refresh() did — recompile everything
    # the moment a compiled fact disappeared
    db = dataset.db.copy()
    start = time.perf_counter()
    for fact_id in victims:
        db.delete(fact_id)
        fresh = WalkEngine(db)
        for scheme in schemes:
            fresh.destination_matrix(scheme)
    recompile_seconds = time.perf_counter() - start

    return {
        "dataset": "mondial",
        "scale": SCALE,
        "n_deletes": N_DELETES,
        "n_schemes": len(schemes),
        "incremental_seconds": incremental_seconds,
        "recompile_seconds": recompile_seconds,
        "speedup": recompile_seconds / max(incremental_seconds, 1e-12),
        "min_speedup": MIN_SPEEDUP,
    }


def _run() -> dict:
    delete_bench = _bench_delete_paths()
    replay = run_streaming_replay(
        "mondial",
        insert_ratio=INSERT_RATIO,
        scale=REPLAY_SCALE,
        seed=0,
        policy="recompute",
        config=TINY_CONFIG,
        ops=("insert", "delete", "update"),
        delete_fraction=CHURN_FRACTION,
        update_fraction=CHURN_FRACTION,
        telemetry=Telemetry(),
    )
    from repro import __version__

    report = {
        "repro_version": __version__,
        "delete_path": delete_bench,
        "churn_replay": replay,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_churn.json").write_text(json.dumps(report, indent=2))
    summary = "\n".join(
        [
            f"Incremental delete vs recompile-per-delete — mondial "
            f"(scale {SCALE}, {delete_bench['n_deletes']} deletes, "
            f"{delete_bench['n_schemes']} schemes)",
            f"{'incremental seconds':<28}{delete_bench['incremental_seconds']:>12.3f}",
            f"{'recompile seconds':<28}{delete_bench['recompile_seconds']:>12.3f}",
            f"{'speedup':<28}{delete_bench['speedup']:>11.1f}x",
            "",
            render_report(replay),
        ]
    )
    write_result("churn_service", summary)
    return report


def test_churn_service_on_mondial():
    report = _run()
    delete_bench = report["delete_path"]
    assert delete_bench["speedup"] >= MIN_SPEEDUP, (
        f"incremental deletion is only {delete_bench['speedup']:.1f}x faster than "
        f"recompile-per-delete (required ≥{MIN_SPEEDUP}x)"
    )
    replay = report["churn_replay"]
    assert replay["facts_deleted"] > 0 and replay["facts_updated"] > 0
    assert replay["deleted_facts_absent_from_store"]
    assert replay["verified_against_one_shot"], (
        f"churned store deviates from the one-shot run by "
        f"{replay['one_shot_max_abs_diff']:.2e} (tolerance {replay['one_shot_tolerance']:.0e})"
    )
    assert replay["feed_lag"] == 0 and replay["version_skew"] == 0
    obs = replay["observability"]
    assert obs["stage_coverage"] >= 0.9, (
        f"apply stages account for only {obs['stage_coverage']:.1%} of apply "
        "wall time (required >=90%)"
    )
    assert obs["cache_hit_ratios"], "no engine cache activity was recorded"


if __name__ == "__main__":
    result = _run()
    print((RESULTS_DIR / "churn_service.txt").read_text())
    if result["delete_path"]["speedup"] < MIN_SPEEDUP:
        raise SystemExit("incremental deletion speedup below the required bar")
    if not result["churn_replay"]["verified_against_one_shot"]:
        raise SystemExit("churned store does not match the one-shot run")

"""Table III — accuracy for static classification.

For every benchmark dataset, trains FoRWaRD and the Node2Vec adaptation on
the full (masked) database and reports stratified cross-validation accuracy
of the downstream SVM, next to the flat-feature and majority baselines.
The paper's qualitative claim reproduced here: both embedding methods are
well above the baselines on every dataset.
"""

import pytest
from conftest import N_SPLITS, forward_method, node2vec_method, write_result

from repro.evaluation import format_static_table, run_static_experiment

_ALL_RESULTS = []


@pytest.mark.parametrize("dataset_name", ["genes", "hepatitis", "world"])
def test_table3_static_accuracy(benchmark, datasets, dataset_name):
    if dataset_name not in datasets:
        pytest.skip(f"{dataset_name} not in the current benchmark profile")
    dataset = datasets[dataset_name]
    methods = [forward_method(), node2vec_method()]

    def run():
        return run_static_experiment(
            dataset, methods, n_splits=N_SPLITS, fresh_embedding_per_fold=False, rng=0
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    _ALL_RESULTS.extend(results)
    write_result("table3_static_accuracy", format_static_table(_ALL_RESULTS))

    by_method = {r.method: r for r in results}
    majority = by_method["majority_baseline"].accuracy_mean
    forward_acc = by_method["forward"].accuracy_mean
    node2vec_acc = by_method["node2vec"].accuracy_mean
    # The paper's qualitative claim: embedding methods beat the majority-class
    # baseline.  At the reduced benchmark scale (a few dozen labelled samples
    # per dataset, 4-fold CV) individual estimates are noisy, so we require
    # the better of the two methods to beat the baseline outright and the
    # other to be within a small margin of it.
    assert max(forward_acc, node2vec_acc) >= majority
    assert min(forward_acc, node2vec_acc) >= majority - 0.08
    # And both must be far above the always-wrong end of the scale.
    assert min(forward_acc, node2vec_acc) > 0.3

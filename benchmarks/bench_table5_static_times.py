"""Table V — execution time to compute static embeddings.

Times the static phase of both methods on each benchmark dataset.  The
paper's qualitative claim: Node2Vec's static training is faster than
FoRWaRD's on every dataset (FoRWaRD pays for computing walk-destination
distributions); absolute seconds differ from the paper because the paper
trains on a GPU with PyTorch while this reproduction is CPU NumPy.
"""

import pytest
from conftest import forward_method, node2vec_method, write_result

_TIMINGS: dict[tuple[str, str], float] = {}


@pytest.mark.parametrize("dataset_name", ["genes", "hepatitis", "world"])
@pytest.mark.parametrize("method_name", ["forward", "node2vec"])
def test_table5_static_embedding_time(benchmark, datasets, dataset_name, method_name):
    if dataset_name not in datasets:
        pytest.skip(f"{dataset_name} not in the current benchmark profile")
    dataset = datasets[dataset_name]
    method = forward_method() if method_name == "forward" else node2vec_method()
    db = dataset.masked_database()

    def fit():
        return method.fit(db, dataset.prediction_relation, rng=0)

    model = benchmark.pedantic(fit, rounds=1, iterations=1)
    assert model is not None
    _TIMINGS[(dataset_name, method_name)] = benchmark.stats["mean"]

    lines = [f"{'Task':<14}{'Method':<12}{'seconds':>10}", "-" * 36]
    for (task, name), seconds in sorted(_TIMINGS.items()):
        lines.append(f"{task:<14}{name:<12}{seconds:>10.2f}")
    write_result("table5_static_times", "\n".join(lines))

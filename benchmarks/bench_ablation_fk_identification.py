"""Ablation — foreign-key value-node identification in the Node2Vec graph.

Section IV argues that identifying value nodes linked by a foreign key is
the right way to model references.  This ablation compares static Node2Vec
accuracy with and without the identification on the Mondial-style setting
(Genes), where the prediction relation carries no local signal of its own,
so all information must flow across the FK-merged nodes.
"""

import pytest
from conftest import N_SPLITS, write_result

from repro.core import Node2VecConfig
from repro.evaluation import Node2VecMethod, run_static_experiment

_ROWS = {}


@pytest.mark.parametrize("identify", [True, False], ids=["with_fk_merge", "without_fk_merge"])
def test_ablation_fk_identification(benchmark, datasets, identify):
    dataset = datasets["genes"]
    config = Node2VecConfig(
        dimension=24, walks_per_node=8, walk_length=12, window_size=4,
        negatives_per_positive=6, batch_size=8192, epochs=4,
        identify_foreign_keys=identify,
    )
    method = Node2VecMethod(config)

    def run():
        return run_static_experiment(
            dataset, [method], n_splits=N_SPLITS, fresh_embedding_per_fold=False,
            include_baselines=False, rng=5,
        )[0]

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS[identify] = result.accuracy_mean
    lines = [
        f"FK identification ON : accuracy={_ROWS.get(True, float('nan')):.3f}",
        f"FK identification OFF: accuracy={_ROWS.get(False, float('nan')):.3f}",
    ]
    write_result("ablation_fk_identification", "\n".join(lines))
    assert 0.0 <= result.accuracy_mean <= 1.0
    if True in _ROWS and False in _ROWS:
        # Dropping the identification must not help: the merged graph carries
        # strictly more reference information.
        assert _ROWS[True] >= _ROWS[False] - 0.05

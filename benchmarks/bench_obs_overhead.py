"""Instrumentation-overhead guard — enabled telemetry must stay under 5%.

The observability layer promises to be effectively free: when no telemetry
bundle is attached every instrument is a shared no-op singleton, and when
one *is* attached the per-batch cost is a handful of ``perf_counter`` calls
and counter increments.  This benchmark holds the layer to that promise by
replaying the same Mondial insert stream twice — once unobserved, once with
a full :class:`~repro.obs.Telemetry` bundle (tracer + metrics + stage
profiler) — and comparing steady-state throughput.

One discarded warm-up replay absorbs import and allocator cold-start, then
the two variants run in alternating pairs.  Each variant's cost is the sum
of its *per-batch minimum* apply latencies across ``N_REPEATS`` runs: real
overhead slows a batch in every run, scheduler noise slows different
batches in different runs, so the element-wise minimum isolates the former
far more tightly than comparing whole-run throughput (which on a busy CI
box varies by ±10% between identical runs).  The instrumented best-case
apply time may exceed the unobserved one by at most 5%, and the derived
facts/second figures are reported alongside.  Verification against the
one-shot extender is disabled — it costs far more than the replay itself
and is identical in both variants, which would dilute the very overhead
being measured.

The JSON report is written to ``benchmarks/results/BENCH_obs_overhead.json``;
a rendered summary goes to ``benchmarks/results/obs_overhead.txt``.

Run under pytest (``python -m pytest benchmarks/bench_obs_overhead.py``)
or directly (``python benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import json

from repro.core import ForwardConfig
from repro.obs import Telemetry
from repro.service.replay import run_streaming_replay

try:  # pytest-style result persistence when run by the harness
    from conftest import FULL_SCALE, RESULTS_DIR, write_result
except ImportError:  # direct script execution from the repository root
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).parent))
    from conftest import FULL_SCALE, RESULTS_DIR, write_result

SCALE = 0.4 if FULL_SCALE else 0.15
INSERT_RATIO = 0.2
N_REPEATS = 4
#: Enabled telemetry may cost at most 5% of best-case apply time.
MAX_OVERHEAD = 0.05

#: Tiny hyper-parameters: the guard measures serving-loop overhead, not
#: embedding quality, so training is kept as small as the pipeline allows.
TINY_CONFIG = ForwardConfig(
    dimension=16, n_samples=400, batch_size=1024, max_walk_length=2, epochs=4,
    learning_rate=0.02, n_new_samples=30,
)


def _replay(telemetry: Telemetry | None) -> dict:
    return run_streaming_replay(
        "mondial",
        insert_ratio=INSERT_RATIO,
        scale=SCALE,
        seed=0,
        policy="recompute",
        config=TINY_CONFIG,
        verify=False,
        telemetry=telemetry,
    )


def _best_case_apply(reports: list[dict]) -> float:
    """Sum of element-wise per-batch minimum latencies across runs."""
    per_batch = zip(*(r["apply_seconds"] for r in reports))
    return sum(min(latencies) for latencies in per_batch)


def _run() -> dict:
    _replay(None)  # warm-up, discarded
    baseline: list[dict] = []
    instrumented: list[dict] = []
    for _ in range(N_REPEATS):  # alternate so drift hits both variants alike
        baseline.append(_replay(None))
        instrumented.append(_replay(Telemetry()))
    base_seconds = _best_case_apply(baseline)
    inst_seconds = _best_case_apply(instrumented)
    overhead = inst_seconds / base_seconds - 1.0
    facts = baseline[0]["facts_inserted"]
    report = {
        "dataset": "mondial",
        "scale": SCALE,
        "insert_ratio": INSERT_RATIO,
        "repeats": N_REPEATS,
        "feed_batches": baseline[0]["feed_batches"],
        "baseline_apply_seconds": base_seconds,
        "instrumented_apply_seconds": inst_seconds,
        "baseline_facts_per_second": facts / base_seconds,
        "instrumented_facts_per_second": facts / inst_seconds,
        "overhead_fraction": overhead,
        "max_overhead_fraction": MAX_OVERHEAD,
        "instrumented_stage_coverage": instrumented[-1]["observability"][
            "stage_coverage"
        ],
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_obs_overhead.json").write_text(json.dumps(report, indent=2))
    summary = "\n".join(
        [
            f"Telemetry overhead — mondial (scale {SCALE}, per-batch best of "
            f"{N_REPEATS}, {report['feed_batches']} batches)",
            f"{'baseline apply seconds':<28}{base_seconds:>12.3f}",
            f"{'instrumented apply seconds':<28}{inst_seconds:>12.3f}",
            f"{'baseline facts/s':<28}{report['baseline_facts_per_second']:>12.1f}",
            f"{'instrumented facts/s':<28}{report['instrumented_facts_per_second']:>12.1f}",
            f"{'overhead':<28}{overhead:>11.1%}",
            f"{'allowed':<28}{MAX_OVERHEAD:>11.1%}",
        ]
    )
    write_result("obs_overhead", summary)
    return report


def test_telemetry_overhead_within_budget():
    report = _run()
    assert report["instrumented_stage_coverage"] >= 0.9
    assert report["overhead_fraction"] <= MAX_OVERHEAD, (
        f"enabled telemetry costs {report['overhead_fraction']:.1%} of facts/sec "
        f"throughput (allowed <={MAX_OVERHEAD:.0%})"
    )


if __name__ == "__main__":
    result = _run()
    print((RESULTS_DIR / "obs_overhead.txt").read_text())
    if result["overhead_fraction"] > result["max_overhead_fraction"]:
        raise SystemExit("telemetry overhead above the allowed budget")

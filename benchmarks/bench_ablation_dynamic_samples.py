"""Ablation — number of linear-equation samples for the FoRWaRD extension.

The dynamic extension solves ``C·φ(f_new) = b`` where the number of rows is
controlled by ``n_new_samples`` (2 500 in the paper).  This ablation varies
the sample count and measures both the per-tuple extension time and the
accuracy on new tuples, showing the accuracy/latency trade-off.
"""

import pytest
from conftest import write_result

from repro.core import ForwardConfig
from repro.evaluation import ForwardMethod, run_dynamic_experiment

_ROWS = []


@pytest.mark.parametrize("n_new_samples", [5, 30, 120])
def test_ablation_dynamic_sample_count(benchmark, datasets, n_new_samples):
    dataset = datasets["genes"]
    config = ForwardConfig(
        dimension=24, n_samples=600, batch_size=2048, max_walk_length=2, epochs=10,
        learning_rate=0.015, n_new_samples=n_new_samples,
    )
    method = ForwardMethod(config)

    def run():
        return run_dynamic_experiment(
            dataset, method, ratio_new=0.1, mode="one_by_one", n_runs=1, rng=6
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS.append(
        f"n_new_samples={n_new_samples:<5d} accuracy={result.accuracy_mean:.3f} "
        f"sec/new tuple={result.seconds_per_new_tuple_mean:.4f}"
    )
    write_result("ablation_dynamic_samples", "\n".join(_ROWS))
    assert all(run.max_drift == 0.0 for run in result.runs)

"""Compiled walk engine vs reference BFS — destination distributions.

Computes **all** destination distributions ``W(f, s)`` of the Mondial
prediction relation (every prediction fact × every walk scheme up to the
paper's maximum length 3) two ways:

* *reference*: the per-fact breadth-first propagation of
  :func:`repro.walks.random_walks.destination_distribution`;
* *engine*: batched sparse matrix products over a compiled
  :class:`repro.engine.WalkEngine` (all facts of the relation at once).

The engine must be at least 5× faster.  One-time compilation of the
database into flat arrays is reported separately: the experiment drivers
compile once and share the engine across all methods, folds and walk
targets, so compilation is amortised while distribution computation is the
recurring cost.

Run under pytest (``python -m pytest benchmarks/bench_engine_vs_reference.py``)
or directly (``python benchmarks/bench_engine_vs_reference.py``).
"""

from __future__ import annotations

import time

from repro.datasets import load_dataset
from repro.engine import WalkEngine
from repro.walks import destination_distribution, enumerate_walk_schemes

try:  # pytest-style result persistence when run by the harness
    from conftest import write_result
except ImportError:  # direct script execution from the repository root
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).parent))
    from conftest import write_result

MAX_WALK_LENGTH = 3
MIN_SPEEDUP = 5.0


def _measure(scale: float) -> dict[str, float]:
    dataset = load_dataset("mondial", scale=scale, seed=0)
    db = dataset.db
    facts = db.facts(dataset.prediction_relation)
    schemes = enumerate_walk_schemes(
        db.schema, dataset.prediction_relation, MAX_WALK_LENGTH
    )

    start = time.perf_counter()
    for scheme in schemes:
        for fact in facts:
            destination_distribution(db, fact, scheme)
    reference_seconds = time.perf_counter() - start

    start = time.perf_counter()
    engine = WalkEngine(db)
    compile_seconds = time.perf_counter() - start
    start = time.perf_counter()
    for scheme in schemes:
        engine.destination_matrix(scheme)
    engine_seconds = time.perf_counter() - start

    return {
        "facts": len(facts),
        "schemes": len(schemes),
        "total_facts": len(db),
        "reference_seconds": reference_seconds,
        "compile_seconds": compile_seconds,
        "engine_seconds": engine_seconds,
        "speedup": reference_seconds / engine_seconds,
    }


def _render(stats: dict[str, float]) -> str:
    lines = [
        f"Mondial destination distributions (walk length <= {MAX_WALK_LENGTH})",
        f"{'prediction facts':<26}{stats['facts']:>10.0f}",
        f"{'walk schemes':<26}{stats['schemes']:>10.0f}",
        f"{'database facts':<26}{stats['total_facts']:>10.0f}",
        "-" * 36,
        f"{'reference BFS':<26}{stats['reference_seconds']:>9.3f}s",
        f"{'engine (batched)':<26}{stats['engine_seconds']:>9.3f}s",
        f"{'engine compile (once)':<26}{stats['compile_seconds']:>9.3f}s",
        f"{'speedup':<26}{stats['speedup']:>9.1f}x",
    ]
    return "\n".join(lines)


def test_engine_beats_reference_on_mondial():
    stats = _measure(scale=1.0)  # Mondial is always run at paper scale
    write_result("engine_vs_reference", _render(stats))
    assert stats["speedup"] >= MIN_SPEEDUP, (
        f"engine speedup {stats['speedup']:.1f}x below the required "
        f"{MIN_SPEEDUP:.0f}x (reference {stats['reference_seconds']:.3f}s, "
        f"engine {stats['engine_seconds']:.3f}s)"
    )


if __name__ == "__main__":
    result = _measure(1.0)
    print(_render(result))
    if result["speedup"] < MIN_SPEEDUP:
        raise SystemExit(f"speedup below {MIN_SPEEDUP:.0f}x")

"""kNN index benchmark — IVF speedup and recall against the exact oracle.

Runs the :mod:`repro.index.bench` ladder: per Mondial replication rung, an
IVF-backed store is built and churned (multi-batch inserts, update and
delete waves), then one seeded query set is answered through the public
``StoreSnapshot.nearest`` path with ``index="exact"`` and ``index="ivf"``.
The payload asserts the index-tier acceptance bars:

* IVF recall@10 against exact must clear 0.95 on every rung;
* every rung's speedup over the exact scan must clear its recorded floor —
  5x at the 4x-Mondial rung of the full profile.

The reduced profile (default) climbs scales 0.5 and 1.0; the full profile
(``REPRO_BENCH_SCALE=full``) adds 2.0 and the headline 4.0.  The payload is
written to ``benchmarks/results/BENCH_knn.json`` (uploaded as a CI artifact
and validated by ``tools/check_obs_artifacts.py``); a rendered summary goes
to ``benchmarks/results/knn_index.txt``.

Run under pytest (``python -m pytest benchmarks/bench_knn_index.py``) or
directly (``python benchmarks/bench_knn_index.py``).
"""

from __future__ import annotations

import json

from repro.index.bench import (
    FULL_RUNGS,
    REDUCED_RUNGS,
    check_knn,
    render_knn,
    run_knn_bench,
)

try:  # pytest-style result persistence when run by the harness
    from conftest import FULL_SCALE, RESULTS_DIR, write_result
except ImportError:  # direct script execution from the repository root
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).parent))
    from conftest import FULL_SCALE, RESULTS_DIR, write_result


def _run() -> dict:
    payload = run_knn_bench(FULL_RUNGS if FULL_SCALE else REDUCED_RUNGS)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_knn.json").write_text(json.dumps(payload, indent=2))
    write_result("knn_index", render_knn(payload))
    return payload


def test_knn_index():
    payload = _run()
    problems = check_knn(payload)
    assert not problems, "knn-bench violations:\n" + "\n".join(problems)
    assert payload["k"] == 10
    for rung in payload["rungs"]:
        assert rung["recall"]["mean"] >= rung["recall"]["floor"] >= 0.95
        assert rung["speedup"] >= rung["speedup_floor"]
        assert rung["num_dead"] > 0, "the measured snapshot must carry tombstones"
        assert rung["ivf"]["stats"]["trained"]
    if FULL_SCALE:
        headline = payload["rungs"][-1]
        assert headline["scale"] == 4.0
        assert headline["speedup_floor"] == 5.0


if __name__ == "__main__":
    result = _run()
    print(render_knn(result))
    problems = check_knn(result)
    if problems:
        raise SystemExit("knn-bench violations:\n" + "\n".join(problems))

"""The tuple-embedding result type shared by both algorithms."""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.db.database import Fact


class TupleEmbedding:
    """A mapping ``γ`` from facts to vectors in ``R^k``.

    Facts are keyed by their ``fact_id`` so the embedding survives deletion
    and re-insertion of the underlying :class:`~repro.db.database.Fact`
    objects during the dynamic experiments.
    """

    def __init__(self, dimension: int, vectors: Mapping[int, np.ndarray] | None = None):
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        self.dimension = int(dimension)
        self._vectors: dict[int, np.ndarray] = {}
        if vectors:
            for fact_id, vector in vectors.items():
                self.set(fact_id, vector)

    @classmethod
    def from_rows(
        cls,
        dimension: int,
        fact_ids: Iterable[int],
        matrix: np.ndarray,
    ) -> "TupleEmbedding":
        """Bulk-build from aligned fact ids and a ``(n, dimension)`` matrix.

        The vectorised alternative to ``n`` :meth:`set` calls: the matrix
        is validated once and its rows are stored directly (the embedding
        owns ``matrix`` afterwards — pass a freshly allocated one).
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != dimension:
            raise ValueError(
                f"expected a (n, {dimension}) matrix, got shape {matrix.shape}"
            )
        result = cls(dimension)
        result._vectors = {
            int(fid): row for fid, row in zip(fact_ids, matrix, strict=True)
        }
        return result

    # ------------------------------------------------------------ mutation

    def set(self, fact: Fact | int, vector: np.ndarray) -> None:
        """Assign (or overwrite) the embedding of a fact."""
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dimension,):
            raise ValueError(
                f"expected a vector of dimension {self.dimension}, got shape {vector.shape}"
            )
        self._vectors[self._key(fact)] = vector.copy()

    def remove(self, fact: Fact | int) -> None:
        """Drop a fact's embedding (tuple deletion is trivial in the paper)."""
        self._vectors.pop(self._key(fact), None)

    # -------------------------------------------------------------- lookup

    @staticmethod
    def _key(fact: Fact | int) -> int:
        return fact.fact_id if isinstance(fact, Fact) else int(fact)

    def vector(self, fact: Fact | int) -> np.ndarray:
        """The embedding ``γ(fact)``."""
        return self._vectors[self._key(fact)].copy()

    def __contains__(self, fact: Fact | int) -> bool:
        return self._key(fact) in self._vectors

    def __len__(self) -> int:
        return len(self._vectors)

    def __iter__(self) -> Iterator[int]:
        return iter(self._vectors)

    @property
    def fact_ids(self) -> tuple[int, ...]:
        return tuple(self._vectors.keys())

    def matrix(self, facts: Iterable[Fact | int]) -> np.ndarray:
        """Stack the embeddings of ``facts`` into a ``(n, dimension)`` matrix."""
        rows = [self._vectors[self._key(f)] for f in facts]
        if not rows:
            return np.zeros((0, self.dimension))
        return np.vstack(rows)

    # ---------------------------------------------------------------- misc

    def copy(self) -> "TupleEmbedding":
        return TupleEmbedding(self.dimension, self._vectors)

    def merge(self, other: "TupleEmbedding") -> "TupleEmbedding":
        """A new embedding containing both mappings (``other`` wins on clashes)."""
        if other.dimension != self.dimension:
            raise ValueError("cannot merge embeddings of different dimensions")
        merged = self.copy()
        for fact_id in other:
            merged.set(fact_id, other.vector(fact_id))
        return merged

    def restrict(self, facts: Iterable[Fact | int]) -> "TupleEmbedding":
        """A new embedding containing only the given facts."""
        keys = {self._key(f) for f in facts}
        return TupleEmbedding(
            self.dimension,
            {k: v for k, v in self._vectors.items() if k in keys},
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"TupleEmbedding(dimension={self.dimension}, facts={len(self)})"

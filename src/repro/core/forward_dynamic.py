"""The FoRWaRD algorithm — dynamic phase (Section V-E of the paper).

A newly inserted ``R``-fact ``f_new`` is embedded without touching the
existing embeddings by solving the over-determined linear system of
Equation (9): each sampled triple ``(f_old, s, A)`` contributes one equation

    φ(f_new)ᵀ · ψ(s, A) · φ(f_old) = KD(d_{s,f_old}[A], d_{s,f_new}[A]),

i.e. a row ``C_i = ψ(s, A)·φ(f_old)`` and right-hand side ``b_i``; the
minimum-norm least-squares solution (Equation (10)) is ``φ(f_new)``.

Distributions are computed by the compiled walk engine: the new fact's
distribution is a single sparse row propagation, and inserted facts are
*appended* to the compiled arrays (no recompilation), so one-by-one arrival
streams stay cheap.  In the all-at-once setting (``recompute_old_paths``)
the old facts' distributions are recomputed for a whole walk target at once
from the engine's batched attribute matrix.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np
from scipy import sparse

from repro.core.base import TupleEmbedding
from repro.core.forward import ForwardModel, WalkTarget
from repro.db.database import Database, Fact
from repro.engine import WalkEngine
from repro.engine.parallel import solve_systems
from repro.kernels.base import Kernel
from repro.utils.linalg import solve_least_squares
from repro.utils.rng import ensure_rng
from repro.walks.random_walks import AttributeDistribution


class _TargetContext:
    """Per-walk-target state shared by every fact of one extension batch.

    Holds exactly the quantities :meth:`ForwardDynamicExtender.embed_fact`
    would recompute per fact: the candidate anchor list, each candidate's
    distribution as (union positions, probabilities), the new facts'
    distributions, and — the expensive part — one kernel cross-matrix over
    the union of *all* candidate supports against the union of *all* new
    supports, evaluated once per batch instead of once per fact.
    """

    __slots__ = (
        "target", "new_dists", "candidates", "supports", "union_index",
        "kernel_columns", "proj", "anchor",
    )

    def __init__(
        self,
        target: WalkTarget,
        new_dists: list[AttributeDistribution | None],
        candidates: list[int],
        supports: dict[int, tuple[np.ndarray, np.ndarray]],
        union_index: dict[Any, int],
        kernel_columns: dict[Any, np.ndarray],
        proj: np.ndarray,
        anchor: "sparse.csr_matrix",
    ):
        self.target = target
        self.new_dists = new_dists
        self.candidates = candidates
        self.supports = supports
        self.union_index = union_index
        self.kernel_columns = kernel_columns
        self.proj = proj
        self.anchor = anchor

    def similarity(self, new_dist: AttributeDistribution) -> np.ndarray:
        """``Σ_v K(union, v)·p_new(v)`` — the union's similarity to one fact.

        Kernel columns are memoised per value across batches and facts (the
        kernel depends only on the value pair, and the union is struct-keyed),
        so only first-seen values pay a kernel evaluation.
        """
        columns = self.kernel_columns
        missing = [value for value in new_dist.values if value not in columns]
        if missing:
            block = self.target.kernel.cross_matrix(list(self.union_index), missing)
            for j, value in enumerate(missing):
                columns[value] = np.ascontiguousarray(block[:, j])
        stacked = np.stack([columns[value] for value in new_dist.values], axis=1)
        return stacked @ np.asarray(new_dist.probabilities, dtype=np.float64)


class ForwardDynamicExtender:
    """Extends a trained :class:`ForwardModel` to newly inserted facts.

    Parameters
    ----------
    model:
        The static-phase model (its ``φ``, ``ψ`` and walk targets are reused
        and never modified — stability by construction).
    db:
        The *current* database, i.e. the training database with the new
        facts (and their referenced facts) already inserted.
    recompute_old_paths:
        When true, destination distributions of *old* facts are recomputed on
        the current database (the paper's all-at-once setting); when false
        the training-time distributions are reused (the one-by-one setting,
        where recomputing for every arrival would be too slow).
    engine:
        An optional shared :class:`WalkEngine` compiled from ``db``; one is
        compiled lazily otherwise.  Call :meth:`notify_inserted` after
        inserting facts so the engine appends them incrementally.
    """

    def __init__(
        self,
        model: ForwardModel,
        db: Database,
        recompute_old_paths: bool = False,
        rng: int | np.random.Generator | None = None,
        engine: WalkEngine | None = None,
    ):
        self.model = model
        self.db = db
        self.recompute_old_paths = recompute_old_paths
        self.rng = ensure_rng(rng)
        if engine is not None and engine.db is not db:
            raise ValueError("engine is compiled from a different database")
        self._engine = engine
        # target index -> (attribute struct signature, fact_id -> distribution
        # or None); keyed structurally so pure insertions — which only append
        # attribute-matrix rows — keep the old facts' distributions cached
        self._old_cache: dict[
            int, tuple[tuple, dict[int, AttributeDistribution | None]]
        ] = {}
        # target index -> (attribute struct signature, candidates, supports,
        # union index, kernel column cache); the batched pipeline's per-target
        # anchor context, stable while no existing row changed structurally
        self._context_cache: dict[int, tuple] = {}
        # (target index, fact id) -> (attribute struct signature, distribution
        # or None) for *streamed* facts: under pure appends an already
        # computed row keeps its exact bits, so re-embedding the whole stream
        # each batch (the recompute policy) only queries the engine for the
        # facts that actually arrived in the batch
        self._new_dist_cache: dict[
            tuple[int, int], tuple[tuple, AttributeDistribution | None]
        ] = {}
        # memo of the last embedded sequence: the recompute policy replays the
        # whole arrival stream under a freshly reseeded RNG every batch, so a
        # fact at an unchanged position receives the exact same candidate
        # draws; its picks, per-target equation blocks and solved vector are
        # reused without consuming randomness (see :meth:`extend_batch`)
        self._sequence_cache: dict[str, Any] | None = None
        # target index -> training-time distributions (static, cached once)
        self._trained_cache: dict[int, dict[int, AttributeDistribution | None]] = {}

    @property
    def engine(self) -> WalkEngine:
        if self._engine is None:
            self._engine = WalkEngine(self.db)
        return self._engine

    # ----------------------------------------------------------------- API

    def extend(self, new_facts: Iterable[Fact]) -> TupleEmbedding:
        """Embed every new fact of the model's relation; returns only the new vectors.

        Facts from other relations are ignored (FoRWaRD embeds the prediction
        relation only); facts that already have an embedding are skipped.
        The model is updated in place via :meth:`ForwardModel.add_extended`.
        """
        result = TupleEmbedding(self.model.dimension)
        for fact in new_facts:
            if fact.relation != self.model.relation or self.model.has_fact(fact):
                continue
            vector = self.embed_fact(fact)
            self.model.add_extended(fact, vector)
            result.set(fact, vector)
        return result

    def prime(self) -> None:
        """Build every walk target's batch context ahead of the stream.

        The per-target anchor state (recomputed old-fact distributions, the
        support union, the candidate projection and probability matrices) is
        fact-independent and struct-keyed, so a serving process can pay for
        it once at startup instead of inside the first batch's apply path.
        Idempotent; contexts invalidated by later structural changes are
        rebuilt lazily as usual.
        """
        self._batch_contexts([])

    def notify_inserted(self, facts: Iterable[Fact]) -> None:
        """Append facts inserted into ``db`` to the compiled engine.

        Call this between insertion steps so that distributions of *new*
        facts always see the current database.  The append is incremental —
        no arrays are recompiled — and version-keyed caches (including the
        recomputed old-fact distributions of the all-at-once setting)
        invalidate automatically.
        """
        self.engine.add_facts(facts)

    def notify_deleted(self, facts: Iterable[Fact]) -> None:
        """Tombstone facts deleted from ``db`` in the compiled engine.

        Deleted facts of the model's relation also lose their dynamically
        extended embedding (trained rows of ``φ`` are frozen and simply
        stop being candidates — their recomputed distributions are None).
        """
        facts = list(facts)
        self.engine.remove_facts(facts)
        for fact in facts:
            if fact.relation == self.model.relation:
                self.model.discard_extended(fact)

    def notify_updated(self, facts: Iterable[Fact]) -> None:
        """Re-encode updated facts (post-update values) in the compiled engine.

        Updated *streamed* facts of the model's relation lose their extended
        embedding so the next :meth:`extend`/:meth:`embed_fact` re-derives
        it from the new values; trained embeddings stay frozen.
        """
        facts = list(facts)
        self.engine.update_facts(facts)
        for fact in facts:
            if (
                fact.relation == self.model.relation
                and fact.fact_id not in self.model.fact_row
            ):
                self.model.discard_extended(fact)

    # ------------------------------------------------------------ internals

    def _old_distributions(self, target: WalkTarget) -> dict[int, AttributeDistribution | None]:
        """Training-time (or recomputed) distributions of all old facts."""
        if not self.recompute_old_paths:
            cached = self._trained_cache.get(target.index)
            if cached is None:
                cached = {
                    fact_id: self.model.distribution(fact_id, target.index)
                    for fact_id in self.model.fact_ids
                }
                self._trained_cache[target.index] = cached
            return cached
        engine = self.engine
        struct = engine.attribute_struct_signature(target.scheme)
        cached = self._old_cache.get(target.index)
        if cached is not None and cached[0] == struct:
            return cached[1]
        matrix, vocab = engine.attribute_matrix(target.scheme, target.attribute)
        compiled_rel = engine.compiled.relations[self.model.relation]
        indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
        result: dict[int, AttributeDistribution | None] = {}
        for fact_id in self.model.fact_ids:
            row = compiled_rel.row_of.get(fact_id)
            if row is None:  # a trained fact deleted from the database
                result[fact_id] = None
                continue
            lo, hi = indptr[row], indptr[row + 1]
            if lo == hi:
                result[fact_id] = None
            else:
                result[fact_id] = AttributeDistribution(
                    target.scheme,
                    target.attribute,
                    tuple(vocab[indices[lo:hi]]),
                    data[lo:hi].copy(),
                )
        self._old_cache[target.index] = (struct, result)
        return result

    def _old_distribution(
        self, fact_id: int, target: WalkTarget
    ) -> AttributeDistribution | None:
        if not self.recompute_old_paths:
            return self.model.distribution(fact_id, target.index)
        return self._old_distributions(target).get(fact_id)

    def embed_fact(self, fact: Fact) -> np.ndarray:
        """Compute ``φ(f_new)`` for one new fact (does not modify the model)."""
        engine = self.engine
        if not engine.compiled.has_fact(fact) or engine.compiled.num_facts != len(self.db):
            # insertions the caller did not pass to notify_inserted; catch up
            engine.refresh()
        rows: list[np.ndarray] = []
        rhs: list[np.ndarray] = []
        n_per_target = self.model.config.n_new_samples
        for target in self.model.targets:
            new_dist = engine.attribute_distribution(fact, target.scheme, target.attribute)
            if new_dist is None:
                continue
            old_dists = self._old_distributions(target)
            # deleted trained facts stop being regression anchors: in the
            # recompute setting their distribution is already None; the
            # one-by-one setting caches training-time distributions, so the
            # existence check is what drops them there
            candidates = [
                fid
                for fid in self.model.fact_ids
                if old_dists[fid] is not None
                and fid in self.db._facts_by_id  # noqa: SLF001 - cheap membership
            ]
            if not candidates:
                continue
            chosen = self._choose_candidates(candidates, n_per_target)
            kd = _expected_kernels(
                target.kernel, [old_dists[fid] for fid in chosen], new_dist
            )
            chosen_rows = np.array([self.model.fact_row[fid] for fid in chosen])
            matrix = self.model.psi[target.index]
            rows.append(self.model.phi[chosen_rows] @ matrix.T)
            rhs.append(kd)
        if not rows:
            # A fact with no completable walk to any kernelized attribute gives
            # an empty system; fall back to the centroid of the trained facts
            # so downstream consumers still receive a usable vector.
            return self.model.phi.mean(axis=0)
        return solve_least_squares(np.vstack(rows), np.concatenate(rhs))

    def extend_batch(
        self, facts: Sequence[Fact], workers: int = 0
    ) -> dict[int, np.ndarray]:
        """Embed many new facts through one fused batched pipeline.

        Semantically identical to calling :meth:`embed_fact` on every fact in
        order — the RNG is consumed in the same fact-major, target-minor
        order, so a fixed seed produces the same candidate draws — but the
        per-target context (attribute matrix, candidate anchors, and one
        kernel cross-matrix over the union of all supports) is computed once
        per *batch* instead of once per *fact*, which is where the serial
        path spends almost all of its time.  Returns ``fact_id -> φ(f_new)``;
        the model is not modified.

        ``workers > 1`` fans the final least-squares solves out over a
        process pool (:func:`repro.engine.parallel.solve_systems`).  All
        randomness is consumed during assembly, before the pool is involved,
        so worker results are byte-identical to the serial path.

        Re-embedding the same arrival prefix (the recompute policy replays the
        whole stream every batch under a per-pass reseeded RNG) is memoised
        per fact *and* per target: while a fact sits at the same position of
        the sequence and every target's candidate count is unchanged, its
        candidate draws are identical by determinism, so the recorded picks
        and equation blocks are reused without touching the RNG at all.  A
        structural change in one walk target (a deletion, an update, or an
        insert that renormalises a backward step) rebuilds only that target's
        block and re-solves only the affected facts; everything else is
        returned verbatim.

        The three stages are instrumented as ``service.embed.prepare`` /
        ``service.embed.assemble`` / ``service.embed.solve`` when the
        engine's telemetry bundle is enabled.
        """
        facts = list(facts)
        if not facts:
            return {}
        engine = self.engine
        compiled = engine.compiled
        if compiled.num_facts != len(self.db) or not all(
            compiled.has_fact(fact) for fact in facts
        ):
            # insertions the caller did not pass to notify_inserted; catch up
            engine.refresh()
        telemetry = engine.telemetry
        n_per_target = self.model.config.n_new_samples
        start_state = self.rng.bit_generator.state
        memo = self._sequence_cache
        cached_facts = (
            memo["facts"]
            if memo is not None and memo["start_state"] == start_state
            else []
        )
        with telemetry.stage("service.embed.prepare"):
            contexts = self._batch_contexts(facts)
            structs = {
                context.target.index: engine.attribute_struct_signature(
                    context.target.scheme
                )
                for context in contexts
                if context is not None
            }
        with telemetry.stage("service.embed.assemble"):
            centroid = self.model.phi.mean(axis=0)
            records: list[dict[str, Any]] = []
            systems: list[tuple[int, np.ndarray, np.ndarray]] = []
            vectors_list: list[np.ndarray | None] = [None] * len(facts)
            # a cached record stays valid while the RNG start state, the fact's
            # position, and the draw signature chain before it are unchanged —
            # then every recorded pick equals what a live pass would draw
            prefix_ok = bool(cached_facts)
            for i, fact in enumerate(facts):
                contribs = [
                    context
                    for context in contexts
                    if context is not None and context.new_dists[i] is not None
                ]
                sig = tuple(
                    (context.target.index, len(context.candidates))
                    for context in contribs
                )
                record = (
                    cached_facts[i]
                    if prefix_ok and i < len(cached_facts)
                    else None
                )
                if (
                    record is not None
                    and record["fact_id"] == fact.fact_id
                    and record["sig"] == sig
                ):
                    blocks: dict[int, tuple] = {}
                    stale = False
                    for context in contribs:
                        t_index = context.target.index
                        cached_block = record["blocks"][t_index]
                        if cached_block[0] == structs[t_index]:
                            blocks[t_index] = cached_block
                        else:
                            # the draws are still the recorded ones; only the
                            # right-hand side moved with the structure
                            picked = cached_block[1]
                            blocks[t_index] = (
                                structs[t_index],
                                picked,
                                self._rhs_block(context, i, picked),
                            )
                            stale = True
                    if not contribs:
                        vectors_list[i] = record["vector"]
                    elif stale:
                        systems.append(
                            (i, *self._assemble_system(contribs, blocks))
                        )
                    else:
                        vectors_list[i] = record["vector"]
                    records.append(
                        {
                            "fact_id": fact.fact_id,
                            "sig": sig,
                            "blocks": blocks,
                            "after_state": record["after_state"],
                            "vector": record["vector"],
                        }
                    )
                    continue
                if prefix_ok:
                    prefix_ok = False
                    if records:
                        # leave the reused region: position the generator
                        # exactly after the last reused fact's draws
                        self.rng.bit_generator.state = records[-1]["after_state"]
                blocks = {}
                for context in contribs:
                    picked = self._choose_indices(
                        len(context.candidates), n_per_target
                    )
                    blocks[context.target.index] = (
                        structs[context.target.index],
                        picked,
                        self._rhs_block(context, i, picked),
                    )
                if contribs:
                    systems.append((i, *self._assemble_system(contribs, blocks)))
                else:
                    # no completable walk to any kernelized attribute: fall
                    # back to the trained centroid, exactly like embed_fact
                    vectors_list[i] = centroid
                records.append(
                    {
                        "fact_id": fact.fact_id,
                        "sig": sig,
                        "blocks": blocks,
                        "after_state": self.rng.bit_generator.state,
                        "vector": centroid if not contribs else None,
                    }
                )
        with telemetry.stage("service.embed.solve"):
            solved = solve_systems(
                [(matrix, rhs) for _, matrix, rhs in systems], workers=workers
            )
            for (i, _, _), vector in zip(systems, solved):
                vectors_list[i] = vector
            for i, record in enumerate(records):
                record["vector"] = vectors_list[i]
        if records:
            # a fully reused pass never touched the generator; leave it where
            # a live pass would have, for callers that keep drawing
            self.rng.bit_generator.state = records[-1]["after_state"]
        self._sequence_cache = {"start_state": start_state, "facts": records}
        return {
            fact.fact_id: vector for fact, vector in zip(facts, vectors_list)
        }

    @staticmethod
    def _rhs_block(
        context: _TargetContext, fact_index: int, picked: np.ndarray
    ) -> np.ndarray:
        """Expected kernel distances of the picked anchors against one fact."""
        similarity = context.similarity(context.new_dists[fact_index])
        return (context.anchor @ similarity)[picked]

    @staticmethod
    def _assemble_system(
        contribs: list[_TargetContext], blocks: dict[int, tuple]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stack the per-target equation blocks into one least-squares system."""
        rows = []
        rhs = []
        for context in contribs:
            _, picked, rhs_block = blocks[context.target.index]
            rows.append(context.proj[picked])
            rhs.append(rhs_block)
        return np.vstack(rows), np.concatenate(rhs)

    def _batch_contexts(self, facts: Sequence[Fact]) -> list["_TargetContext | None"]:
        """One :class:`_TargetContext` per walk target (None when inert)."""
        engine = self.engine
        targets = self.model.targets
        # scheme-level cache accounting: one hit/miss per (new fact, target)
        # distribution lookup and per anchor-context check, so a test (or an
        # operator) can verify that batches touching disjoint foreign keys
        # skip recomputation entirely (see docs/PERFORMANCE.md)
        metrics = engine.telemetry.metrics
        newdist_hits = metrics.counter("pipeline.cache.newdist.hits")
        newdist_misses = metrics.counter("pipeline.cache.newdist.misses")
        context_hits = metrics.counter("pipeline.cache.context.hits")
        context_misses = metrics.counter("pipeline.cache.context.misses")
        structs = [
            engine.attribute_struct_signature(target.scheme) for target in targets
        ]
        # new facts' distributions, fused: one engine call per fact covering
        # every target it has no struct-fresh cache entry for — a single
        # destination propagation per distinct scheme instead of one layered
        # query per (fact, target)
        dists: list[list[AttributeDistribution | None]] = [
            [None] * len(facts) for _ in targets
        ]
        for i, fact in enumerate(facts):
            missing: list[int] = []
            for j, target in enumerate(targets):
                hit = self._new_dist_cache.get((target.index, fact.fact_id))
                if hit is not None and hit[0] == structs[j]:
                    newdist_hits.inc()
                    dists[j][i] = hit[1]
                else:
                    newdist_misses.inc()
                    missing.append(j)
            if not missing:
                continue
            fused = engine.attribute_rows(
                fact, [(targets[j].scheme, targets[j].attribute) for j in missing]
            )
            for j, row in zip(missing, fused):
                target = targets[j]
                dist = (
                    None
                    if row is None
                    else AttributeDistribution(
                        target.scheme, target.attribute, tuple(row[0]), row[1]
                    )
                )
                self._new_dist_cache[(target.index, fact.fact_id)] = (structs[j], dist)
                dists[j][i] = dist
        contexts: list[_TargetContext | None] = []
        for j, target in enumerate(targets):
            struct = structs[j]
            new_dists = dists[j]
            if facts and all(dist is None for dist in new_dists):
                # no fact of this batch reaches the target (the serial path
                # would `continue` on every one, consuming no RNG) — don't
                # rebuild a possibly invalidated anchor context it won't use
                contexts.append(None)
                continue
            cached = self._context_cache.get(target.index)
            if cached is not None and cached[0] == struct:
                context_hits.inc()
                (
                    _, candidates, supports, union_index, kernel_columns,
                    proj, anchor,
                ) = cached
            else:
                context_misses.inc()
                old_dists = self._old_distributions(target)
                candidates = [
                    fid
                    for fid in self.model.fact_ids
                    if old_dists[fid] is not None
                    and fid in self.db._facts_by_id  # noqa: SLF001 - membership
                ]
                union_index = {}
                supports = {}
                for fid in candidates:
                    dist = old_dists[fid]
                    positions = np.empty(len(dist.values), dtype=np.intp)
                    for j, value in enumerate(dist.values):
                        position = union_index.get(value)
                        if position is None:
                            position = len(union_index)
                            union_index[value] = position
                        positions[j] = position
                    supports[fid] = (
                        positions,
                        np.asarray(dist.probabilities, dtype=np.float64),
                    )
                # kernel column per value, filled lazily below; K(u, v) depends
                # only on the pair, so columns survive as long as the union does
                kernel_columns = {}
                # candidate-order projection rows φ(f_old)·ψᵀ and one CSR of
                # candidate probabilities over the union: φ/ψ are frozen and
                # the supports are struct-stable, so a fact's equations reduce
                # to fancy-indexing ``proj`` and one matvec through ``anchor``
                cand_rows = np.array(
                    [self.model.fact_row[fid] for fid in candidates],
                    dtype=np.intp,
                )
                proj = self.model.phi[cand_rows] @ self.model.psi[target.index].T
                indptr = np.zeros(len(candidates) + 1, dtype=np.intp)
                for i, fid in enumerate(candidates):
                    indptr[i + 1] = indptr[i] + len(supports[fid][0])
                if candidates:
                    indices = np.concatenate(
                        [supports[fid][0] for fid in candidates]
                    )
                    data = np.concatenate(
                        [supports[fid][1] for fid in candidates]
                    )
                else:
                    indices = np.empty(0, dtype=np.intp)
                    data = np.empty(0, dtype=np.float64)
                anchor = sparse.csr_matrix(
                    (data, indices, indptr),
                    shape=(len(candidates), len(union_index)),
                )
                self._context_cache[target.index] = (
                    struct, candidates, supports, union_index, kernel_columns,
                    proj, anchor,
                )
            if not candidates or all(dist is None for dist in new_dists):
                # the serial path would `continue` on every fact (no RNG use)
                contexts.append(None)
                continue
            # coalesce the batch's first-seen kernel values into one
            # cross-matrix evaluation per target; per-fact lazy fills would
            # fragment the same work into hundreds of tiny kernel calls when
            # the recompute policy replays a long arrival stream
            missing_values = {
                value: None
                for dist in new_dists
                if dist is not None
                for value in dist.values
                if value not in kernel_columns
            }
            if missing_values:
                block = target.kernel.cross_matrix(
                    list(union_index), list(missing_values)
                )
                for k, value in enumerate(missing_values):
                    kernel_columns[value] = np.ascontiguousarray(block[:, k])
            contexts.append(
                _TargetContext(
                    target, new_dists, candidates, supports, union_index,
                    kernel_columns, proj, anchor,
                )
            )
        return contexts

    def _choose_indices(self, n_candidates: int, count: int) -> np.ndarray:
        """Positions of the sampled anchors within the candidate list.

        Consumes the RNG exactly as :meth:`_choose_candidates` (no draw when
        every candidate is taken), so the serial and batched paths stay in
        lockstep on a shared seed.
        """
        if n_candidates <= count:
            return np.arange(n_candidates)
        return self.rng.choice(n_candidates, size=count, replace=False)

    def _choose_candidates(self, candidates: Sequence[int], count: int) -> list[int]:
        if len(candidates) <= count:
            return list(candidates)
        return [candidates[int(i)] for i in self._choose_indices(len(candidates), count)]


def _expected_kernels(
    kernel: Kernel,
    old_dists: Sequence[AttributeDistribution],
    new_dist: AttributeDistribution,
) -> np.ndarray:
    """``KD(d_old, d_new)`` for many old distributions against one new one.

    Equivalent to per-pair :meth:`Kernel.expected_similarity`, but the kernel
    matrix against the new support is evaluated once over the union of old
    supports (old distributions share their vocabularies almost entirely), so
    the cost is ``|union| · |new|`` instead of ``Σ_i |old_i| · |new|``.
    """
    index: dict[Any, int] = {}
    for dist in old_dists:
        for value in dist.values:
            if value not in index:
                index[value] = len(index)
    union = list(index)
    new_probs = np.asarray(new_dist.probabilities, dtype=np.float64)
    similarity_to_new = kernel.cross_matrix(union, list(new_dist.values)) @ new_probs
    out = np.empty(len(old_dists), dtype=np.float64)
    for i, dist in enumerate(old_dists):
        positions = [index[value] for value in dist.values]
        out[i] = float(
            np.asarray(dist.probabilities, dtype=np.float64) @ similarity_to_new[positions]
        )
    return out

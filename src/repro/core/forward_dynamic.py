"""The FoRWaRD algorithm — dynamic phase (Section V-E of the paper).

A newly inserted ``R``-fact ``f_new`` is embedded without touching the
existing embeddings by solving the over-determined linear system of
Equation (9): each sampled triple ``(f_old, s, A)`` contributes one equation

    φ(f_new)ᵀ · ψ(s, A) · φ(f_old) = KD(d_{s,f_old}[A], d_{s,f_new}[A]),

i.e. a row ``C_i = ψ(s, A)·φ(f_old)`` and right-hand side ``b_i``; the
minimum-norm least-squares solution (Equation (10)) is ``φ(f_new)``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.base import TupleEmbedding
from repro.core.forward import ForwardModel, WalkTarget
from repro.db.database import Database, Fact
from repro.utils.linalg import solve_least_squares
from repro.utils.rng import ensure_rng
from repro.walks.random_walks import AttributeDistribution, RandomWalker


class ForwardDynamicExtender:
    """Extends a trained :class:`ForwardModel` to newly inserted facts.

    Parameters
    ----------
    model:
        The static-phase model (its ``φ``, ``ψ`` and walk targets are reused
        and never modified — stability by construction).
    db:
        The *current* database, i.e. the training database with the new
        facts (and their referenced facts) already inserted.
    recompute_old_paths:
        When true, destination distributions of *old* facts are recomputed on
        the current database (the paper's all-at-once setting); when false
        the training-time distributions are reused (the one-by-one setting,
        where recomputing for every arrival would be too slow).
    """

    def __init__(
        self,
        model: ForwardModel,
        db: Database,
        recompute_old_paths: bool = False,
        rng: int | np.random.Generator | None = None,
    ):
        self.model = model
        self.db = db
        self.recompute_old_paths = recompute_old_paths
        self.rng = ensure_rng(rng)
        self._walker = RandomWalker(db, self.rng)
        self._old_cache: dict[tuple[int, int], AttributeDistribution | None] = {}

    # ----------------------------------------------------------------- API

    def extend(self, new_facts: Iterable[Fact]) -> TupleEmbedding:
        """Embed every new fact of the model's relation; returns only the new vectors.

        Facts from other relations are ignored (FoRWaRD embeds the prediction
        relation only); facts that already have an embedding are skipped.
        The model is updated in place via :meth:`ForwardModel.add_extended`.
        """
        result = TupleEmbedding(self.model.dimension)
        for fact in new_facts:
            if fact.relation != self.model.relation or self.model.has_fact(fact):
                continue
            vector = self.embed_fact(fact)
            self.model.add_extended(fact, vector)
            result.set(fact, vector)
        return result

    def notify_inserted(self, facts: Iterable[Fact]) -> None:
        """Invalidate walker caches after facts were inserted into ``db``.

        Call this between one-by-one insertion steps so that distributions of
        *new* facts always see the current database.  Old facts' cached
        training-time distributions are unaffected (they are only recomputed
        when ``recompute_old_paths`` is set).
        """
        del facts  # the whole cache is dropped; argument kept for symmetry
        self._walker.clear_cache()
        if self.recompute_old_paths:
            self._old_cache.clear()

    # ------------------------------------------------------------ internals

    def _old_distribution(
        self, fact_id: int, target: WalkTarget
    ) -> AttributeDistribution | None:
        if not self.recompute_old_paths:
            return self.model.distribution(fact_id, target.index)
        key = (fact_id, target.index)
        if key not in self._old_cache:
            fact = self.db.fact(fact_id)
            self._old_cache[key] = self._walker.attribute_distribution(
                fact, target.scheme, target.attribute
            )
        return self._old_cache[key]

    def embed_fact(self, fact: Fact) -> np.ndarray:
        """Compute ``φ(f_new)`` for one new fact (does not modify the model)."""
        rows: list[np.ndarray] = []
        rhs: list[float] = []
        n_per_target = self.model.config.n_new_samples
        for target in self.model.targets:
            new_dist = self._walker.attribute_distribution(fact, target.scheme, target.attribute)
            if new_dist is None:
                continue
            candidates = [
                fid
                for fid in self.model.fact_ids
                if self._old_distribution(fid, target) is not None
            ]
            if not candidates:
                continue
            chosen = self._choose_candidates(candidates, n_per_target)
            matrix = self.model.psi[target.index]
            for old_id in chosen:
                old_dist = self._old_distribution(old_id, target)
                kd = target.kernel.expected_similarity(
                    old_dist.values,
                    old_dist.probabilities,
                    new_dist.values,
                    new_dist.probabilities,
                )
                rows.append(matrix @ self.model.phi[self.model.fact_row[old_id]])
                rhs.append(kd)
        if not rows:
            # A fact with no completable walk to any kernelized attribute gives
            # an empty system; fall back to the centroid of the trained facts
            # so downstream consumers still receive a usable vector.
            return self.model.phi.mean(axis=0)
        return solve_least_squares(np.vstack(rows), np.asarray(rhs))

    def _choose_candidates(self, candidates: Sequence[int], count: int) -> list[int]:
        if len(candidates) <= count:
            return list(candidates)
        picked = self.rng.choice(len(candidates), size=count, replace=False)
        return [candidates[int(i)] for i in picked]

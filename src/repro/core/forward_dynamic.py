"""The FoRWaRD algorithm — dynamic phase (Section V-E of the paper).

A newly inserted ``R``-fact ``f_new`` is embedded without touching the
existing embeddings by solving the over-determined linear system of
Equation (9): each sampled triple ``(f_old, s, A)`` contributes one equation

    φ(f_new)ᵀ · ψ(s, A) · φ(f_old) = KD(d_{s,f_old}[A], d_{s,f_new}[A]),

i.e. a row ``C_i = ψ(s, A)·φ(f_old)`` and right-hand side ``b_i``; the
minimum-norm least-squares solution (Equation (10)) is ``φ(f_new)``.

Distributions are computed by the compiled walk engine: the new fact's
distribution is a single sparse row propagation, and inserted facts are
*appended* to the compiled arrays (no recompilation), so one-by-one arrival
streams stay cheap.  In the all-at-once setting (``recompute_old_paths``)
the old facts' distributions are recomputed for a whole walk target at once
from the engine's batched attribute matrix.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.core.base import TupleEmbedding
from repro.core.forward import ForwardModel, WalkTarget
from repro.db.database import Database, Fact
from repro.engine import WalkEngine
from repro.kernels.base import Kernel
from repro.utils.linalg import solve_least_squares
from repro.utils.rng import ensure_rng
from repro.walks.random_walks import AttributeDistribution


class ForwardDynamicExtender:
    """Extends a trained :class:`ForwardModel` to newly inserted facts.

    Parameters
    ----------
    model:
        The static-phase model (its ``φ``, ``ψ`` and walk targets are reused
        and never modified — stability by construction).
    db:
        The *current* database, i.e. the training database with the new
        facts (and their referenced facts) already inserted.
    recompute_old_paths:
        When true, destination distributions of *old* facts are recomputed on
        the current database (the paper's all-at-once setting); when false
        the training-time distributions are reused (the one-by-one setting,
        where recomputing for every arrival would be too slow).
    engine:
        An optional shared :class:`WalkEngine` compiled from ``db``; one is
        compiled lazily otherwise.  Call :meth:`notify_inserted` after
        inserting facts so the engine appends them incrementally.
    """

    def __init__(
        self,
        model: ForwardModel,
        db: Database,
        recompute_old_paths: bool = False,
        rng: int | np.random.Generator | None = None,
        engine: WalkEngine | None = None,
    ):
        self.model = model
        self.db = db
        self.recompute_old_paths = recompute_old_paths
        self.rng = ensure_rng(rng)
        if engine is not None and engine.db is not db:
            raise ValueError("engine is compiled from a different database")
        self._engine = engine
        # target index -> (engine version, fact_id -> distribution or None)
        self._old_cache: dict[int, tuple[int, dict[int, AttributeDistribution | None]]] = {}
        # target index -> training-time distributions (static, cached once)
        self._trained_cache: dict[int, dict[int, AttributeDistribution | None]] = {}

    @property
    def engine(self) -> WalkEngine:
        if self._engine is None:
            self._engine = WalkEngine(self.db)
        return self._engine

    # ----------------------------------------------------------------- API

    def extend(self, new_facts: Iterable[Fact]) -> TupleEmbedding:
        """Embed every new fact of the model's relation; returns only the new vectors.

        Facts from other relations are ignored (FoRWaRD embeds the prediction
        relation only); facts that already have an embedding are skipped.
        The model is updated in place via :meth:`ForwardModel.add_extended`.
        """
        result = TupleEmbedding(self.model.dimension)
        for fact in new_facts:
            if fact.relation != self.model.relation or self.model.has_fact(fact):
                continue
            vector = self.embed_fact(fact)
            self.model.add_extended(fact, vector)
            result.set(fact, vector)
        return result

    def notify_inserted(self, facts: Iterable[Fact]) -> None:
        """Append facts inserted into ``db`` to the compiled engine.

        Call this between insertion steps so that distributions of *new*
        facts always see the current database.  The append is incremental —
        no arrays are recompiled — and version-keyed caches (including the
        recomputed old-fact distributions of the all-at-once setting)
        invalidate automatically.
        """
        self.engine.add_facts(facts)

    def notify_deleted(self, facts: Iterable[Fact]) -> None:
        """Tombstone facts deleted from ``db`` in the compiled engine.

        Deleted facts of the model's relation also lose their dynamically
        extended embedding (trained rows of ``φ`` are frozen and simply
        stop being candidates — their recomputed distributions are None).
        """
        facts = list(facts)
        self.engine.remove_facts(facts)
        for fact in facts:
            if fact.relation == self.model.relation:
                self.model.discard_extended(fact)

    def notify_updated(self, facts: Iterable[Fact]) -> None:
        """Re-encode updated facts (post-update values) in the compiled engine.

        Updated *streamed* facts of the model's relation lose their extended
        embedding so the next :meth:`extend`/:meth:`embed_fact` re-derives
        it from the new values; trained embeddings stay frozen.
        """
        facts = list(facts)
        self.engine.update_facts(facts)
        for fact in facts:
            if (
                fact.relation == self.model.relation
                and fact.fact_id not in self.model.fact_row
            ):
                self.model.discard_extended(fact)

    # ------------------------------------------------------------ internals

    def _old_distributions(self, target: WalkTarget) -> dict[int, AttributeDistribution | None]:
        """Training-time (or recomputed) distributions of all old facts."""
        if not self.recompute_old_paths:
            cached = self._trained_cache.get(target.index)
            if cached is None:
                cached = {
                    fact_id: self.model.distribution(fact_id, target.index)
                    for fact_id in self.model.fact_ids
                }
                self._trained_cache[target.index] = cached
            return cached
        engine = self.engine
        cached = self._old_cache.get(target.index)
        if cached is not None and cached[0] == engine.version:
            return cached[1]
        matrix, vocab = engine.attribute_matrix(target.scheme, target.attribute)
        compiled_rel = engine.compiled.relations[self.model.relation]
        indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
        result: dict[int, AttributeDistribution | None] = {}
        for fact_id in self.model.fact_ids:
            row = compiled_rel.row_of.get(fact_id)
            if row is None:  # a trained fact deleted from the database
                result[fact_id] = None
                continue
            lo, hi = indptr[row], indptr[row + 1]
            if lo == hi:
                result[fact_id] = None
            else:
                result[fact_id] = AttributeDistribution(
                    target.scheme,
                    target.attribute,
                    tuple(vocab[indices[lo:hi]]),
                    data[lo:hi].copy(),
                )
        self._old_cache[target.index] = (engine.version, result)
        return result

    def _old_distribution(
        self, fact_id: int, target: WalkTarget
    ) -> AttributeDistribution | None:
        if not self.recompute_old_paths:
            return self.model.distribution(fact_id, target.index)
        return self._old_distributions(target).get(fact_id)

    def embed_fact(self, fact: Fact) -> np.ndarray:
        """Compute ``φ(f_new)`` for one new fact (does not modify the model)."""
        engine = self.engine
        if not engine.compiled.has_fact(fact) or engine.compiled.num_facts != len(self.db):
            # insertions the caller did not pass to notify_inserted; catch up
            engine.refresh()
        rows: list[np.ndarray] = []
        rhs: list[np.ndarray] = []
        n_per_target = self.model.config.n_new_samples
        for target in self.model.targets:
            new_dist = engine.attribute_distribution(fact, target.scheme, target.attribute)
            if new_dist is None:
                continue
            old_dists = self._old_distributions(target)
            # deleted trained facts stop being regression anchors: in the
            # recompute setting their distribution is already None; the
            # one-by-one setting caches training-time distributions, so the
            # existence check is what drops them there
            candidates = [
                fid
                for fid in self.model.fact_ids
                if old_dists[fid] is not None
                and fid in self.db._facts_by_id  # noqa: SLF001 - cheap membership
            ]
            if not candidates:
                continue
            chosen = self._choose_candidates(candidates, n_per_target)
            kd = _expected_kernels(
                target.kernel, [old_dists[fid] for fid in chosen], new_dist
            )
            chosen_rows = np.array([self.model.fact_row[fid] for fid in chosen])
            matrix = self.model.psi[target.index]
            rows.append(self.model.phi[chosen_rows] @ matrix.T)
            rhs.append(kd)
        if not rows:
            # A fact with no completable walk to any kernelized attribute gives
            # an empty system; fall back to the centroid of the trained facts
            # so downstream consumers still receive a usable vector.
            return self.model.phi.mean(axis=0)
        return solve_least_squares(np.vstack(rows), np.concatenate(rhs))

    def _choose_candidates(self, candidates: Sequence[int], count: int) -> list[int]:
        if len(candidates) <= count:
            return list(candidates)
        picked = self.rng.choice(len(candidates), size=count, replace=False)
        return [candidates[int(i)] for i in picked]


def _expected_kernels(
    kernel: Kernel,
    old_dists: Sequence[AttributeDistribution],
    new_dist: AttributeDistribution,
) -> np.ndarray:
    """``KD(d_old, d_new)`` for many old distributions against one new one.

    Equivalent to per-pair :meth:`Kernel.expected_similarity`, but the kernel
    matrix against the new support is evaluated once over the union of old
    supports (old distributions share their vocabularies almost entirely), so
    the cost is ``|union| · |new|`` instead of ``Σ_i |old_i| · |new|``.
    """
    index: dict[Any, int] = {}
    for dist in old_dists:
        for value in dist.values:
            if value not in index:
                index[value] = len(index)
    union = list(index)
    new_probs = np.asarray(new_dist.probabilities, dtype=np.float64)
    similarity_to_new = kernel.cross_matrix(union, list(new_dist.values)) @ new_probs
    out = np.empty(len(old_dists), dtype=np.float64)
    for i, dist in enumerate(old_dists):
        positions = [index[value] for value in dist.values]
        out[i] = float(
            np.asarray(dist.probabilities, dtype=np.float64) @ similarity_to_new[positions]
        )
    return out

"""Stability checking for dynamic embedding extensions.

The defining requirement of the stable database embedding problem (Section
III) is ``γ'(f) == γ(f)`` for every old fact ``f``.  These helpers quantify
and assert that property; they are used by the test suite and can be used by
downstream applications as a runtime guard.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import TupleEmbedding


@dataclass(frozen=True)
class DriftReport:
    """Per-fact drift statistics between two embeddings."""

    shared_facts: int
    max_drift: float
    mean_drift: float

    @property
    def is_zero(self) -> bool:
        return self.max_drift == 0.0


def embedding_drift(before: TupleEmbedding, after: TupleEmbedding) -> DriftReport:
    """L2 drift of every fact present in both embeddings."""
    shared = [fid for fid in before if fid in after]
    if not shared:
        return DriftReport(0, 0.0, 0.0)
    drifts = np.array(
        [float(np.linalg.norm(after.vector(fid) - before.vector(fid))) for fid in shared]
    )
    return DriftReport(len(shared), float(drifts.max()), float(drifts.mean()))


def is_stable_extension(
    before: TupleEmbedding, after: TupleEmbedding, tolerance: float = 0.0
) -> bool:
    """True when every old fact's embedding is unchanged (within ``tolerance``)
    and the new embedding covers at least the old facts."""
    for fact_id in before:
        if fact_id not in after:
            return False
    return embedding_drift(before, after).max_drift <= tolerance

"""Saving and loading embeddings and trained FoRWaRD models.

Downstream applications (record similarity, entity resolution, column
prediction) consume the embedding long after training; these helpers persist
a :class:`TupleEmbedding` to ``.npz`` and a :class:`ForwardModel`'s
parameters (φ, ψ, walk-target metadata) to a directory so the dynamic
extension can be resumed in a later process against the same database.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.base import TupleEmbedding
from repro.core.config import ForwardConfig
from repro.core.forward import ForwardModel


def save_embedding(embedding: TupleEmbedding, path: str | Path) -> None:
    """Write a tuple embedding to a ``.npz`` file (fact ids + matrix)."""
    fact_ids = np.array(embedding.fact_ids, dtype=np.int64)
    matrix = embedding.matrix(fact_ids) if len(fact_ids) else np.zeros((0, embedding.dimension))
    np.savez_compressed(
        Path(path), fact_ids=fact_ids, vectors=matrix, dimension=np.array([embedding.dimension])
    )


def load_embedding(path: str | Path) -> TupleEmbedding:
    """Load a tuple embedding previously written by :func:`save_embedding`."""
    data = np.load(Path(path))
    embedding = TupleEmbedding(int(data["dimension"][0]))
    for fact_id, vector in zip(data["fact_ids"], data["vectors"]):
        embedding.set(int(fact_id), vector)
    return embedding


def save_forward_model(model: ForwardModel, directory: str | Path) -> None:
    """Persist a trained FoRWaRD model's parameters and metadata.

    The walk-target destination-distribution cache is *not* persisted (it is
    a function of the training database and can be recomputed); a model
    loaded from disk therefore extends new tuples with
    ``recompute_old_paths=True``.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        directory / "parameters.npz",
        phi=model.phi,
        psi=model.psi,
        fact_ids=np.array(model.fact_ids, dtype=np.int64),
        extended_ids=np.array(model.extended_fact_ids, dtype=np.int64),
        extended_vectors=(
            np.vstack([model.vector(fid) for fid in model.extended_fact_ids])
            if model.extended_fact_ids
            else np.zeros((0, model.dimension))
        ),
    )
    config = model.config
    metadata = {
        "relation": model.relation,
        "loss_history": list(model.loss_history),
        "config": {
            "dimension": config.dimension,
            "n_samples": config.n_samples,
            "batch_size": config.batch_size,
            "max_walk_length": config.max_walk_length,
            "epochs": config.epochs,
            "learning_rate": config.learning_rate,
            "n_new_samples": config.n_new_samples,
            "init_scale": config.init_scale,
        },
        "targets": [
            {"index": t.index, "attribute": t.attribute, "scheme": str(t.scheme)}
            for t in model.targets
        ],
    }
    (directory / "model.json").write_text(json.dumps(metadata, indent=2))


def load_forward_model(directory: str | Path, db) -> ForwardModel:
    """Load a FoRWaRD model saved by :func:`save_forward_model`.

    ``db`` must be (structurally) the training database: walk targets are
    re-enumerated from its schema and matched against the stored target list
    to guarantee the ψ matrices line up.
    """
    from repro.core.forward import ForwardEmbedder

    directory = Path(directory)
    metadata = json.loads((directory / "model.json").read_text())
    arrays = np.load(directory / "parameters.npz")
    config = ForwardConfig(**metadata["config"])
    embedder = ForwardEmbedder(db, metadata["relation"], config)
    targets = embedder.build_targets()
    stored = metadata["targets"]
    if len(targets) != len(stored) or any(
        t.attribute != s["attribute"] or str(t.scheme) != s["scheme"]
        for t, s in zip(targets, stored)
    ):
        raise ValueError(
            "walk targets derived from the given database do not match the saved model; "
            "was the schema changed since training?"
        )
    model = ForwardModel(
        metadata["relation"],
        config,
        targets,
        [int(fid) for fid in arrays["fact_ids"]],
        arrays["phi"],
        arrays["psi"],
        distributions={},
        loss_history=metadata["loss_history"],
    )
    for fact_id, vector in zip(arrays["extended_ids"], arrays["extended_vectors"]):
        model.add_extended(int(fact_id), vector)
    return model

"""Saving and loading embeddings and trained FoRWaRD models.

Downstream applications (record similarity, entity resolution, column
prediction) consume the embedding long after training; these helpers persist
a :class:`TupleEmbedding` to ``.npz`` and a :class:`ForwardModel`'s
parameters (φ, ψ, walk-target metadata) to a directory so the dynamic
extension can be resumed in a later process against the same database.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.base import TupleEmbedding
from repro.core.config import ForwardConfig
from repro.core.forward import ForwardModel
from repro.kernels.base import Kernel
from repro.kernels.categorical import EqualityKernel
from repro.kernels.numeric import GaussianKernel
from repro.kernels.text import EditDistanceKernel, TokenJaccardKernel


def _library_version() -> str:
    """The stamping version (read lazily to avoid an import cycle)."""
    from repro import __version__

    return __version__


def save_embedding(embedding: TupleEmbedding, path: str | Path) -> None:
    """Write a tuple embedding to a ``.npz`` file (fact ids + matrix).

    The file carries the library version it was written by (``repro_version``)
    so saved artifacts are traceable; loaders ignore the stamp.
    """
    fact_ids = np.array(embedding.fact_ids, dtype=np.int64)
    matrix = embedding.matrix(fact_ids) if len(fact_ids) else np.zeros((0, embedding.dimension))
    np.savez_compressed(
        Path(path),
        fact_ids=fact_ids,
        vectors=matrix,
        dimension=np.array([embedding.dimension]),
        repro_version=np.array(_library_version()),
    )


def load_embedding(path: str | Path) -> TupleEmbedding:
    """Load a tuple embedding previously written by :func:`save_embedding`."""
    data = np.load(Path(path))
    embedding = TupleEmbedding(int(data["dimension"][0]))
    for fact_id, vector in zip(data["fact_ids"], data["vectors"]):
        embedding.set(int(fact_id), vector)
    return embedding


def _kernel_spec(kernel: Kernel) -> dict | None:
    """A JSON-safe description of a kernel, or None for unknown custom kernels.

    Exact type matches only: a *subclass* of a built-in kernel computes
    different similarities, so serializing it as its base class would
    silently change embeddings after a reload — it must take the
    unserializable path (warn on save, refit defaults on load) instead.
    """
    if type(kernel) is GaussianKernel:
        return {"type": "gaussian", "variance": kernel.variance}
    if type(kernel) is EqualityKernel:
        return {"type": "equality"}
    if type(kernel) is EditDistanceKernel:
        return {"type": "edit_distance"}
    if type(kernel) is TokenJaccardKernel:
        return {"type": "token_jaccard"}
    return None


def _kernel_from_spec(spec: dict) -> Kernel:
    kind = spec["type"]
    if kind == "gaussian":
        return GaussianKernel(spec["variance"])
    if kind == "equality":
        return EqualityKernel()
    if kind == "edit_distance":
        return EditDistanceKernel()
    if kind == "token_jaccard":
        return TokenJaccardKernel()
    raise ValueError(f"unknown kernel spec {spec!r}")


def save_forward_model(model: ForwardModel, directory: str | Path) -> None:
    """Persist a trained FoRWaRD model's parameters and metadata.

    The save is self-contained for a service restart: besides ``φ``/``ψ``
    and the walk-target list, every target's *kernel state* is stored (e.g.
    the Gaussian bandwidth fitted to the training data), so
    :func:`load_forward_model` reconstructs identical kernels instead of
    refitting them to whatever data the post-restart database happens to
    hold.  The walk-target destination-distribution cache is *not* persisted
    (it is a function of the training database and can be recomputed); a
    model loaded from disk therefore extends new tuples with
    ``recompute_old_paths=True``.
    """
    import warnings

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for target in model.targets:
        if _kernel_spec(target.kernel) is None:
            warnings.warn(
                f"walk target {target} uses a {type(target.kernel).__name__}, which "
                "cannot be serialized; load_forward_model will fall back to the "
                "default kernels fit on the load-time database for this target",
                stacklevel=2,
            )
    np.savez_compressed(
        directory / "parameters.npz",
        phi=model.phi,
        psi=model.psi,
        fact_ids=np.array(model.fact_ids, dtype=np.int64),
        extended_ids=np.array(model.extended_fact_ids, dtype=np.int64),
        extended_vectors=(
            np.vstack([model.vector(fid) for fid in model.extended_fact_ids])
            if model.extended_fact_ids
            else np.zeros((0, model.dimension))
        ),
    )
    config = model.config
    metadata = {
        "repro_version": _library_version(),
        "relation": model.relation,
        "loss_history": list(model.loss_history),
        "config": {
            "dimension": config.dimension,
            "n_samples": config.n_samples,
            "batch_size": config.batch_size,
            "max_walk_length": config.max_walk_length,
            "epochs": config.epochs,
            "learning_rate": config.learning_rate,
            "n_new_samples": config.n_new_samples,
            "init_scale": config.init_scale,
        },
        "targets": [
            {
                "index": t.index,
                "attribute": t.attribute,
                "scheme": str(t.scheme),
                "kernel": _kernel_spec(t.kernel),
            }
            for t in model.targets
        ],
    }
    (directory / "model.json").write_text(json.dumps(metadata, indent=2))


def load_forward_model(directory: str | Path, db) -> ForwardModel:
    """Load a FoRWaRD model saved by :func:`save_forward_model`.

    ``db`` must be over (structurally) the training schema: walk targets are
    re-enumerated from ``db.schema`` and matched against the stored target
    list to guarantee the ψ matrices line up.  Nothing but the schema is
    read from ``db`` — kernels come from the persisted kernel state — so a
    restarted service can load against a freshly restored database whose
    contents have since grown.  (Saves from before kernel state was
    persisted fall back to refitting the default kernels on ``db``.)
    """
    from repro.kernels.registry import default_kernels
    from repro.walks.schemes import walk_targets
    from repro.core.forward import WalkTarget

    directory = Path(directory)
    metadata = json.loads((directory / "model.json").read_text())
    arrays = np.load(directory / "parameters.npz")
    config = ForwardConfig(**metadata["config"])
    pairs = walk_targets(db.schema, metadata["relation"], config.max_walk_length)
    stored = metadata["targets"]
    if len(pairs) != len(stored) or any(
        attr.name != s["attribute"] or str(scheme) != s["scheme"]
        for (scheme, attr), s in zip(pairs, stored)
    ):
        raise ValueError(
            "walk targets derived from the given database do not match the saved model; "
            "was the schema changed since training?"
        )
    fallback = None  # legacy saves without kernel state refit on ``db``
    targets = []
    for index, ((scheme, attr), s) in enumerate(zip(pairs, stored)):
        spec = s.get("kernel")
        if spec is not None:
            kernel = _kernel_from_spec(spec)
        else:
            if fallback is None:
                fallback = default_kernels(db)
            kernel = fallback.get(scheme.end_relation, attr.name)
        targets.append(WalkTarget(index, scheme, attr.name, kernel))
    model = ForwardModel(
        metadata["relation"],
        config,
        targets,
        [int(fid) for fid in arrays["fact_ids"]],
        arrays["phi"],
        arrays["psi"],
        distributions={},
        loss_history=metadata["loss_history"],
    )
    for fact_id, vector in zip(arrays["extended_ids"], arrays["extended_vectors"]):
        model.add_extended(int(fact_id), vector)
    return model

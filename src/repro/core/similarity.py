"""Similarity queries over tuple embeddings.

Record-similarity search is one of the downstream applications motivating
database embeddings in the paper's introduction; these helpers answer
"which facts are most similar to this one?" directly from a
:class:`TupleEmbedding`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.base import TupleEmbedding
from repro.db.database import Fact
from repro.index import ExactIndex


def cosine_similarity(a: np.ndarray, b: np.ndarray, epsilon: float = 1e-12) -> float:
    """Cosine similarity of two vectors (0 when either is the zero vector)."""
    norm = float(np.linalg.norm(a) * np.linalg.norm(b))
    if norm < epsilon:
        return 0.0
    return float(a @ b / norm)


def most_similar(
    embedding: TupleEmbedding,
    query: Fact | int | np.ndarray,
    top_k: int = 5,
    candidates: Sequence[Fact | int] | None = None,
) -> list[tuple[int, float]]:
    """The ``top_k`` facts most similar to ``query`` by cosine similarity.

    ``query`` may be a fact (its embedding is looked up) or a raw vector.
    ``candidates`` restricts the search space (default: every embedded fact);
    the query fact itself is excluded from the result.  Returns
    ``(fact_id, similarity)`` pairs, best first.

    A thin adapter over :class:`~repro.index.exact.ExactIndex`: one
    vectorised scoring pass ranks the pool (stable, so tied candidates
    keep their pool order), replacing the per-candidate Python loop.  The
    emitted similarities are recomputed with the scalar formula above, so
    the output is identical to that loop's.
    """
    if top_k <= 0:
        raise ValueError("top_k must be positive")
    if isinstance(query, np.ndarray):
        query_vector = np.asarray(query, dtype=np.float64)
        query_id = None
    else:
        query_id = query.fact_id if isinstance(query, Fact) else int(query)
        query_vector = embedding.vector(query_id)
    pool = list(candidates) if candidates is not None else list(embedding.fact_ids)
    kept: list[int] = []
    for candidate in pool:
        fact_id = candidate.fact_id if isinstance(candidate, Fact) else int(candidate)
        if fact_id == query_id or fact_id not in embedding:
            continue
        kept.append(fact_id)
    if not kept:
        return []
    scores = ExactIndex.over_vectors(embedding.matrix(kept)).scores(query_vector)
    selected = np.argsort(-scores, kind="stable")[:top_k]
    scored = [
        (int(position), cosine_similarity(query_vector, embedding.vector(kept[position])))
        for position in selected
    ]
    scored.sort(key=lambda pair: (-pair[1], pair[0]))
    return [(kept[position], score) for position, score in scored]


def pairwise_cosine_matrix(embedding: TupleEmbedding, facts: Sequence[Fact | int]) -> np.ndarray:
    """The full cosine-similarity matrix of the given facts (in order)."""
    matrix = embedding.matrix(facts)
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    normalized = matrix / np.maximum(norms, 1e-12)
    return normalized @ normalized.T

"""The Node2Vec adaptation — dynamic phase (Section IV-A of the paper).

When new facts arrive, the fact/value graph is extended with their nodes,
random walks are sampled *starting at the new nodes*, and skip-gram training
continues from the existing model with a random initialisation for the new
nodes.  During this continuation the embeddings of all old nodes are frozen,
so the existing tuple embeddings are stable by construction.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.base import TupleEmbedding
from repro.core.node2vec import Node2VecModel
from repro.db.database import Fact
from repro.graph.node2vec_walks import Node2VecWalker
from repro.nn.corpus import WalkCorpus, build_training_pairs
from repro.nn.negative_sampling import UnigramNegativeSampler
from repro.utils.rng import ensure_rng, spawn_rngs


class Node2VecDynamicExtender:
    """Extends a trained :class:`Node2VecModel` to newly inserted facts."""

    def __init__(self, model: Node2VecModel, rng: int | np.random.Generator | None = None):
        self.model = model
        self.rng = ensure_rng(rng)

    def extend(self, new_facts: Iterable[Fact]) -> TupleEmbedding:
        """Embed the new facts (all relations); old embeddings stay untouched.

        Returns a :class:`TupleEmbedding` containing only the new facts.  The
        underlying skip-gram model gains nodes and is trained further with
        all previously existing nodes frozen.
        """
        new_facts = [f for f in new_facts if not self.model.graph.has_fact(f)]
        result = TupleEmbedding(self.model.dimension)
        if not new_facts:
            return result

        graph = self.model.graph
        skipgram = self.model.skipgram
        config = self.model.config

        old_node_count = graph.num_nodes
        new_nodes: list[int] = []
        for fact in new_facts:
            new_nodes.extend(graph.add_fact(fact))
        added = graph.num_nodes - old_node_count
        if added:
            skipgram.add_nodes(added)
        skipgram.freeze(range(old_node_count))

        if new_nodes:
            walk_rng, sampler_rng = spawn_rngs(self.rng, 2)
            walker = Node2VecWalker(
                graph,
                walks_per_node=config.dynamic_walks_per_node,
                walk_length=config.walk_length,
                p=config.p,
                q=config.q,
                rng=walk_rng,
            )
            corpus = walker.generate(start_nodes=new_nodes)
            pairs = build_training_pairs(corpus.walks, config.window_size)
            if len(pairs):
                counts = self._corpus_counts(corpus, graph.num_nodes)
                sampler = UnigramNegativeSampler(counts, rng=sampler_rng)
                skipgram.train_pairs(
                    pairs,
                    sampler,
                    epochs=config.dynamic_epochs,
                    batch_size=config.batch_size,
                )
        skipgram.unfreeze_all()

        for fact in new_facts:
            result.set(fact, self.model.vector(fact))
        return result

    @staticmethod
    def _corpus_counts(corpus: WalkCorpus, num_nodes: int) -> np.ndarray:
        """Node counts padded to the current node-table size."""
        counts = np.zeros(num_nodes, dtype=np.float64)
        raw = corpus.node_counts()
        counts[: raw.shape[0]] = raw
        return counts

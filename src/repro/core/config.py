"""Hyper-parameter configurations (Table II of the paper).

The defaults reproduce Table II: FoRWaRD uses an embedding dimension of 100,
5 000 samples, batch size 50 000, maximum walk length 1–3 and 5–10 epochs;
Node2Vec uses dimension 100, 40 walks per node of 30 steps, a context window
of 5, 20 negatives per positive, batch size 40 000 and 10 epochs.  The
dynamic phase uses 2 500 extension samples for FoRWaRD and 5 continuation
epochs for Node2Vec (Section VI-C-2).  Learning rates are not reported in
the paper; the defaults below were chosen so training converges on all five
benchmarks.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Mapping

#: Accepted Python types per declared field type.  ``bool`` is checked before
#: ``int`` (it is an ``int`` subclass); ``float`` fields accept ints.
_ACCEPTED: dict[str, tuple[type, ...]] = {
    "int": (int,),
    "float": (int, float),
    "bool": (bool,),
    "str": (str,),
}


class ConfigBase:
    """Dict round-tripping shared by every hyper-parameter dataclass.

    Subclasses are plain dataclasses; this mixin adds :meth:`to_dict` and a
    validating :meth:`from_dict` so configs can travel through JSON/YAML
    files, method-spec strings (:mod:`repro.api.registry`) and saved-model
    metadata without losing type safety.  ``from_dict`` rejects unknown keys
    and type mismatches with actionable messages instead of letting bad
    values surface deep inside training.
    """

    def to_dict(self) -> dict[str, Any]:
        """The config as a JSON-safe ``{field: value}`` dict."""
        return dataclasses.asdict(self)  # type: ignore[call-overload]

    @classmethod
    def field_types(cls) -> dict[str, str]:
        """Declared type *name* of every config field, in declaration order.

        Annotations arrive as strings under ``from __future__ import
        annotations`` but as type objects without it; both normalise to the
        name here so validation works for extension configs either way.
        """
        return {
            f.name: (f.type.__name__ if isinstance(f.type, type) else str(f.type))
            for f in dataclasses.fields(cls)  # type: ignore[arg-type]
        }

    @classmethod
    def from_dict(cls, values: Mapping[str, Any]):
        """Build a validated config from a mapping.

        Raises ``ValueError`` naming the offending key for unknown fields
        (listing the valid ones) and for type mismatches (stating the
        expected and received type); range violations are caught by the
        dataclass's own ``__post_init__``.
        """
        types = cls.field_types()
        cleaned: dict[str, Any] = {}
        for key, value in values.items():
            if key not in types:
                raise ValueError(
                    f"{cls.__name__} has no parameter {key!r}; "
                    f"valid parameters: {', '.join(types)}"
                )
            declared = types[key]
            accepted = _ACCEPTED.get(declared)
            if accepted is not None:
                if isinstance(value, bool) and declared != "bool":
                    raise ValueError(
                        f"{cls.__name__}.{key} expects {declared}, got {value!r} (bool)"
                    )
                if not isinstance(value, accepted):
                    raise ValueError(
                        f"{cls.__name__}.{key} expects {declared}, "
                        f"got {value!r} ({type(value).__name__})"
                    )
            cleaned[key] = value
        return cls(**cleaned)


@dataclass
class ForwardConfig(ConfigBase):
    """Hyper-parameters of the FoRWaRD embedder."""

    dimension: int = 100
    """Embedding dimension ``d``."""

    n_samples: int = 5_000
    """Training samples drawn per walk target ``(s, A)`` (``n_samples``)."""

    batch_size: int = 50_000
    """Mini-batch size of the stochastic gradient descent."""

    max_walk_length: int = 2
    """Maximum walk-scheme length ``ℓ_max`` (the paper uses 1–3)."""

    epochs: int = 5
    """Number of training epochs (the paper uses 5–10)."""

    learning_rate: float = 0.01
    """Adam learning rate (not reported in the paper)."""

    n_new_samples: int = 2_500
    """Linear-equation samples per target when embedding a new tuple."""

    init_scale: float = 0.1
    """Standard deviation of the random initialisation of ``φ`` and ``ψ``."""

    def __post_init__(self) -> None:
        if self.dimension <= 0:
            raise ValueError("dimension must be positive")
        if self.max_walk_length < 0:
            raise ValueError("max_walk_length must be non-negative")
        if self.epochs <= 0 or self.n_samples <= 0 or self.batch_size <= 0:
            raise ValueError("epochs, n_samples and batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.n_new_samples <= 0:
            raise ValueError("n_new_samples must be positive")


@dataclass
class Node2VecConfig(ConfigBase):
    """Hyper-parameters of the Node2Vec adaptation."""

    dimension: int = 100
    """Embedding dimension."""

    walks_per_node: int = 40
    """Number of random walks started at every node."""

    walk_length: int = 30
    """Number of steps per walk."""

    window_size: int = 5
    """Skip-gram context window."""

    negatives_per_positive: int = 20
    """Negative samples per positive (center, context) pair."""

    batch_size: int = 40_000
    """Mini-batch size."""

    epochs: int = 10
    """Training epochs in the static phase."""

    dynamic_epochs: int = 5
    """Training epochs of the continuation in the dynamic phase."""

    learning_rate: float = 0.025
    """Adam learning rate (not reported in the paper)."""

    p: float = 1.0
    """Node2Vec return parameter."""

    q: float = 1.0
    """Node2Vec in-out parameter."""

    dynamic_walks_per_node: int = 10
    """Walks per new node sampled in the dynamic phase."""

    identify_foreign_keys: bool = True
    """Merge value nodes linked by foreign keys (Section IV).  Disabling this
    is an ablation that shows how much the FK identification contributes."""

    def __post_init__(self) -> None:
        if self.dimension <= 0:
            raise ValueError("dimension must be positive")
        if self.walks_per_node <= 0 or self.walk_length <= 0:
            raise ValueError("walks_per_node and walk_length must be positive")
        if self.window_size <= 0:
            raise ValueError("window_size must be positive")
        if self.epochs <= 0 or self.dynamic_epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.p <= 0 or self.q <= 0:
            raise ValueError("p and q must be positive")

"""The FoRWaRD algorithm — static phase (Section V of the paper).

FoRWaRD embeds the facts of one relation ``R`` (the prediction relation in
the experiments).  For every walk target ``(s, A)`` — a walk scheme ``s`` of
length at most ``ℓ_max`` starting at ``R`` together with a non-foreign-key
attribute ``A`` of the scheme's destination relation — it learns a symmetric
matrix ``ψ(s, A)`` alongside the fact embeddings ``φ(f)`` such that::

    φ(f)ᵀ ψ(s, A) φ(f') ≈ KD(d_{s,f}[A], d_{s,f'}[A])

(Equation (3)).  Training minimises the squared error of Equation (5) with
stochastic gradient descent, using a single sampled destination value per
side as an unbiased estimate of the expected kernel distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.core.base import TupleEmbedding
from repro.core.config import ForwardConfig
from repro.db.database import Database, Fact
from repro.engine import WalkEngine, sample_codes, sample_distinct_pairs
from repro.kernels.base import Kernel
from repro.kernels.registry import KernelRegistry, default_kernels
from repro.utils.rng import ensure_rng
from repro.walks.random_walks import AttributeDistribution
from repro.walks.schemes import WalkScheme, walk_targets


@dataclass(frozen=True)
class WalkTarget:
    """One pair ``(s, A)`` of ``T(R, ℓ_max)`` with its domain kernel."""

    index: int
    scheme: WalkScheme
    attribute: str
    kernel: Kernel

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"({self.scheme}).{self.attribute}"


@dataclass
class _TargetSamples:
    """Pre-drawn training samples for one walk target."""

    target_index: int
    left_rows: np.ndarray
    right_rows: np.ndarray
    kernel_values: np.ndarray

    def __len__(self) -> int:
        return len(self.kernel_values)


class ForwardModel:
    """A trained FoRWaRD embedding: ``φ``, ``ψ`` and the walk-target metadata.

    Besides the learned parameters, the model keeps the per-fact destination
    distributions computed on the training database.  The dynamic extension
    reuses them in the one-by-one setting, where the paper explicitly does
    not recompute walks starting at old tuples.
    """

    def __init__(
        self,
        relation: str,
        config: ForwardConfig,
        targets: Sequence[WalkTarget],
        fact_ids: Sequence[int],
        phi: np.ndarray,
        psi: np.ndarray,
        distributions: dict[tuple[int, int], AttributeDistribution | None],
        loss_history: Sequence[float] = (),
    ):
        self.relation = relation
        self.config = config
        self.targets = tuple(targets)
        self.fact_ids = tuple(fact_ids)
        self.fact_row = {fid: row for row, fid in enumerate(self.fact_ids)}
        self.phi = phi
        self.psi = psi
        self.distributions = distributions
        self.loss_history = list(loss_history)
        self._extended: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------- lookups

    @property
    def dimension(self) -> int:
        return self.config.dimension

    def has_fact(self, fact: Fact | int) -> bool:
        key = fact.fact_id if isinstance(fact, Fact) else int(fact)
        return key in self.fact_row or key in self._extended

    def vector(self, fact: Fact | int) -> np.ndarray:
        key = fact.fact_id if isinstance(fact, Fact) else int(fact)
        if key in self.fact_row:
            return self.phi[self.fact_row[key]].copy()
        return self._extended[key].copy()

    def embedding(self) -> TupleEmbedding:
        """The tuple embedding ``γ`` (trained facts plus dynamic extensions)."""
        result = TupleEmbedding(self.dimension)
        for fact_id, row in self.fact_row.items():
            result.set(fact_id, self.phi[row])
        for fact_id, vector in self._extended.items():
            result.set(fact_id, vector)
        return result

    def distribution(self, fact_id: int, target_index: int) -> AttributeDistribution | None:
        """Cached training-time destination distribution for (fact, target)."""
        return self.distributions.get((fact_id, target_index))

    # ------------------------------------------------------------ extension

    def add_extended(self, fact: Fact | int, vector: np.ndarray) -> None:
        """Record the embedding of a newly inserted fact (dynamic phase)."""
        key = fact.fact_id if isinstance(fact, Fact) else int(fact)
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dimension,):
            raise ValueError(f"expected dimension {self.dimension}, got {vector.shape}")
        if key in self.fact_row:
            raise ValueError(f"fact {key} already has a trained embedding")
        self._extended[key] = vector.copy()

    def discard_extended(self, fact: Fact | int) -> bool:
        """Drop a dynamically extended embedding (deleted or updated fact).

        Trained embeddings cannot be discarded — they are part of ``phi``
        and frozen by the stability guarantee.  Returns True when an
        extended vector was present.
        """
        key = fact.fact_id if isinstance(fact, Fact) else int(fact)
        return self._extended.pop(key, None) is not None

    @property
    def extended_fact_ids(self) -> tuple[int, ...]:
        return tuple(self._extended.keys())


class ForwardEmbedder:
    """Static-phase FoRWaRD trainer for one relation of a database.

    Destination distributions and training batches are computed by the
    compiled walk engine (:mod:`repro.engine`): all facts of the relation
    are propagated at once through sparse transition matrices, and the
    stochastic samples of Equation (5) are drawn in vectorised batches.
    Pass an existing ``engine`` to share compiled arrays (and their caches)
    across embedders and methods; one is compiled on demand otherwise.
    """

    def __init__(
        self,
        db: Database,
        relation: str,
        config: ForwardConfig | None = None,
        kernels: KernelRegistry | None = None,
        rng: int | np.random.Generator | None = None,
        engine: WalkEngine | None = None,
    ):
        self.db = db
        self.relation = relation
        self.config = config or ForwardConfig()
        self.kernels = kernels or default_kernels(db)
        self.rng = ensure_rng(rng)
        if engine is not None and engine.db is not db:
            raise ValueError("engine is compiled from a different database")
        self._engine = engine
        db.schema.relation(relation)

    @property
    def engine(self) -> WalkEngine:
        if self._engine is None:
            self._engine = WalkEngine(self.db)
        return self._engine

    # -------------------------------------------------------------- targets

    def build_targets(self) -> list[WalkTarget]:
        """Enumerate ``T(R, ℓ_max)`` and attach each target's domain kernel."""
        targets: list[WalkTarget] = []
        for scheme, attr in walk_targets(self.db.schema, self.relation, self.config.max_walk_length):
            kernel = self.kernels.get(scheme.end_relation, attr.name)
            targets.append(WalkTarget(len(targets), scheme, attr.name, kernel))
        return targets

    # ------------------------------------------------------------- sampling

    def _prepare_training(
        self, facts: Sequence[Fact], targets: Sequence[WalkTarget]
    ) -> tuple[dict[tuple[int, int], AttributeDistribution | None], list[_TargetSamples]]:
        """Compute all attribute distributions and draw the training set.

        For every target ``(s, A)`` the engine computes the distributions of
        ``d_{f,s}[A]`` for *all* facts at once as one sparse matrix; the
        stochastic samples of Section V-D — ``n_samples`` tuples
        ``(f, f', g[A], g'[A])`` with ``f ≠ f'`` both having an existing
        destination distribution — are then drawn in vectorised batches, with
        ``κ(g[A], g'[A])`` as the stochastic estimate of the expected kernel
        distance.
        """
        engine = self.engine
        engine.refresh()
        compiled_rel = engine.compiled.relations[self.relation]
        engine_rows = np.array(
            [compiled_rel.row_of[f.fact_id] for f in facts], dtype=np.int64
        )
        distributions: dict[tuple[int, int], AttributeDistribution | None] = {}
        samples: list[_TargetSamples] = []
        for target in targets:
            matrix, vocab = engine.attribute_matrix(target.scheme, target.attribute)
            matrix = matrix[engine_rows]  # align matrix rows with ``facts``/φ rows
            indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
            for row, fact in enumerate(facts):
                lo, hi = indptr[row], indptr[row + 1]
                if lo == hi:
                    distributions[(fact.fact_id, target.index)] = None
                else:
                    distributions[(fact.fact_id, target.index)] = AttributeDistribution(
                        target.scheme,
                        target.attribute,
                        tuple(vocab[indices[lo:hi]]),
                        data[lo:hi].copy(),
                    )
            drawn = self._draw_target_samples(target, matrix, vocab)
            if drawn is not None:
                samples.append(drawn)
        return distributions, samples

    def _draw_target_samples(self, target: WalkTarget, matrix, vocab) -> _TargetSamples | None:
        """Vectorised draw of one target's ``(f, f', g[A], g'[A])`` samples."""
        valid_rows = np.nonzero(np.diff(matrix.indptr) > 0)[0]
        if valid_rows.size < 2:
            return None
        count = self.config.n_samples
        left, right = sample_distinct_pairs(valid_rows, count, self.rng)
        left_codes = sample_codes(matrix, left, self.rng)
        right_codes = sample_codes(matrix, right, self.rng)
        kernel_values = target.kernel.elementwise(vocab[left_codes], vocab[right_codes])
        return _TargetSamples(
            target.index,
            left.astype(np.int64),
            right.astype(np.int64),
            np.asarray(kernel_values, dtype=np.float64),
        )

    # ------------------------------------------------------------- training

    def fit(self) -> ForwardModel:
        """Run the static phase and return the trained :class:`ForwardModel`."""
        facts = list(self.db.facts(self.relation))
        if len(facts) < 2:
            raise ValueError(
                f"relation {self.relation!r} has {len(facts)} facts; "
                "FoRWaRD needs at least two facts to train"
            )
        targets = self.build_targets()
        if not targets:
            raise ValueError(
                f"no walk targets found for relation {self.relation!r}: every "
                "reachable attribute participates in a foreign key"
            )
        distributions, samples = self._prepare_training(facts, targets)
        if not samples:
            raise ValueError(
                f"no usable training samples for relation {self.relation!r}; "
                "check that walk targets have non-null destination values"
            )

        dim = self.config.dimension
        phi = self.rng.normal(0.0, 1.0 / np.sqrt(dim), size=(len(facts), dim))
        # ψ starts near the identity (RESCAL-style): the initial bilinear form
        # is then close to a plain inner product, which makes the regression
        # onto kernel values converge much faster than a zero-mean random ψ.
        psi = np.stack(
            [
                np.eye(dim)
                + _symmetrize(self.rng.normal(0.0, self.config.init_scale, size=(dim, dim)))
                for _ in targets
            ]
        )
        loss_history = self._train(phi, psi, samples)

        fact_ids = [f.fact_id for f in facts]
        return ForwardModel(
            self.relation,
            self.config,
            targets,
            fact_ids,
            phi,
            psi,
            distributions,
            loss_history,
        )

    def _train(
        self, phi: np.ndarray, psi: np.ndarray, samples: list[_TargetSamples]
    ) -> list[float]:
        from repro.optim.optimizers import Adam

        optimizer = Adam(self.config.learning_rate)
        params = {"phi": phi, "psi": psi}
        batch_size = self.config.batch_size
        history: list[float] = []
        for _ in range(self.config.epochs):
            epoch_loss = 0.0
            num_batches = 0
            for target_samples in samples:
                order = self.rng.permutation(len(target_samples))
                for start in range(0, len(target_samples), batch_size):
                    batch = order[start : start + batch_size]
                    loss, grads, rows = self._batch_step(phi, psi, target_samples, batch)
                    optimizer.update(params, grads, rows)
                    epoch_loss += loss
                    num_batches += 1
            history.append(epoch_loss / max(num_batches, 1))
        return history

    @staticmethod
    def _batch_step(
        phi: np.ndarray,
        psi: np.ndarray,
        samples: _TargetSamples,
        batch: np.ndarray,
    ) -> tuple[float, dict[str, np.ndarray], dict[str, np.ndarray]]:
        """Loss and sparse gradients of Equation (5) for one mini-batch."""
        left = samples.left_rows[batch]
        right = samples.right_rows[batch]
        kappa = samples.kernel_values[batch]
        matrix = psi[samples.target_index]
        f_left = phi[left]
        f_right = phi[right]
        left_projected = f_left @ matrix
        scores = np.sum(left_projected * f_right, axis=1)
        errors = scores - kappa
        size = max(len(batch), 1)
        loss = float(0.5 * np.mean(errors**2))

        grad_left = errors[:, None] * (f_right @ matrix) / size
        grad_right = errors[:, None] * left_projected / size
        grad_matrix = (f_left * errors[:, None]).T @ f_right / size
        grad_matrix = _symmetrize(grad_matrix)

        rows_concat = np.concatenate([left, right])
        grads_concat = np.concatenate([grad_left, grad_right])
        unique_rows, inverse = np.unique(rows_concat, return_inverse=True)
        grad_phi = np.zeros((unique_rows.size, phi.shape[1]))
        np.add.at(grad_phi, inverse, grads_concat)

        grads = {"phi": grad_phi, "psi": grad_matrix[None]}
        rows = {"phi": unique_rows, "psi": np.array([samples.target_index])}
        return loss, grads, rows


def _symmetrize(matrix: np.ndarray) -> np.ndarray:
    return 0.5 * (matrix + matrix.T)

"""The Node2Vec adaptation — static phase (Section IV of the paper).

The database is turned into the bipartite fact/value graph of
:class:`~repro.graph.db_graph.DatabaseGraph` (with foreign-key value-node
identification), Node2Vec walks are sampled over it, and a skip-gram model
with negative sampling is trained on the resulting (center, context) pairs.
The embedding of a fact is the learned input vector of its fact node.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.core.base import TupleEmbedding
from repro.core.config import Node2VecConfig
from repro.db.database import Database, Fact
from repro.graph.db_graph import DatabaseGraph
from repro.graph.node2vec_walks import Node2VecWalker
from repro.nn.corpus import build_training_pairs
from repro.nn.negative_sampling import UnigramNegativeSampler
from repro.nn.skipgram import SkipGramConfig, SkipGramModel
from repro.utils.rng import ensure_rng, spawn_rngs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import WalkEngine


class Node2VecModel:
    """A trained Node2Vec database embedding.

    Holds the fact/value graph and the skip-gram model so the dynamic
    extender can append new nodes and continue training with old nodes
    frozen.
    """

    def __init__(
        self,
        db: Database,
        config: Node2VecConfig,
        graph: DatabaseGraph,
        skipgram: SkipGramModel,
        loss_history: Sequence[float] = (),
    ):
        self.db = db
        self.config = config
        self.graph = graph
        self.skipgram = skipgram
        self.loss_history = list(loss_history)

    @property
    def dimension(self) -> int:
        return self.config.dimension

    def has_fact(self, fact: Fact | int) -> bool:
        return self.graph.has_fact(fact)

    def vector(self, fact: Fact | int) -> np.ndarray:
        """The embedding of one fact (input vector of its fact node)."""
        return self.skipgram.embedding(self.graph.fact_node(fact))

    def embedding(self, facts: Iterable[Fact] | None = None) -> TupleEmbedding:
        """The tuple embedding over the given facts (default: current database)."""
        chosen = list(facts) if facts is not None else list(self.db)
        result = TupleEmbedding(self.dimension)
        for fact in chosen:
            if self.graph.has_fact(fact):
                result.set(fact, self.vector(fact))
        return result


class Node2VecEmbedder:
    """Static-phase trainer of the Node2Vec adaptation."""

    def __init__(
        self,
        db: Database,
        config: Node2VecConfig | None = None,
        rng: int | np.random.Generator | None = None,
        engine: "WalkEngine | None" = None,
    ):
        self.db = db
        self.config = config or Node2VecConfig()
        self.rng = ensure_rng(rng)
        if engine is not None and engine.db is not db:
            raise ValueError("engine is compiled from a different database")
        self.engine = engine

    def fit(self) -> Node2VecModel:
        """Build the graph, sample walks, train skip-gram; return the model."""
        walk_rng, model_rng, sampler_rng = spawn_rngs(self.rng, 3)
        graph = DatabaseGraph(
            self.db,
            identify_foreign_keys=self.config.identify_foreign_keys,
            engine=self.engine,
        )
        walker = Node2VecWalker(
            graph,
            walks_per_node=self.config.walks_per_node,
            walk_length=self.config.walk_length,
            p=self.config.p,
            q=self.config.q,
            rng=walk_rng,
        )
        corpus = walker.generate()
        pairs = build_training_pairs(corpus.walks, self.config.window_size)
        sampler = UnigramNegativeSampler(corpus.node_counts(), rng=sampler_rng)
        skipgram = SkipGramModel(
            graph.num_nodes,
            SkipGramConfig(
                dimension=self.config.dimension,
                negatives_per_positive=self.config.negatives_per_positive,
                batch_size=self.config.batch_size,
                epochs=self.config.epochs,
                learning_rate=self.config.learning_rate,
            ),
            rng=model_rng,
        )
        history = skipgram.train_pairs(pairs, sampler)
        return Node2VecModel(self.db, self.config, graph, skipgram, history)

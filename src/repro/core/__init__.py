"""Core contribution of the paper: stable tuple embedding algorithms.

Static phase
    :class:`ForwardEmbedder` (the FoRWaRD algorithm, Section V) and
    :class:`Node2VecEmbedder` (the Node2Vec adaptation, Section IV) compute a
    tuple embedding ``γ : D → R^k``.

Dynamic phase
    :class:`ForwardDynamicExtender` and :class:`Node2VecDynamicExtender`
    extend an existing embedding to newly inserted facts *without changing*
    the embedding of existing facts (the stability requirement of Section
    III).  :mod:`repro.core.stability` verifies that requirement.
"""

from repro.core.config import ForwardConfig, Node2VecConfig
from repro.core.base import TupleEmbedding
from repro.core.forward import ForwardEmbedder, ForwardModel
from repro.core.forward_dynamic import ForwardDynamicExtender
from repro.core.node2vec import Node2VecEmbedder, Node2VecModel
from repro.core.node2vec_dynamic import Node2VecDynamicExtender
from repro.core.stability import embedding_drift, is_stable_extension
from repro.core.persistence import (
    load_embedding,
    load_forward_model,
    save_embedding,
    save_forward_model,
)
from repro.core.similarity import cosine_similarity, most_similar, pairwise_cosine_matrix

__all__ = [
    "ForwardConfig",
    "Node2VecConfig",
    "TupleEmbedding",
    "ForwardEmbedder",
    "ForwardModel",
    "ForwardDynamicExtender",
    "Node2VecEmbedder",
    "Node2VecModel",
    "Node2VecDynamicExtender",
    "embedding_drift",
    "is_stable_extension",
    "save_embedding",
    "load_embedding",
    "save_forward_model",
    "load_forward_model",
    "cosine_similarity",
    "most_similar",
    "pairwise_cosine_matrix",
]

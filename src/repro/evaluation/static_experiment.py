"""Static database embedding experiment (Table III of the paper).

For each dataset and each method the embedding is trained on the full
(masked) database and a downstream SVM is evaluated with 10-fold stratified
cross-validation.  As in the paper, a fresh embedding can be trained per
fold so the reported standard deviation reflects both fold and embedding
randomness; set ``fresh_embedding_per_fold=False`` to train a single
embedding and only re-split the classifier folds (much faster, used by the
reduced-scale benchmark harness).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.datasets.base import Dataset
from repro.db.database import Database
from repro.engine import WalkEngine
from repro.evaluation.baselines import FlatFeatureBaseline, majority_baseline_accuracy
from repro.evaluation.downstream import (
    ClassifierFactory,
    align_embedding,
    default_classifier_factory,
)
from repro.evaluation.methods import EmbeddingMethod
from repro.ml.cross_validation import StratifiedKFold, cross_val_accuracy
from repro.ml.metrics import accuracy_score
from repro.ml.scaling import StandardScaler
from repro.utils.rng import ensure_rng, spawn_rngs


@dataclass
class StaticResult:
    """Accuracy of one method on one dataset in the static setting."""

    dataset: str
    method: str
    accuracy_mean: float
    accuracy_std: float
    fold_accuracies: list[float]
    train_seconds: float
    """Total wall-clock time spent training embeddings (Table V)."""


def _evaluate_embedding_folds(
    dataset: Dataset,
    masked: Database,
    engine: WalkEngine,
    method: EmbeddingMethod,
    n_splits: int,
    fresh_embedding_per_fold: bool,
    classifier_factory: ClassifierFactory,
    rng: np.random.Generator,
) -> StaticResult:
    labels = dataset.labels()
    prediction_facts = list(dataset.prediction_facts())
    fold_accuracies: list[float] = []
    train_seconds = 0.0

    if not fresh_embedding_per_fold:
        start = time.perf_counter()
        model = method.fit(masked, dataset.prediction_relation, rng=rng, engine=engine)
        train_seconds += time.perf_counter() - start
        data = align_embedding(method.embedding(model, prediction_facts), labels)
        mean, std, scores = cross_val_accuracy(
            classifier_factory, data.features, data.labels, n_splits=n_splits, rng=rng
        )
        return StaticResult(dataset.name, method.name, mean, std, scores, train_seconds)

    # Paper protocol: a new embedding per fold; the embedding always sees the
    # full (masked) database, only the classifier split changes.
    label_array = np.array([labels[f.fact_id] for f in prediction_facts], dtype=object)
    splitter = StratifiedKFold(n_splits=n_splits, rng=rng)
    for train_idx, test_idx in splitter.split(label_array):
        start = time.perf_counter()
        model = method.fit(masked, dataset.prediction_relation, rng=rng, engine=engine)
        train_seconds += time.perf_counter() - start
        data = align_embedding(method.embedding(model, prediction_facts), labels)
        row_of = {fid: row for row, fid in enumerate(data.fact_ids)}
        train_rows = [row_of[prediction_facts[i].fact_id] for i in train_idx
                      if prediction_facts[i].fact_id in row_of]
        test_rows = [row_of[prediction_facts[i].fact_id] for i in test_idx
                     if prediction_facts[i].fact_id in row_of]
        if not train_rows or not test_rows:
            continue
        scaler = StandardScaler().fit(data.features[train_rows])
        classifier = classifier_factory()
        classifier.fit(scaler.transform(data.features[train_rows]), data.labels[train_rows])
        predictions = classifier.predict(scaler.transform(data.features[test_rows]))
        fold_accuracies.append(accuracy_score(data.labels[test_rows], predictions))

    scores = np.asarray(fold_accuracies)
    return StaticResult(
        dataset.name,
        method.name,
        float(scores.mean()),
        float(scores.std()),
        fold_accuracies,
        train_seconds,
    )


def _evaluate_flat_baseline(
    dataset: Dataset,
    n_splits: int,
    classifier_factory: ClassifierFactory,
    rng: np.random.Generator,
) -> StaticResult:
    baseline = FlatFeatureBaseline(dataset)
    facts = list(dataset.prediction_facts())
    labels = dataset.labels()
    kept = [f for f in facts if f.fact_id in labels]
    features = baseline.features(kept)
    label_array = np.array([labels[f.fact_id] for f in kept], dtype=object)
    mean, std, scores = cross_val_accuracy(
        classifier_factory, features, label_array, n_splits=n_splits, rng=rng
    )
    return StaticResult(dataset.name, "flat_baseline", mean, std, scores, 0.0)


def _evaluate_majority_baseline(dataset: Dataset) -> StaticResult:
    labels = list(dataset.labels().values())
    accuracy = majority_baseline_accuracy(labels)
    return StaticResult(dataset.name, "majority_baseline", accuracy, 0.0, [accuracy], 0.0)


def run_static_experiment(
    dataset: Dataset,
    methods: Sequence[EmbeddingMethod],
    n_splits: int = 10,
    fresh_embedding_per_fold: bool = True,
    include_baselines: bool = True,
    classifier_factory: ClassifierFactory = default_classifier_factory,
    rng=None,
) -> list[StaticResult]:
    """Run the static experiment for one dataset; one result row per method.

    The masked database is compiled into a :class:`WalkEngine` once and the
    engine is shared across all methods and folds, so walk-destination
    distributions are computed a single time per experiment.
    """
    generator = ensure_rng(rng)
    masked = dataset.masked_database()
    engine = WalkEngine(masked)
    results: list[StaticResult] = []
    for method, method_rng in zip(methods, spawn_rngs(generator, len(methods))):
        results.append(
            _evaluate_embedding_folds(
                dataset,
                masked,
                engine,
                method,
                n_splits,
                fresh_embedding_per_fold,
                classifier_factory,
                method_rng,
            )
        )
    if include_baselines:
        results.append(_evaluate_flat_baseline(dataset, n_splits, classifier_factory, generator))
        results.append(_evaluate_majority_baseline(dataset))
    return results

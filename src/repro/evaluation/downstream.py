"""The downstream column-prediction task.

Embeddings are evaluated indirectly: the embedding vectors of the
prediction-relation facts are fed to an SVM classifier that never sees any
other database information (the paper's "full separation" between embedding
and task), and accuracy is measured by stratified cross-validation or on a
held-out set of newly arrived facts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.base import TupleEmbedding
from repro.db.database import Fact
from repro.ml.cross_validation import cross_val_accuracy
from repro.ml.metrics import accuracy_score
from repro.ml.scaling import StandardScaler
from repro.ml.svm import SVC

ClassifierFactory = Callable[[], object]


def default_classifier_factory() -> SVC:
    """The paper's downstream model: an SVC with RBF kernel and defaults."""
    return SVC()


@dataclass
class LabelledEmbedding:
    """Embeddings of labelled facts, aligned into arrays for a classifier."""

    fact_ids: tuple[int, ...]
    features: np.ndarray
    labels: np.ndarray

    def __len__(self) -> int:
        return len(self.fact_ids)


def align_embedding(
    embedding: TupleEmbedding,
    labels: Mapping[int, object],
    facts: Sequence[Fact] | None = None,
) -> LabelledEmbedding:
    """Join an embedding with labels by fact id.

    Only facts present in both the embedding and the label map are kept.
    When ``facts`` is given, the selection is further restricted to it (used
    to evaluate on new facts only).
    """
    if facts is not None:
        candidate_ids = [f.fact_id for f in facts]
    else:
        candidate_ids = list(embedding.fact_ids)
    kept = [fid for fid in candidate_ids if fid in embedding and fid in labels]
    features = embedding.matrix(kept)
    label_array = np.array([labels[fid] for fid in kept], dtype=object)
    return LabelledEmbedding(tuple(kept), features, label_array)


def cross_validated_accuracy(
    data: LabelledEmbedding,
    n_splits: int = 10,
    classifier_factory: ClassifierFactory = default_classifier_factory,
    rng=None,
) -> tuple[float, float]:
    """Stratified k-fold accuracy (mean, std) of the downstream classifier."""
    mean, std, _scores = cross_val_accuracy(
        classifier_factory, data.features, data.labels, n_splits=n_splits, rng=rng
    )
    return mean, std


class DownstreamClassifier:
    """A classifier trained on old-fact embeddings, evaluated on new ones."""

    def __init__(self, classifier_factory: ClassifierFactory = default_classifier_factory):
        self._factory = classifier_factory
        self._scaler = StandardScaler()
        self._model: object | None = None

    def train(self, data: LabelledEmbedding) -> None:
        if len(data) == 0:
            raise ValueError("cannot train a downstream classifier on zero facts")
        features = self._scaler.fit_transform(data.features)
        self._model = self._factory()
        self._model.fit(features, data.labels)

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._model is None:
            raise RuntimeError("classifier has not been trained")
        return self._model.predict(self._scaler.transform(features))

    def accuracy(self, data: LabelledEmbedding) -> float:
        predictions = self.predict(data.features)
        return accuracy_score(data.labels, predictions)

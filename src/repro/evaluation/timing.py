"""Thin helpers extracting the timing tables (Tables V and VI) from results.

The timing numbers are measured inside the static and dynamic experiment
drivers; these helpers only reshape them into per-table rows so the
benchmark harness and EXPERIMENTS.md generation stay declarative.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.evaluation.dynamic_experiment import DynamicResult
from repro.evaluation.static_experiment import StaticResult


def latency_summary(seconds: Sequence[float]) -> dict[str, float]:
    """Summary statistics of a latency sample (count/p50/p95/p99/mean/max).

    The serving layer reports per-batch apply latencies through this helper
    so the streaming/churn benchmarks and the replay CLI emit identical
    fields.  Non-finite samples (NaN/inf — a clock that went backwards, a
    crashed probe) are dropped before aggregation so one bad sample cannot
    poison every percentile; ``count`` reports the samples actually used.
    An empty (or all-invalid) sample yields all zeros.
    """
    values = np.asarray(list(seconds), dtype=np.float64)
    values = values[np.isfinite(values)]
    if values.size == 0:
        return {
            "count": 0,
            "mean_seconds": 0.0,
            "p50_seconds": 0.0,
            "p95_seconds": 0.0,
            "p99_seconds": 0.0,
            "max_seconds": 0.0,
        }
    return {
        "count": int(values.size),
        "mean_seconds": float(values.mean()),
        "p50_seconds": float(np.percentile(values, 50)),
        "p95_seconds": float(np.percentile(values, 95)),
        "p99_seconds": float(np.percentile(values, 99)),
        "max_seconds": float(values.max()),
    }


def static_timing_rows(results: Sequence[StaticResult]) -> list[dict]:
    """Table V rows: wall-clock seconds to compute the static embedding."""
    return [
        {
            "dataset": result.dataset,
            "method": result.method,
            "seconds": result.train_seconds,
        }
        for result in results
        if result.method in ("forward", "node2vec")
    ]


def dynamic_timing_rows(results: Sequence[DynamicResult]) -> list[dict]:
    """Table VI rows: average seconds to embed one newly arrived tuple."""
    return [
        {
            "dataset": result.dataset,
            "method": result.method,
            "mode": result.mode,
            "seconds_per_new_tuple": result.seconds_per_new_tuple_mean,
        }
        for result in results
    ]

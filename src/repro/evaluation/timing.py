"""Thin helpers extracting the timing tables (Tables V and VI) from results.

The timing numbers are measured inside the static and dynamic experiment
drivers; these helpers only reshape them into per-table rows so the
benchmark harness and EXPERIMENTS.md generation stay declarative.

:func:`latency_summary` — historically defined here — moved to
:mod:`repro.obs.metrics` when the observability layer absorbed percentile
aggregation as its single implementation; it is re-exported unchanged so
existing imports (and the BENCH field names it emits) keep working.
"""

from __future__ import annotations

from typing import Sequence

from repro.evaluation.dynamic_experiment import DynamicResult
from repro.evaluation.static_experiment import StaticResult
from repro.obs.metrics import latency_summary

__all__ = [
    "latency_summary",
    "static_timing_rows",
    "dynamic_timing_rows",
]


def static_timing_rows(results: Sequence[StaticResult]) -> list[dict]:
    """Table V rows: wall-clock seconds to compute the static embedding."""
    return [
        {
            "dataset": result.dataset,
            "method": result.method,
            "seconds": result.train_seconds,
        }
        for result in results
        if result.method in ("forward", "node2vec")
    ]


def dynamic_timing_rows(results: Sequence[DynamicResult]) -> list[dict]:
    """Table VI rows: average seconds to embed one newly arrived tuple."""
    return [
        {
            "dataset": result.dataset,
            "method": result.method,
            "mode": result.mode,
            "seconds_per_new_tuple": result.seconds_per_new_tuple_mean,
        }
        for result in results
    ]

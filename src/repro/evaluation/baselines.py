"""Baselines for the downstream experiments.

The paper compares against reported state-of-the-art numbers and, in the
dynamic experiment, against the accuracy of always predicting the most
common class.  The majority baseline is implemented here, plus a "flat"
single-relation baseline that featurises only the prediction relation's own
attributes — a useful anchor showing how much of the accuracy comes from
foreign-key context rather than local attributes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.datasets.base import Dataset
from repro.db.database import Fact
from repro.db.schema import AttributeType
from repro.ml.metrics import majority_class_accuracy


def majority_baseline_accuracy(labels: Sequence) -> float:
    """Accuracy of predicting the most common class (Figure 5's baseline)."""
    return majority_class_accuracy(labels)


class FlatFeatureBaseline:
    """One-hot / numeric featurisation of the prediction relation only.

    The features deliberately exclude the prediction attribute, key
    attributes and foreign-key attributes, so the baseline sees exactly the
    "local" information an embedding-free single-table model would see.
    """

    def __init__(self, dataset: Dataset, max_categories: int = 30):
        self.dataset = dataset
        self.max_categories = max_categories
        schema = dataset.db.schema
        relation = schema.relation(dataset.prediction_relation)
        excluded = set(relation.key) | set(schema.fk_attributes(relation.name))
        excluded.add(dataset.prediction_attribute)
        self._numeric_attrs = [
            a.name
            for a in relation.attributes
            if a.name not in excluded and a.type is AttributeType.NUMERIC
        ]
        self._categorical_attrs = [
            a.name
            for a in relation.attributes
            if a.name not in excluded and a.type is not AttributeType.NUMERIC
        ]
        self._categories: dict[str, list] = {}
        for attr in self._categorical_attrs:
            values = sorted(
                dataset.db.active_domain(relation.name, attr), key=str
            )[: self.max_categories]
            self._categories[attr] = values

    @property
    def num_features(self) -> int:
        return len(self._numeric_attrs) + sum(len(v) for v in self._categories.values())

    def features(self, facts: Sequence[Fact]) -> np.ndarray:
        """The flat feature matrix for the given prediction-relation facts."""
        rows = np.zeros((len(facts), max(self.num_features, 1)))
        for row, fact in enumerate(facts):
            col = 0
            for attr in self._numeric_attrs:
                value = fact[attr]
                rows[row, col] = float(value) if value is not None else 0.0
                col += 1
            for attr in self._categorical_attrs:
                categories = self._categories[attr]
                value = fact[attr]
                if value in categories:
                    rows[row, col + categories.index(value)] = 1.0
                col += len(categories)
        return rows

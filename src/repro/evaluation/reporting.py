"""ASCII renderings of the paper's tables and figures."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.evaluation.dynamic_experiment import DynamicResult, RatioSweepResult
from repro.evaluation.static_experiment import StaticResult


def format_static_table(results: Sequence[StaticResult]) -> str:
    """Render static-experiment results as a Table-III style table."""
    datasets = sorted({r.dataset for r in results})
    methods = list(dict.fromkeys(r.method for r in results))
    header = f"{'Task':<14}" + "".join(f"{m:>24}" for m in methods)
    lines = [header, "-" * len(header)]
    by_key = {(r.dataset, r.method): r for r in results}
    for dataset in datasets:
        cells = []
        for method in methods:
            result = by_key.get((dataset, method))
            if result is None:
                cells.append(f"{'-':>24}")
            else:
                cells.append(f"{result.accuracy_mean*100:>17.2f}% ±{result.accuracy_std*100:4.1f}")
        lines.append(f"{dataset:<14}" + "".join(cells))
    return "\n".join(lines)


def format_dynamic_table(results: Sequence[DynamicResult]) -> str:
    """Render dynamic results (Table IV style: dataset × method × mode)."""
    header = (
        f"{'Task':<14}{'Method':<12}{'Mode':<14}{'Ratio':>6}"
        f"{'Accuracy':>12}{'Std':>8}{'Baseline':>10}"
    )
    lines = [header, "-" * len(header)]
    for result in results:
        lines.append(
            f"{result.dataset:<14}{result.method:<12}{result.mode:<14}"
            f"{result.ratio_new:>6.2f}{result.accuracy_mean*100:>11.2f}%"
            f"{result.accuracy_std*100:>7.2f}{result.baseline_mean*100:>9.2f}%"
        )
    return "\n".join(lines)


def format_timing_table(results: Sequence[DynamicResult], per_tuple: bool = False) -> str:
    """Render timing results (Table V when ``per_tuple`` is false, Table VI otherwise)."""
    metric = "sec/new tuple" if per_tuple else "static seconds"
    header = f"{'Task':<14}{'Method':<12}{'Mode':<14}{metric:>16}"
    lines = [header, "-" * len(header)]
    for result in results:
        value = (
            result.seconds_per_new_tuple_mean if per_tuple else result.static_train_seconds_mean
        )
        lines.append(
            f"{result.dataset:<14}{result.method:<12}{result.mode:<14}{value:>16.3f}"
        )
    return "\n".join(lines)


def format_figure5_series(sweep: RatioSweepResult) -> str:
    """Render a Figure-5 panel as a text table: accuracy per new-data ratio."""
    header = f"{'Ratio new (%)':<15}" + "".join(f"{name:>14}" for name in sweep.series)
    lines = [f"Dataset: {sweep.dataset}", header, "-" * len(header)]
    for index, ratio in enumerate(sweep.ratios):
        row = f"{ratio*100:<15.0f}"
        for name in sweep.series:
            row += f"{sweep.series[name][index]*100:>13.2f}%"
        lines.append(row)
    return "\n".join(lines)

"""A uniform interface over the two embedding methods.

The experiment drivers only need three operations from a method: fit a
static embedding on a database, read off the embedding of a set of facts,
and produce a dynamic extender bound to the (mutating) database.  This
module wraps FoRWaRD and the Node2Vec adaptation behind that interface so
the experiment code is written once.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.core.base import TupleEmbedding
from repro.core.config import ForwardConfig, Node2VecConfig
from repro.core.forward import ForwardEmbedder, ForwardModel
from repro.core.forward_dynamic import ForwardDynamicExtender
from repro.core.node2vec import Node2VecEmbedder, Node2VecModel
from repro.core.node2vec_dynamic import Node2VecDynamicExtender
from repro.db.database import Database, Fact
from repro.engine import WalkEngine
from repro.utils.rng import ensure_rng


class DynamicExtender(abc.ABC):
    """Embeds newly inserted facts without changing existing embeddings."""

    @abc.abstractmethod
    def extend(self, facts: Sequence[Fact]) -> TupleEmbedding:
        """Embed the given new facts and return their embeddings."""

    def notify_inserted(self, facts: Sequence[Fact]) -> None:
        """Hook called after facts are inserted into the database."""


class EmbeddingMethod(abc.ABC):
    """A named embedding algorithm with static fit and dynamic extension."""

    name: str

    @abc.abstractmethod
    def fit(
        self, db: Database, prediction_relation: str, rng=None, engine: WalkEngine | None = None
    ) -> Any:
        """Train the static embedding on ``db``; returns the method's model.

        ``engine`` optionally shares a :class:`WalkEngine` compiled from
        ``db`` so several methods (and the dynamic extender) reuse one set
        of compiled arrays and distribution caches.
        """

    @abc.abstractmethod
    def embedding(self, model: Any, facts: Iterable[Fact]) -> TupleEmbedding:
        """The embeddings of the given facts from a trained model."""

    @abc.abstractmethod
    def make_extender(
        self,
        model: Any,
        db: Database,
        recompute_old_paths: bool,
        rng=None,
        engine: WalkEngine | None = None,
    ) -> DynamicExtender:
        """A dynamic extender bound to the current (post-insertion) database."""


@dataclass
class ForwardMethod(EmbeddingMethod):
    """FoRWaRD behind the uniform method interface."""

    config: ForwardConfig = field(default_factory=ForwardConfig)
    name: str = "forward"

    def fit(
        self, db: Database, prediction_relation: str, rng=None, engine: WalkEngine | None = None
    ) -> ForwardModel:
        return ForwardEmbedder(db, prediction_relation, self.config, rng=rng, engine=engine).fit()

    def embedding(self, model: ForwardModel, facts: Iterable[Fact]) -> TupleEmbedding:
        full = model.embedding()
        return full.restrict([f for f in facts if f in full])

    def make_extender(
        self,
        model: ForwardModel,
        db: Database,
        recompute_old_paths: bool,
        rng=None,
        engine: WalkEngine | None = None,
    ) -> DynamicExtender:
        return _ForwardExtenderAdapter(
            ForwardDynamicExtender(
                model, db, recompute_old_paths=recompute_old_paths, rng=rng, engine=engine
            )
        )


class _ForwardExtenderAdapter(DynamicExtender):
    def __init__(self, extender: ForwardDynamicExtender):
        self._extender = extender

    def extend(self, facts: Sequence[Fact]) -> TupleEmbedding:
        return self._extender.extend(facts)

    def notify_inserted(self, facts: Sequence[Fact]) -> None:
        self._extender.notify_inserted(facts)


@dataclass
class Node2VecMethod(EmbeddingMethod):
    """The Node2Vec adaptation behind the uniform method interface."""

    config: Node2VecConfig = field(default_factory=Node2VecConfig)
    name: str = "node2vec"

    def fit(
        self, db: Database, prediction_relation: str, rng=None, engine: WalkEngine | None = None
    ) -> Node2VecModel:
        del prediction_relation  # Node2Vec embeds every fact of the database
        return Node2VecEmbedder(db, self.config, rng=rng, engine=engine).fit()

    def embedding(self, model: Node2VecModel, facts: Iterable[Fact]) -> TupleEmbedding:
        return model.embedding(facts)

    def make_extender(
        self,
        model: Node2VecModel,
        db: Database,
        recompute_old_paths: bool,
        rng=None,
        engine: WalkEngine | None = None,
    ) -> DynamicExtender:
        del db, recompute_old_paths, engine  # the model's graph is extended in place
        return _Node2VecExtenderAdapter(Node2VecDynamicExtender(model, rng=rng))


class _Node2VecExtenderAdapter(DynamicExtender):
    def __init__(self, extender: Node2VecDynamicExtender):
        self._extender = extender

    def extend(self, facts: Sequence[Fact]) -> TupleEmbedding:
        return self._extender.extend(facts)


def method_by_name(
    name: str,
    forward_config: ForwardConfig | None = None,
    node2vec_config: Node2VecConfig | None = None,
) -> EmbeddingMethod:
    """Construct a method from its paper name (``"forward"`` or ``"node2vec"``)."""
    if name == "forward":
        return ForwardMethod(forward_config or ForwardConfig())
    if name == "node2vec":
        return Node2VecMethod(node2vec_config or Node2VecConfig())
    raise ValueError(f"unknown embedding method {name!r}")

"""A uniform interface over the embedding methods.

The experiment drivers only need three operations from a method: fit a
static embedding on a database, read off the embedding of a set of facts,
and produce a dynamic extender bound to the (mutating) database.  Since the
unified estimator API (:mod:`repro.api`) exists, this module is a thin
adapter over it: each :class:`EmbeddingMethod` delegates to the
corresponding :class:`~repro.api.protocol.Embedder`, and
:func:`method_from_spec` resolves any registered method from the same
``"name(key=value)"`` specs the CLI and the service use.  The adapter keeps
the drivers' model-passing calling convention (``fit`` returns the method's
raw model object) so existing experiment code and persisted artifacts are
untouched.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.api.embedders import ForwardEmbedding, Node2VecEmbedding
from repro.api.protocol import Embedder
from repro.api.registry import (
    make_config,
    make_embedder,
    method_entry,
    parse_method_spec,
)
from repro.core.base import TupleEmbedding
from repro.core.config import ForwardConfig, Node2VecConfig
from repro.core.forward import ForwardModel
from repro.core.node2vec import Node2VecModel
from repro.db.database import Database, Fact
from repro.engine import WalkEngine


class DynamicExtender(abc.ABC):
    """Embeds newly inserted facts without changing existing embeddings."""

    @abc.abstractmethod
    def extend(self, facts: Sequence[Fact]) -> TupleEmbedding:
        """Embed the given new facts and return their embeddings."""

    def notify_inserted(self, facts: Sequence[Fact]) -> None:
        """Hook called after facts are inserted into the database."""


class _EmbedderExtenderAdapter(DynamicExtender):
    """An api :class:`Embedder`'s extension surface as a legacy extender."""

    def __init__(self, embedder: Embedder):
        self._embedder = embedder

    def extend(self, facts: Sequence[Fact]) -> TupleEmbedding:
        return self._embedder.partial_fit(facts)

    def notify_inserted(self, facts: Sequence[Fact]) -> None:
        self._embedder.notify_inserted(facts)


class EmbeddingMethod(abc.ABC):
    """A named embedding algorithm with static fit and dynamic extension."""

    name: str

    @abc.abstractmethod
    def fit(
        self, db: Database, prediction_relation: str, rng=None, engine: WalkEngine | None = None
    ) -> Any:
        """Train the static embedding on ``db``; returns the method's model.

        ``engine`` optionally shares a :class:`WalkEngine` compiled from
        ``db`` so several methods (and the dynamic extender) reuse one set
        of compiled arrays and distribution caches.
        """

    @abc.abstractmethod
    def embedding(self, model: Any, facts: Iterable[Fact]) -> TupleEmbedding:
        """The embeddings of the given facts from a trained model."""

    @abc.abstractmethod
    def make_extender(
        self,
        model: Any,
        db: Database,
        recompute_old_paths: bool,
        rng=None,
        engine: WalkEngine | None = None,
    ) -> DynamicExtender:
        """A dynamic extender bound to the current (post-insertion) database."""


@dataclass
class ForwardMethod(EmbeddingMethod):
    """FoRWaRD behind the uniform method interface."""

    config: ForwardConfig = field(default_factory=ForwardConfig)
    name: str = "forward"

    def fit(
        self, db: Database, prediction_relation: str, rng=None, engine: WalkEngine | None = None
    ) -> ForwardModel:
        embedder = ForwardEmbedding(self.config)
        embedder.fit(db, prediction_relation, rng=rng, engine=engine)
        return embedder.model_

    def embedding(self, model: ForwardModel, facts: Iterable[Fact]) -> TupleEmbedding:
        full = model.embedding()
        return full.restrict([f for f in facts if f in full])

    def make_extender(
        self,
        model: ForwardModel,
        db: Database,
        recompute_old_paths: bool,
        rng=None,
        engine: WalkEngine | None = None,
    ) -> DynamicExtender:
        embedder = ForwardEmbedding.from_model(model, db, engine=engine)
        embedder.configure_extension(recompute_old_paths=recompute_old_paths, rng=rng)
        return _EmbedderExtenderAdapter(embedder)


@dataclass
class Node2VecMethod(EmbeddingMethod):
    """The Node2Vec adaptation behind the uniform method interface."""

    config: Node2VecConfig = field(default_factory=Node2VecConfig)
    name: str = "node2vec"

    def fit(
        self, db: Database, prediction_relation: str, rng=None, engine: WalkEngine | None = None
    ) -> Node2VecModel:
        embedder = Node2VecEmbedding(self.config)
        embedder.fit(db, prediction_relation, rng=rng, engine=engine)
        return embedder.model_

    def embedding(self, model: Node2VecModel, facts: Iterable[Fact]) -> TupleEmbedding:
        return model.embedding(facts)

    def make_extender(
        self,
        model: Node2VecModel,
        db: Database,
        recompute_old_paths: bool,
        rng=None,
        engine: WalkEngine | None = None,
    ) -> DynamicExtender:
        del db, recompute_old_paths, engine  # the model's graph is extended in place
        embedder = Node2VecEmbedding.from_model(model)
        embedder.configure_extension(rng=rng)
        return _EmbedderExtenderAdapter(embedder)


class SpecMethod(EmbeddingMethod):
    """Any registered api method behind the legacy driver interface.

    The "model" this adapter passes around is the fitted
    :class:`~repro.api.protocol.Embedder` itself, which is what lets every
    registered method — including ones without a dedicated adapter class —
    run through the experiment drivers unchanged.
    """

    def __init__(self, spec: str):
        self.spec = spec
        self.name, _ = parse_method_spec(spec)
        method_entry(self.name)  # fail fast on unknown methods

    def fit(
        self, db: Database, prediction_relation: str, rng=None, engine: WalkEngine | None = None
    ) -> Embedder:
        embedder = make_embedder(self.spec)
        return embedder.fit(db, prediction_relation, rng=rng, engine=engine)

    def embedding(self, model: Embedder, facts: Iterable[Fact]) -> TupleEmbedding:
        return model.transform(facts)

    def make_extender(
        self,
        model: Embedder,
        db: Database,
        recompute_old_paths: bool,
        rng=None,
        engine: WalkEngine | None = None,
    ) -> DynamicExtender:
        del db, engine  # the fitted embedder is already bound to its database
        model.configure_extension(recompute_old_paths=recompute_old_paths, rng=rng)
        return _EmbedderExtenderAdapter(model)


def method_by_name(
    name: str,
    forward_config: ForwardConfig | None = None,
    node2vec_config: Node2VecConfig | None = None,
) -> EmbeddingMethod:
    """Construct a method from its paper name (``"forward"`` or ``"node2vec"``)."""
    if name == "forward":
        return ForwardMethod(forward_config or ForwardConfig())
    if name == "node2vec":
        return Node2VecMethod(node2vec_config or Node2VecConfig())
    raise ValueError(f"unknown embedding method {name!r}")


def method_from_spec(spec: str) -> EmbeddingMethod:
    """Resolve a ``"name(key=value, ...)"`` spec to an experiment method.

    The two paper methods come back as their dedicated adapters (their
    ``fit`` returns the raw core model, as persisted artifacts expect); any
    other registered method is wrapped generically in :class:`SpecMethod`.
    """
    name, kwargs = parse_method_spec(spec)
    if name == "forward":
        return ForwardMethod(make_config(name, kwargs))
    if name == "node2vec":
        return Node2VecMethod(make_config(name, kwargs))
    return SpecMethod(spec)

"""Dynamic database embedding experiment (Figure 5, Tables IV–VI).

The five-step protocol of Section VI-E-1:

1. partition the facts into ``F_old`` and ``F_new`` (stratified split of the
   prediction relation followed by cascade deletion);
2. train the static embedding on the old part only;
3. train the downstream classifier on the labelled old embeddings;
4. insert the new facts back (one-by-one or all-at-once) and extend the
   embedding to them;
5. evaluate the classifier **only** on the embeddings of the new facts.

The driver also records the numbers behind Tables V and VI: the wall-clock
time of the static embedding and the average time to embed one newly
arrived prediction tuple.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.stability import embedding_drift
from repro.datasets.base import Dataset
from repro.dynamic.partition import Partition, partition_dataset
from repro.dynamic.replay import replay_all_at_once, replay_one_by_one
from repro.engine import WalkEngine
from repro.evaluation.baselines import majority_baseline_accuracy
from repro.evaluation.downstream import (
    ClassifierFactory,
    DownstreamClassifier,
    align_embedding,
    default_classifier_factory,
)
from repro.evaluation.methods import EmbeddingMethod
from repro.utils.rng import ensure_rng, spawn_rngs


@dataclass
class DynamicRunResult:
    """Outcome of one partition/run of the dynamic experiment."""

    accuracy_new: float
    baseline_accuracy: float
    static_train_seconds: float
    seconds_per_new_tuple: float
    num_new_prediction_facts: int
    max_drift: float
    """Maximum change of any old fact's embedding (0 == perfectly stable)."""


@dataclass
class DynamicResult:
    """Aggregated dynamic-experiment result for one (dataset, method, mode)."""

    dataset: str
    method: str
    mode: str
    ratio_new: float
    accuracy_mean: float
    accuracy_std: float
    baseline_mean: float
    static_train_seconds_mean: float
    seconds_per_new_tuple_mean: float
    runs: list[DynamicRunResult] = field(default_factory=list)


@dataclass
class RatioSweepResult:
    """Accuracy series over new-data ratios for one dataset (Figure 5 panel)."""

    dataset: str
    ratios: tuple[float, ...]
    series: dict[str, list[float]]
    """Method name -> accuracy at each ratio (plus a ``"baseline"`` series)."""


def _run_once(
    dataset: Dataset,
    method: EmbeddingMethod,
    ratio_new: float,
    mode: str,
    classifier_factory: ClassifierFactory,
    rng: np.random.Generator,
) -> DynamicRunResult:
    if mode not in ("one_by_one", "all_at_once"):
        raise ValueError(f"unknown insertion mode {mode!r}")
    labels = dataset.labels()
    partition = partition_dataset(dataset, ratio_new, rng=rng)

    # Step 2: static embedding on the old data only.  The old database is
    # compiled once; the same engine is later extended incrementally as the
    # new facts arrive (step 4).  Compilation is part of the reported static
    # training time, as the walk preprocessing was before the engine existed.
    start = time.perf_counter()
    engine = WalkEngine(partition.db)
    model = method.fit(partition.db, dataset.prediction_relation, rng=rng, engine=engine)
    static_seconds = time.perf_counter() - start

    old_prediction_facts = list(partition.db.facts(dataset.prediction_relation))
    embedding_before = method.embedding(model, old_prediction_facts)

    # Step 3: downstream classifier on the labelled old embeddings.
    classifier = DownstreamClassifier(classifier_factory)
    classifier.train(align_embedding(embedding_before, labels))

    # Step 4: insert the new data and extend the embedding.
    extender = method.make_extender(
        model,
        partition.db,
        recompute_old_paths=(mode == "all_at_once"),
        rng=rng,
        engine=engine,
    )
    extension_seconds = 0.0

    def embed_batch(batch: Sequence) -> None:
        nonlocal extension_seconds
        # notify_inserted is inside the timed region: appending the batch to
        # the compiled engine is real per-arrival work, part of the cost of
        # embedding a newly inserted tuple (Table VI)
        start_batch = time.perf_counter()
        extender.notify_inserted(batch)
        extender.extend(batch)
        extension_seconds += time.perf_counter() - start_batch

    if mode == "one_by_one":
        replay_one_by_one(partition, embed_batch)
    else:
        replay_all_at_once(partition, embed_batch)

    # Step 5: evaluate only on the new prediction facts.
    new_prediction_facts = [
        partition.db.fact(fid) for fid in partition.new_prediction_ids
    ]
    all_prediction_facts = list(partition.db.facts(dataset.prediction_relation))
    embedding_after = method.embedding(model, all_prediction_facts)
    new_data = align_embedding(embedding_after, labels, facts=new_prediction_facts)
    accuracy_new = classifier.accuracy(new_data) if len(new_data) else float("nan")
    baseline = majority_baseline_accuracy(
        [labels[fid] for fid in partition.new_prediction_ids if fid in labels]
    )
    drift = embedding_drift(embedding_before, embedding_after)

    num_new = max(len(new_prediction_facts), 1)
    return DynamicRunResult(
        accuracy_new=accuracy_new,
        baseline_accuracy=baseline,
        static_train_seconds=static_seconds,
        seconds_per_new_tuple=extension_seconds / num_new,
        num_new_prediction_facts=len(new_prediction_facts),
        max_drift=drift.max_drift,
    )


def run_dynamic_experiment(
    dataset: Dataset,
    method: EmbeddingMethod,
    ratio_new: float = 0.1,
    mode: str = "one_by_one",
    n_runs: int = 10,
    classifier_factory: ClassifierFactory = default_classifier_factory,
    rng=None,
) -> DynamicResult:
    """Run the dynamic experiment ``n_runs`` times and aggregate the results."""
    generator = ensure_rng(rng)
    runs = [
        _run_once(dataset, method, ratio_new, mode, classifier_factory, run_rng)
        for run_rng in spawn_rngs(generator, n_runs)
    ]
    accuracies = np.array([r.accuracy_new for r in runs])
    return DynamicResult(
        dataset=dataset.name,
        method=method.name,
        mode=mode,
        ratio_new=ratio_new,
        accuracy_mean=float(np.nanmean(accuracies)),
        accuracy_std=float(np.nanstd(accuracies)),
        baseline_mean=float(np.mean([r.baseline_accuracy for r in runs])),
        static_train_seconds_mean=float(np.mean([r.static_train_seconds for r in runs])),
        seconds_per_new_tuple_mean=float(np.mean([r.seconds_per_new_tuple for r in runs])),
        runs=runs,
    )


def run_ratio_sweep(
    dataset: Dataset,
    methods: Sequence[EmbeddingMethod],
    ratios: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    mode: str = "one_by_one",
    n_runs: int = 10,
    classifier_factory: ClassifierFactory = default_classifier_factory,
    rng=None,
) -> RatioSweepResult:
    """The Figure-5 sweep: accuracy on new data as the new-data ratio grows."""
    generator = ensure_rng(rng)
    series: dict[str, list[float]] = {method.name: [] for method in methods}
    series["baseline"] = []
    for ratio in ratios:
        baseline_values: list[float] = []
        for method in methods:
            result = run_dynamic_experiment(
                dataset,
                method,
                ratio_new=ratio,
                mode=mode,
                n_runs=n_runs,
                classifier_factory=classifier_factory,
                rng=generator,
            )
            series[method.name].append(result.accuracy_mean)
            baseline_values.append(result.baseline_mean)
        series["baseline"].append(float(np.mean(baseline_values)))
    return RatioSweepResult(dataset.name, tuple(ratios), series)

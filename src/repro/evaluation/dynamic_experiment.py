"""Dynamic database embedding experiment (Figure 5, Tables IV–VI).

The five-step protocol of Section VI-E-1:

1. partition the facts into ``F_old`` and ``F_new`` (stratified split of the
   prediction relation followed by cascade deletion);
2. train the static embedding on the old part only;
3. train the downstream classifier on the labelled old embeddings;
4. insert the new facts back (one-by-one or all-at-once) and extend the
   embedding to them;
5. evaluate the classifier **only** on the embeddings of the new facts.

The driver also records the numbers behind Tables V and VI: the wall-clock
time of the static embedding and the average time to embed one newly
arrived prediction tuple.

:func:`run_churn_experiment` extends the protocol past the paper's
insert-only setting: the same partitioned stream is replayed as a
full-CRUD *churn* workload (inserts interleaved with deletions of
previously streamed facts and in-place attribute updates) through a live
:class:`~repro.service.service.EmbeddingService`, and the classifier is
evaluated on the embeddings of the *surviving* new prediction facts read
back from the versioned store.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.base import TupleEmbedding
from repro.core.stability import embedding_drift
from repro.datasets.base import Dataset
from repro.dynamic.partition import Partition, partition_dataset
from repro.dynamic.replay import replay_all_at_once, replay_one_by_one
from repro.engine import WalkEngine
from repro.evaluation.baselines import majority_baseline_accuracy
from repro.evaluation.downstream import (
    ClassifierFactory,
    DownstreamClassifier,
    align_embedding,
    default_classifier_factory,
)
from repro.evaluation.methods import EmbeddingMethod
from repro.utils.rng import ensure_rng, spawn_rngs


@dataclass
class DynamicRunResult:
    """Outcome of one partition/run of the dynamic experiment."""

    accuracy_new: float
    baseline_accuracy: float
    static_train_seconds: float
    seconds_per_new_tuple: float
    num_new_prediction_facts: int
    max_drift: float
    """Maximum change of any old fact's embedding (0 == perfectly stable)."""


@dataclass
class DynamicResult:
    """Aggregated dynamic-experiment result for one (dataset, method, mode)."""

    dataset: str
    method: str
    mode: str
    ratio_new: float
    accuracy_mean: float
    accuracy_std: float
    baseline_mean: float
    static_train_seconds_mean: float
    seconds_per_new_tuple_mean: float
    runs: list[DynamicRunResult] = field(default_factory=list)


@dataclass
class RatioSweepResult:
    """Accuracy series over new-data ratios for one dataset (Figure 5 panel)."""

    dataset: str
    ratios: tuple[float, ...]
    series: dict[str, list[float]]
    """Method name -> accuracy at each ratio (plus a ``"baseline"`` series)."""


def _run_once(
    dataset: Dataset,
    method: EmbeddingMethod,
    ratio_new: float,
    mode: str,
    classifier_factory: ClassifierFactory,
    rng: np.random.Generator,
) -> DynamicRunResult:
    if mode not in ("one_by_one", "all_at_once"):
        raise ValueError(f"unknown insertion mode {mode!r}")
    labels = dataset.labels()
    partition = partition_dataset(dataset, ratio_new, rng=rng)

    # Step 2: static embedding on the old data only.  The old database is
    # compiled once; the same engine is later extended incrementally as the
    # new facts arrive (step 4).  Compilation is part of the reported static
    # training time, as the walk preprocessing was before the engine existed.
    start = time.perf_counter()
    engine = WalkEngine(partition.db)
    model = method.fit(partition.db, dataset.prediction_relation, rng=rng, engine=engine)
    static_seconds = time.perf_counter() - start

    old_prediction_facts = list(partition.db.facts(dataset.prediction_relation))
    embedding_before = method.embedding(model, old_prediction_facts)

    # Step 3: downstream classifier on the labelled old embeddings.
    classifier = DownstreamClassifier(classifier_factory)
    classifier.train(align_embedding(embedding_before, labels))

    # Step 4: insert the new data and extend the embedding.
    extender = method.make_extender(
        model,
        partition.db,
        recompute_old_paths=(mode == "all_at_once"),
        rng=rng,
        engine=engine,
    )
    extension_seconds = 0.0

    def embed_batch(batch: Sequence) -> None:
        nonlocal extension_seconds
        # notify_inserted is inside the timed region: appending the batch to
        # the compiled engine is real per-arrival work, part of the cost of
        # embedding a newly inserted tuple (Table VI)
        start_batch = time.perf_counter()
        extender.notify_inserted(batch)
        extender.extend(batch)
        extension_seconds += time.perf_counter() - start_batch

    if mode == "one_by_one":
        replay_one_by_one(partition, embed_batch)
    else:
        replay_all_at_once(partition, embed_batch)

    # Step 5: evaluate only on the new prediction facts.
    new_prediction_facts = [
        partition.db.fact(fid) for fid in partition.new_prediction_ids
    ]
    all_prediction_facts = list(partition.db.facts(dataset.prediction_relation))
    embedding_after = method.embedding(model, all_prediction_facts)
    new_data = align_embedding(embedding_after, labels, facts=new_prediction_facts)
    accuracy_new = classifier.accuracy(new_data) if len(new_data) else float("nan")
    baseline = majority_baseline_accuracy(
        [labels[fid] for fid in partition.new_prediction_ids if fid in labels]
    )
    drift = embedding_drift(embedding_before, embedding_after)

    num_new = max(len(new_prediction_facts), 1)
    return DynamicRunResult(
        accuracy_new=accuracy_new,
        baseline_accuracy=baseline,
        static_train_seconds=static_seconds,
        seconds_per_new_tuple=extension_seconds / num_new,
        num_new_prediction_facts=len(new_prediction_facts),
        max_drift=drift.max_drift,
    )


def run_dynamic_experiment(
    dataset: Dataset,
    method: EmbeddingMethod,
    ratio_new: float = 0.1,
    mode: str = "one_by_one",
    n_runs: int = 10,
    classifier_factory: ClassifierFactory = default_classifier_factory,
    rng=None,
) -> DynamicResult:
    """Run the dynamic experiment ``n_runs`` times and aggregate the results."""
    generator = ensure_rng(rng)
    runs = [
        _run_once(dataset, method, ratio_new, mode, classifier_factory, run_rng)
        for run_rng in spawn_rngs(generator, n_runs)
    ]
    accuracies = np.array([r.accuracy_new for r in runs])
    return DynamicResult(
        dataset=dataset.name,
        method=method.name,
        mode=mode,
        ratio_new=ratio_new,
        accuracy_mean=float(np.nanmean(accuracies)),
        accuracy_std=float(np.nanstd(accuracies)),
        baseline_mean=float(np.mean([r.baseline_accuracy for r in runs])),
        static_train_seconds_mean=float(np.mean([r.static_train_seconds for r in runs])),
        seconds_per_new_tuple_mean=float(np.mean([r.seconds_per_new_tuple for r in runs])),
        runs=runs,
    )


@dataclass
class ChurnRunResult:
    """Outcome of one run of the churn experiment."""

    accuracy_surviving: float
    """Classifier accuracy on the surviving (non-deleted) new facts."""
    baseline_accuracy: float
    facts_inserted: int
    facts_deleted: int
    facts_updated: int
    num_surviving_prediction_facts: int
    max_trained_drift: float
    """Maximum change of any trained fact's stored embedding (0 == stable)."""
    total_apply_seconds: float


@dataclass
class ChurnResult:
    """Aggregated churn-experiment result for one dataset."""

    dataset: str
    method: str
    ratio_new: float
    delete_fraction: float
    update_fraction: float
    policy: str
    accuracy_mean: float
    accuracy_std: float
    baseline_mean: float
    runs: list[ChurnRunResult] = field(default_factory=list)


def _churn_once(
    dataset: Dataset,
    config,
    ratio_new: float,
    delete_fraction: float,
    update_fraction: float,
    policy: str,
    classifier_factory: ClassifierFactory,
    rng: np.random.Generator,
) -> ChurnRunResult:
    from repro.core.forward import ForwardEmbedder
    from repro.service.feed import churn_feed
    from repro.service.service import EmbeddingService

    labels = dataset.labels()
    partition = partition_dataset(dataset, ratio_new, rng=rng)

    engine = WalkEngine(partition.db)
    model = ForwardEmbedder(
        partition.db, dataset.prediction_relation, config, rng=rng, engine=engine
    ).fit()
    old_prediction_facts = list(partition.db.facts(dataset.prediction_relation))
    embedding_before = model.embedding().restrict(old_prediction_facts)

    classifier = DownstreamClassifier(classifier_factory)
    classifier.train(align_embedding(embedding_before, labels))

    feed = churn_feed(
        partition,
        delete_fraction=delete_fraction,
        update_fraction=update_fraction,
        rng=rng,
    )
    service = EmbeddingService(
        model, partition.db, engine=engine, policy=policy,
        seed=int(rng.integers(2**31)),
    )
    service.sync(feed)
    stats = service.stats(feed)
    head = service.store.head

    # trained embeddings must not have moved in the store (stability)
    trained_drift = 0.0
    for fid in model.fact_ids:
        if fid in head:
            trained_drift = max(
                trained_drift,
                float(np.max(np.abs(head.vector(fid) - model.vector(fid)))),
            )

    surviving = [
        fid
        for fid in partition.new_prediction_ids
        if fid in partition.db._facts_by_id  # noqa: SLF001 - survived the churn
        and fid in head
    ]
    embedding_after = TupleEmbedding(head.dimension)
    for fid in surviving:
        embedding_after.set(fid, head.vector(fid))
    surviving_facts = [partition.db.fact(fid) for fid in surviving]
    data = align_embedding(embedding_after, labels, facts=surviving_facts)
    accuracy = classifier.accuracy(data) if len(data) else float("nan")
    surviving_labels = [labels[fid] for fid in surviving if fid in labels]
    baseline = (
        majority_baseline_accuracy(surviving_labels)
        if surviving_labels
        else float("nan")
    )
    return ChurnRunResult(
        accuracy_surviving=accuracy,
        baseline_accuracy=baseline,
        facts_inserted=stats.facts_inserted,
        facts_deleted=stats.facts_deleted,
        facts_updated=stats.facts_updated,
        num_surviving_prediction_facts=len(surviving),
        max_trained_drift=trained_drift,
        total_apply_seconds=stats.total_apply_seconds,
    )


def run_churn_experiment(
    dataset: Dataset,
    config=None,
    ratio_new: float = 0.1,
    delete_fraction: float = 0.15,
    update_fraction: float = 0.15,
    policy: str = "recompute",
    n_runs: int = 3,
    classifier_factory: ClassifierFactory = default_classifier_factory,
    rng=None,
) -> ChurnResult:
    """The churn scenario: inserts, deletions and updates served online.

    The insert stream of the standard dynamic protocol is replayed as a
    :func:`~repro.service.feed.churn_feed` through a live
    :class:`~repro.service.service.EmbeddingService` (FoRWaRD), and the
    old-data classifier is evaluated on the surviving new prediction facts'
    embeddings read from the head store snapshot — deleted tuples must be
    gone from the store, trained embeddings must not have drifted.
    """
    from repro.core.config import ForwardConfig

    config = config or ForwardConfig()
    generator = ensure_rng(rng)
    runs = [
        _churn_once(
            dataset, config, ratio_new, delete_fraction, update_fraction,
            policy, classifier_factory, run_rng,
        )
        for run_rng in spawn_rngs(generator, n_runs)
    ]
    accuracies = np.array([r.accuracy_surviving for r in runs])
    return ChurnResult(
        dataset=dataset.name,
        method="forward",
        ratio_new=ratio_new,
        delete_fraction=delete_fraction,
        update_fraction=update_fraction,
        policy=policy,
        accuracy_mean=float(np.nanmean(accuracies)),
        accuracy_std=float(np.nanstd(accuracies)),
        baseline_mean=float(np.nanmean([r.baseline_accuracy for r in runs])),
        runs=runs,
    )


def run_ratio_sweep(
    dataset: Dataset,
    methods: Sequence[EmbeddingMethod],
    ratios: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
    mode: str = "one_by_one",
    n_runs: int = 10,
    classifier_factory: ClassifierFactory = default_classifier_factory,
    rng=None,
) -> RatioSweepResult:
    """The Figure-5 sweep: accuracy on new data as the new-data ratio grows."""
    generator = ensure_rng(rng)
    series: dict[str, list[float]] = {method.name: [] for method in methods}
    series["baseline"] = []
    for ratio in ratios:
        baseline_values: list[float] = []
        for method in methods:
            result = run_dynamic_experiment(
                dataset,
                method,
                ratio_new=ratio,
                mode=mode,
                n_runs=n_runs,
                classifier_factory=classifier_factory,
                rng=generator,
            )
            series[method.name].append(result.accuracy_mean)
            baseline_values.append(result.baseline_mean)
        series["baseline"].append(float(np.mean(baseline_values)))
    return RatioSweepResult(dataset.name, tuple(ratios), series)

"""Evaluation harness: downstream tasks and the paper's experiments.

This package reproduces the experimental protocol of Section VI:

* :mod:`repro.evaluation.methods` — a uniform interface over the two
  embedding algorithms (and their dynamic extenders);
* :mod:`repro.evaluation.baselines` — majority-class and flat-feature
  baselines;
* :mod:`repro.evaluation.static_experiment` — static classification with
  10-fold cross-validation (Table III);
* :mod:`repro.evaluation.dynamic_experiment` — the five-step dynamic
  protocol, the ratio sweep of Figure 5 and the 10 %-new comparison of
  Table IV, plus the timing numbers of Tables V and VI;
* :mod:`repro.evaluation.reporting` — ASCII renderings of every table and
  figure.
"""

from repro.evaluation.methods import (
    EmbeddingMethod,
    ForwardMethod,
    Node2VecMethod,
    SpecMethod,
    method_by_name,
    method_from_spec,
)
from repro.evaluation.baselines import FlatFeatureBaseline, majority_baseline_accuracy
from repro.evaluation.static_experiment import StaticResult, run_static_experiment
from repro.evaluation.dynamic_experiment import (
    ChurnResult,
    DynamicResult,
    RatioSweepResult,
    run_churn_experiment,
    run_dynamic_experiment,
    run_ratio_sweep,
)
from repro.evaluation.reporting import (
    format_dynamic_table,
    format_figure5_series,
    format_static_table,
    format_timing_table,
)
from repro.evaluation.timing import latency_summary

__all__ = [
    "EmbeddingMethod",
    "ForwardMethod",
    "Node2VecMethod",
    "SpecMethod",
    "method_by_name",
    "method_from_spec",
    "FlatFeatureBaseline",
    "majority_baseline_accuracy",
    "StaticResult",
    "run_static_experiment",
    "ChurnResult",
    "DynamicResult",
    "RatioSweepResult",
    "run_churn_experiment",
    "run_dynamic_experiment",
    "run_ratio_sweep",
    "format_static_table",
    "format_dynamic_table",
    "format_timing_table",
    "format_figure5_series",
    "latency_summary",
]

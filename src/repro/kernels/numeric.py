"""Kernels for numeric attribute domains."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.kernels.base import Kernel


class GaussianKernel(Kernel):
    """The Gaussian kernel ``κ(a, b) = exp(-(a - b)² / (2·υ))``.

    This is the paper's default kernel for numeric domains.  Non-numeric or
    null inputs fall back to strict equality, which keeps the kernel total on
    dirty real-world columns.
    """

    def __init__(self, variance: float = 1.0):
        if variance <= 0:
            raise ValueError("variance must be positive")
        self.variance = float(variance)

    def __call__(self, a: Any, b: Any) -> float:
        try:
            diff = float(a) - float(b)
        except (TypeError, ValueError):
            return 1.0 if a == b else 0.0
        return float(np.exp(-(diff * diff) / (2.0 * self.variance)))

    def cross_matrix(self, xs: Sequence[Any], ys: Sequence[Any]) -> np.ndarray:
        try:
            xa = np.asarray([float(x) for x in xs], dtype=np.float64)
            ya = np.asarray([float(y) for y in ys], dtype=np.float64)
        except (TypeError, ValueError):
            return super().cross_matrix(xs, ys)
        diff = xa[:, None] - ya[None, :]
        return np.exp(-(diff * diff) / (2.0 * self.variance))

    def elementwise(self, xs: Sequence[Any], ys: Sequence[Any]) -> np.ndarray:
        try:
            xa = np.asarray([float(x) for x in xs], dtype=np.float64)
            ya = np.asarray([float(y) for y in ys], dtype=np.float64)
        except (TypeError, ValueError):
            return super().elementwise(xs, ys)
        diff = xa - ya
        return np.exp(-(diff * diff) / (2.0 * self.variance))

    @classmethod
    def for_values(cls, values: Sequence[float], min_variance: float = 1e-6) -> "GaussianKernel":
        """A kernel whose variance is the empirical variance of ``values``.

        Scaling the bandwidth to the column's spread makes the similarity
        meaningful for columns of very different magnitude (budgets in the
        hundreds of millions vs. ages below one hundred).
        """
        numeric = [float(v) for v in values if v is not None]
        if not numeric:
            return cls(1.0)
        variance = float(np.var(numeric))
        return cls(max(variance, min_variance))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"GaussianKernel(variance={self.variance:g})"

"""Kernels for categorical and identifier domains."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.kernels.base import Kernel


class EqualityKernel(Kernel):
    """The equality kernel: ``κ(a, a) = 1`` and ``κ(a, b) = 0`` for ``a ≠ b``.

    The paper's fallback kernel, used for finite categorical domains and for
    identifiers that carry no semantic meaning.
    """

    def __call__(self, a: Any, b: Any) -> float:
        return 1.0 if a == b else 0.0

    def cross_matrix(self, xs: Sequence[Any], ys: Sequence[Any]) -> np.ndarray:
        out = np.zeros((len(xs), len(ys)), dtype=np.float64)
        index: dict[Any, list[int]] = {}
        for j, y in enumerate(ys):
            index.setdefault(y, []).append(j)
        for i, x in enumerate(xs):
            for j in index.get(x, ()):  # noqa: B909 - read-only
                out[i, j] = 1.0
        return out

    def elementwise(self, xs: Sequence[Any], ys: Sequence[Any]) -> np.ndarray:
        return (_object_array(xs) == _object_array(ys)).astype(np.float64)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "EqualityKernel()"


def _object_array(values: Sequence[Any]) -> np.ndarray:
    """A 1-d object array (safe for tuple-valued entries, unlike asarray)."""
    if isinstance(values, np.ndarray) and values.dtype == object and values.ndim == 1:
        return values
    out = np.empty(len(values), dtype=object)
    out[:] = list(values)
    return out

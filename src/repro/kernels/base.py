"""Kernel protocol shared by all attribute-domain kernels."""

from __future__ import annotations

import abc
from typing import Any, Sequence

import numpy as np


class Kernel(abc.ABC):
    """A symmetric similarity function on an attribute domain.

    Implementations must guarantee symmetry ``κ(a, b) == κ(b, a)`` and
    non-negativity; the default kernels are also bounded in ``[0, 1]`` with
    ``κ(a, a) == 1`` which keeps the FoRWaRD targets on a common scale.
    """

    @abc.abstractmethod
    def __call__(self, a: Any, b: Any) -> float:
        """Similarity of two domain values."""

    def cross_matrix(self, xs: Sequence[Any], ys: Sequence[Any]) -> np.ndarray:
        """The matrix ``K[i, j] = κ(xs[i], ys[j])``.

        Subclasses override this when a vectorised evaluation is available
        (e.g. the Gaussian kernel); the base implementation loops.
        """
        out = np.empty((len(xs), len(ys)), dtype=np.float64)
        for i, x in enumerate(xs):
            for j, y in enumerate(ys):
                out[i, j] = self(x, y)
        return out

    def elementwise(self, xs: Sequence[Any], ys: Sequence[Any]) -> np.ndarray:
        """The vector ``[κ(xs[i], ys[i])]`` for aligned value sequences.

        Subclasses override this when a vectorised evaluation is available;
        the base implementation loops.  The engine's batched training-sample
        drawing calls this once per batch instead of once per pair.
        """
        out = np.empty(len(xs), dtype=np.float64)
        for i, (x, y) in enumerate(zip(xs, ys)):
            out[i] = self(x, y)
        return out

    def expected_similarity(
        self,
        values_a: Sequence[Any],
        probs_a: Sequence[float],
        values_b: Sequence[Any],
        probs_b: Sequence[float],
    ) -> float:
        """Expected kernel value between two independent distributions.

        This is the Expected Kernel Distance ``KD`` of Equation (2) in the
        paper, for explicit finite distributions over domain values.
        """
        if not values_a or not values_b:
            raise ValueError("expected_similarity requires non-empty distributions")
        pa = np.asarray(probs_a, dtype=np.float64)
        pb = np.asarray(probs_b, dtype=np.float64)
        matrix = self.cross_matrix(list(values_a), list(values_b))
        return float(pa @ matrix @ pb)

"""Kernelized attribute domains (Section V-B of the paper).

Every attribute ``A`` of the schema is associated with a symmetric positive
semi-definite kernel ``κ_A : dom(A) × dom(A) → R≥0`` that measures value
similarity.  FoRWaRD never needs the implicit Hilbert-space embedding — only
kernel evaluations — so kernels are plain callables with a vectorised
cross-matrix helper.
"""

from repro.kernels.base import Kernel
from repro.kernels.numeric import GaussianKernel
from repro.kernels.categorical import EqualityKernel
from repro.kernels.text import EditDistanceKernel, TokenJaccardKernel
from repro.kernels.registry import KernelRegistry, default_kernels

__all__ = [
    "Kernel",
    "GaussianKernel",
    "EqualityKernel",
    "EditDistanceKernel",
    "TokenJaccardKernel",
    "KernelRegistry",
    "default_kernels",
]

"""Kernels for textual attribute domains.

The paper notes that kernels based on edit distance can smooth out typos in
text columns; these kernels implement that idea and a token-overlap variant
for longer strings.
"""

from __future__ import annotations

from typing import Any

from repro.kernels.base import Kernel


def levenshtein_distance(a: str, b: str) -> int:
    """Classic dynamic-programming Levenshtein edit distance."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            insert_cost = current[j - 1] + 1
            delete_cost = previous[j] + 1
            substitute_cost = previous[j - 1] + (ca != cb)
            current.append(min(insert_cost, delete_cost, substitute_cost))
        previous = current
    return previous[-1]


class EditDistanceKernel(Kernel):
    """Similarity ``1 - dist(a, b) / max(len(a), len(b))`` from edit distance."""

    def __call__(self, a: Any, b: Any) -> float:
        sa, sb = str(a), str(b)
        if sa == sb:
            return 1.0
        longest = max(len(sa), len(sb))
        if longest == 0:
            return 1.0
        return 1.0 - levenshtein_distance(sa, sb) / longest


class TokenJaccardKernel(Kernel):
    """Jaccard similarity of whitespace-token sets, for longer text values."""

    def __call__(self, a: Any, b: Any) -> float:
        tokens_a = set(str(a).lower().split())
        tokens_b = set(str(b).lower().split())
        if not tokens_a and not tokens_b:
            return 1.0
        if not tokens_a or not tokens_b:
            return 0.0
        return len(tokens_a & tokens_b) / len(tokens_a | tokens_b)

"""Per-attribute kernel assignment.

The registry maps qualified attribute names ``R.A`` to kernels.  The
defaults follow the paper's experimental setup (Section VI-C-1): a Gaussian
kernel for numbers (with bandwidth scaled to each column's active domain)
and the equality kernel for everything else.
"""

from __future__ import annotations

from typing import Mapping

from repro.db.database import Database
from repro.db.schema import AttributeType, Schema
from repro.kernels.base import Kernel
from repro.kernels.categorical import EqualityKernel
from repro.kernels.numeric import GaussianKernel


class KernelRegistry:
    """Lookup table from qualified attribute name to :class:`Kernel`."""

    def __init__(self, kernels: Mapping[str, Kernel] | None = None, fallback: Kernel | None = None):
        self._kernels: dict[str, Kernel] = dict(kernels or {})
        self._fallback = fallback or EqualityKernel()

    def register(self, relation: str, attribute: str, kernel: Kernel) -> None:
        self._kernels[f"{relation}.{attribute}"] = kernel

    def get(self, relation: str, attribute: str) -> Kernel:
        return self._kernels.get(f"{relation}.{attribute}", self._fallback)

    def __contains__(self, qualified_name: str) -> bool:
        return qualified_name in self._kernels

    def __len__(self) -> int:
        return len(self._kernels)

    def items(self):
        return self._kernels.items()


def default_kernels(
    db: Database,
    schema: Schema | None = None,
    numeric_variance: float | None = None,
) -> KernelRegistry:
    """Build the paper's default kernel assignment for a database.

    Numeric attributes get a :class:`GaussianKernel`; when
    ``numeric_variance`` is None the bandwidth is fit to each column's active
    domain, otherwise the fixed value is used for all numeric columns.
    Categorical, text and identifier attributes get the equality kernel via
    the registry fallback.
    """
    schema = schema or db.schema
    registry = KernelRegistry()
    for rel in schema:
        for attr in rel.attributes:
            if attr.type is not AttributeType.NUMERIC:
                continue
            if numeric_variance is not None:
                kernel = GaussianKernel(numeric_variance)
            else:
                values = [v for v in db.active_domain(rel.name, attr.name)]
                kernel = GaussianKernel.for_values(values)
            registry.register(rel.name, attr.name, kernel)
    return registry

"""Small shared utilities (seeded RNG handling, linear algebra helpers)."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.linalg import solve_least_squares, normalize_rows

__all__ = ["ensure_rng", "spawn_rngs", "solve_least_squares", "normalize_rows"]

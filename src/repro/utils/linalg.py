"""Linear-algebra helpers used by the embedding algorithms."""

from __future__ import annotations

import numpy as np


def solve_least_squares(matrix: np.ndarray, rhs: np.ndarray, rcond: float = 1e-10) -> np.ndarray:
    """Minimum-norm least-squares solution of ``matrix @ x = rhs``.

    The FoRWaRD dynamic extension (Equation (10) of the paper) solves the
    over-determined system ``C · φ(f_new) = b`` with the pseudo-inverse; we
    use ``numpy.linalg.lstsq`` which computes the same minimum-norm solution
    without forming the pseudo-inverse explicitly.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    rhs = np.asarray(rhs, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-dimensional")
    if matrix.shape[0] != rhs.shape[0]:
        raise ValueError(
            f"incompatible shapes: matrix {matrix.shape} vs rhs {rhs.shape}"
        )
    solution, _residuals, _rank, _svals = np.linalg.lstsq(matrix, rhs, rcond=rcond)
    return solution


def normalize_rows(matrix: np.ndarray, epsilon: float = 1e-12) -> np.ndarray:
    """Scale every row of ``matrix`` to unit Euclidean norm (zero rows stay zero)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    norms = np.linalg.norm(matrix, axis=-1, keepdims=True)
    return matrix / np.maximum(norms, epsilon)

"""Random-number-generator helpers.

All stochastic components of the library accept either an integer seed, a
``numpy.random.Generator``, or ``None`` and normalise through
:func:`ensure_rng`, so experiments are reproducible end-to-end from a single
seed.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed, a generator, or None."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one seed or generator."""
    root = ensure_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]

"""Learning-rate schedules."""

from __future__ import annotations

import abc


class Schedule(abc.ABC):
    """Maps an epoch index (0-based) to a learning rate."""

    @abc.abstractmethod
    def rate(self, epoch: int) -> float:
        """Learning rate to use during ``epoch``."""


class ConstantSchedule(Schedule):
    """The same learning rate every epoch."""

    def __init__(self, learning_rate: float):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = float(learning_rate)

    def rate(self, epoch: int) -> float:
        return self.learning_rate


class LinearDecay(Schedule):
    """Linear decay from ``initial`` to ``final`` over ``num_epochs`` epochs."""

    def __init__(self, initial: float, final: float, num_epochs: int):
        if initial <= 0 or final < 0:
            raise ValueError("initial rate must be positive and final rate non-negative")
        if num_epochs < 1:
            raise ValueError("num_epochs must be at least 1")
        self.initial = float(initial)
        self.final = float(final)
        self.num_epochs = int(num_epochs)

    def rate(self, epoch: int) -> float:
        if self.num_epochs == 1:
            return self.initial
        progress = min(max(epoch, 0), self.num_epochs - 1) / (self.num_epochs - 1)
        return self.initial + (self.final - self.initial) * progress


class ExponentialDecay(Schedule):
    """Multiplicative decay: ``initial * gamma**epoch``."""

    def __init__(self, initial: float, gamma: float = 0.9):
        if initial <= 0:
            raise ValueError("initial learning rate must be positive")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.initial = float(initial)
        self.gamma = float(gamma)

    def rate(self, epoch: int) -> float:
        return self.initial * self.gamma ** max(epoch, 0)

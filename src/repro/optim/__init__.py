"""NumPy optimization substrate (stands in for the paper's PyTorch usage).

The two training objectives of the paper — the FoRWaRD bilinear regression
loss (Equation (5)) and the skip-gram negative-sampling loss used by the
Node2Vec adaptation — are small closed-form expressions, so their gradients
are derived analytically and applied with the optimizers in this package.
"""

from repro.optim.optimizers import SGD, Adam, Momentum, Optimizer
from repro.optim.schedules import ConstantSchedule, ExponentialDecay, LinearDecay, Schedule
from repro.optim.gradcheck import numerical_gradient

__all__ = [
    "Optimizer",
    "SGD",
    "Momentum",
    "Adam",
    "Schedule",
    "ConstantSchedule",
    "LinearDecay",
    "ExponentialDecay",
    "numerical_gradient",
]

"""Finite-difference gradient checking.

Because the analytic gradients replace PyTorch autograd, the test suite
verifies them against central finite differences; this helper does the
numerical part.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def numerical_gradient(
    loss_fn: Callable[[np.ndarray], float],
    point: np.ndarray,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``loss_fn`` at ``point``."""
    point = np.asarray(point, dtype=np.float64)
    grad = np.zeros_like(point)
    flat = point.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = loss_fn(point)
        flat[i] = original - epsilon
        minus = loss_fn(point)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * epsilon)
    return grad

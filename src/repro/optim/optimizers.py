"""Gradient-descent optimizers over named NumPy parameter arrays.

Parameters live in a plain ``{name: ndarray}`` dict owned by the model; an
optimizer keeps its own per-parameter state (momenta, second moments) keyed
by the same names.  Sparse updates — updating only a subset of the rows of an
embedding matrix, as both skip-gram and FoRWaRD training do — are supported
through the optional ``rows`` argument of :meth:`Optimizer.update`.
"""

from __future__ import annotations

import abc
from typing import Mapping

import numpy as np


class Optimizer(abc.ABC):
    """Base class: applies gradients to parameters in place."""

    def __init__(self, learning_rate: float = 0.01):
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = float(learning_rate)

    @abc.abstractmethod
    def update(
        self,
        params: Mapping[str, np.ndarray],
        grads: Mapping[str, np.ndarray],
        rows: Mapping[str, np.ndarray] | None = None,
    ) -> None:
        """Apply one update step in place.

        ``grads[name]`` must have the same shape as ``params[name]`` unless
        ``rows`` provides row indices for ``name``, in which case the gradient
        has shape ``(len(rows[name]), *params[name].shape[1:])`` and only those
        rows are updated (sparse update).
        """

    def reset(self) -> None:
        """Drop optimizer state (momenta, step counters)."""


class SGD(Optimizer):
    """Plain stochastic gradient descent."""

    def update(self, params, grads, rows=None):
        for name, grad in grads.items():
            param = params[name]
            if rows is not None and name in rows:
                np.subtract.at(param, rows[name], self.learning_rate * grad)
            else:
                param -= self.learning_rate * grad


class Momentum(Optimizer):
    """SGD with classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.9):
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = float(momentum)
        self._velocity: dict[str, np.ndarray] = {}

    def update(self, params, grads, rows=None):
        for name, grad in grads.items():
            param = params[name]
            velocity = self._velocity.setdefault(name, np.zeros_like(param))
            if rows is not None and name in rows:
                idx = rows[name]
                velocity[idx] = self.momentum * velocity[idx] + grad
                np.subtract.at(param, idx, self.learning_rate * velocity[idx])
            else:
                velocity *= self.momentum
                velocity += grad
                param -= self.learning_rate * velocity

    def reset(self) -> None:
        self._velocity.clear()


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015) with bias correction.

    For sparse updates the step counter is global (not per row), which is the
    usual "dense step count" treatment and is adequate for the small models
    trained here.
    """

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        super().__init__(learning_rate)
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("beta1 and beta2 must be in [0, 1)")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self._first: dict[str, np.ndarray] = {}
        self._second: dict[str, np.ndarray] = {}
        self._step = 0

    def update(self, params, grads, rows=None):
        self._step += 1
        correction1 = 1.0 - self.beta1**self._step
        correction2 = 1.0 - self.beta2**self._step
        for name, grad in grads.items():
            param = params[name]
            first = self._first.setdefault(name, np.zeros_like(param))
            second = self._second.setdefault(name, np.zeros_like(param))
            if rows is not None and name in rows:
                idx = rows[name]
                first[idx] = self.beta1 * first[idx] + (1 - self.beta1) * grad
                second[idx] = self.beta2 * second[idx] + (1 - self.beta2) * grad * grad
                m_hat = first[idx] / correction1
                v_hat = second[idx] / correction2
                np.subtract.at(
                    param, idx, self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
                )
            else:
                first *= self.beta1
                first += (1 - self.beta1) * grad
                second *= self.beta2
                second += (1 - self.beta2) * grad * grad
                m_hat = first / correction1
                v_hat = second / correction2
                param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def reset(self) -> None:
        self._first.clear()
        self._second.clear()
        self._step = 0

"""repro — Stable Tuple Embeddings for Dynamic Databases.

A reproduction of "Stable Tuple Embeddings for Dynamic Databases"
(Toenshoff, Friedman, Grohe, Kimelfeld): the FoRWaRD algorithm and a
Node2Vec adaptation for embedding the tuples of a relational database, with
dynamic extensions that embed newly inserted tuples without changing the
embeddings of existing ones.

Quickstart::

    from repro import load_dataset, ForwardEmbedder, ForwardDynamicExtender

    dataset = load_dataset("genes", scale=0.1, seed=0)
    db = dataset.masked_database()
    model = ForwardEmbedder(db, dataset.prediction_relation).fit()
    embedding = model.embedding()           # γ : facts -> R^d

Every embedding method is also available through the unified estimator API
(``repro.api``): ``make_embedder("forward(dimension=64)")`` returns an
:class:`~repro.api.protocol.Embedder` with ``fit / transform /
partial_fit``, and the whole system is drivable from one command line,
``python -m repro`` (subcommands ``ingest``, ``embed``, ``serve``,
``replay``, ``evaluate``, ``bench``).

There are three entry points: offline experiments on the bundled datasets
(above), the online embedding service (``repro.service``,
``docs/SERVING.md``), and ingestion of external CSV/SQLite corpora with
inferred schemas (``repro.io``, ``docs/INGESTION.md``).  See ``docs/API.md``
for the estimator protocol and method registry, the ``examples/`` directory
for end-to-end scripts, ``docs/ARCHITECTURE.md`` for the layer stack, and
``docs/REPRODUCTION.md`` for the paper-section → module map.
"""

# The single source of the library version: setup.py parses this line, the
# CLI's --version prints it, and saved artifacts (model directories, .npz
# embeddings, BENCH_*.json reports) are stamped with it.  It is assigned
# before any subpackage import so lazily importing code (persistence,
# reports) can always read it.
__version__ = "1.1.0"

from repro.api import Embedder, make_embedder, register_method
from repro.core import (
    ForwardConfig,
    ForwardDynamicExtender,
    ForwardEmbedder,
    ForwardModel,
    Node2VecConfig,
    Node2VecDynamicExtender,
    Node2VecEmbedder,
    Node2VecModel,
    TupleEmbedding,
    embedding_drift,
    is_stable_extension,
)
from repro.datasets import Dataset, list_datasets, load_dataset, register_dataset
from repro.db import Database, Fact, ForeignKey, RelationSchema, Schema
from repro.engine import CompiledDatabase, WalkEngine
from repro.io import (
    IngestResult,
    export_csv_dir,
    export_sqlite,
    ingest_csv_dir,
    ingest_path,
    ingest_sqlite,
    register_ingested,
    stream_table,
)
from repro.service import ChangeFeed, EmbeddingService, EmbeddingStore

__all__ = [
    "__version__",
    # unified estimator API
    "Embedder",
    "make_embedder",
    "register_method",
    # core algorithms
    "ForwardConfig",
    "ForwardEmbedder",
    "ForwardModel",
    "ForwardDynamicExtender",
    "Node2VecConfig",
    "Node2VecEmbedder",
    "Node2VecModel",
    "Node2VecDynamicExtender",
    "TupleEmbedding",
    "embedding_drift",
    "is_stable_extension",
    # data model
    "Database",
    "Fact",
    "Schema",
    "RelationSchema",
    "ForeignKey",
    # compiled walk engine
    "CompiledDatabase",
    "WalkEngine",
    # datasets
    "Dataset",
    "load_dataset",
    "list_datasets",
    "register_dataset",
    # ingestion layer
    "IngestResult",
    "ingest_path",
    "ingest_csv_dir",
    "ingest_sqlite",
    "export_csv_dir",
    "export_sqlite",
    "register_ingested",
    "stream_table",
    # serving layer
    "ChangeFeed",
    "EmbeddingService",
    "EmbeddingStore",
]

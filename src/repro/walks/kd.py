"""Expected Kernel Distance between walk-destination distributions.

Equation (2) of the paper::

    KD(d_{s,f}[A], d_{s,f'}[A]) = E[κ_A(X, Y)],   X ~ d_{s,f}[A], Y ~ d_{s,f'}[A]

with the two destination values drawn independently.  Despite the name used
in the paper this is an expected *similarity* (larger means more similar).
"""

from __future__ import annotations

from repro.kernels.base import Kernel
from repro.walks.random_walks import AttributeDistribution


def expected_kernel_distance(
    dist_a: AttributeDistribution | None,
    dist_b: AttributeDistribution | None,
    kernel: Kernel,
) -> float | None:
    """KD between two destination-attribute distributions.

    Returns None when either distribution does not exist (no walk reaches a
    non-null value), mirroring the paper's convention that such pairs are not
    considered by FoRWaRD.
    """
    if dist_a is None or dist_b is None:
        return None
    return kernel.expected_similarity(
        dist_a.values, dist_a.probabilities, dist_b.values, dist_b.probabilities
    )

"""Foreign-key random walks (Section V-A of the paper).

A *walk scheme* is a sequence of foreign-key steps, each traversed either
forward (from the referencing relation to the referenced one) or backward.
A *walk* instantiates a scheme with concrete facts.  This package enumerates
walk schemes, samples random walks, computes exact destination distributions
by breadth-first propagation, and evaluates the Expected Kernel Distance
(Equation (2)) between destination-attribute distributions.
"""

from repro.walks.schemes import (
    Direction,
    WalkScheme,
    WalkStep,
    enumerate_walk_schemes,
    walk_targets,
)
from repro.walks.random_walks import (
    AttributeDistribution,
    DestinationDistribution,
    RandomWalker,
    attribute_distribution,
    destination_distribution,
    sample_walk,
)
from repro.walks.kd import expected_kernel_distance

__all__ = [
    "Direction",
    "WalkScheme",
    "WalkStep",
    "enumerate_walk_schemes",
    "walk_targets",
    "AttributeDistribution",
    "DestinationDistribution",
    "RandomWalker",
    "attribute_distribution",
    "destination_distribution",
    "sample_walk",
    "expected_kernel_distance",
]

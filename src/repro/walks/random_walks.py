"""Random walks over database facts and their destination distributions.

Given a start fact ``f`` and a walk scheme ``s``, the paper defines the
distribution ``W(f, s)`` over walks obtained by repeatedly selecting the next
valid fact uniformly at random, and the random variable ``d_{f,s}`` mapping a
walk to its destination fact.  The destination distribution can be computed
exactly by breadth-first propagation along the scheme (Section V-A); this is
what :func:`destination_distribution` does.  Sampling individual walks
(:func:`sample_walk`, :class:`RandomWalker`) is used by the stochastic
training objective (Equation (5)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.db.database import Database, Fact
from repro.utils.rng import ensure_rng
from repro.walks.schemes import Direction, WalkScheme, WalkStep

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> walks)
    from repro.engine import WalkEngine


@dataclass(frozen=True)
class DestinationDistribution:
    """The exact distribution of ``d_{f,s}`` over destination facts."""

    scheme: WalkScheme
    facts: tuple[Fact, ...]
    probabilities: np.ndarray

    def __post_init__(self) -> None:
        probs = np.asarray(self.probabilities, dtype=np.float64)
        object.__setattr__(self, "probabilities", probs)
        if len(self.facts) != probs.shape[0]:
            raise ValueError("facts and probabilities must have the same length")

    @property
    def is_empty(self) -> bool:
        return len(self.facts) == 0

    def support(self) -> tuple[Fact, ...]:
        return self.facts

    def probability_of(self, fact: Fact) -> float:
        """``Pr(d_{f,s} = fact)``, zero when the fact is not in the support."""
        for candidate, prob in zip(self.facts, self.probabilities):
            if candidate.fact_id == fact.fact_id:
                return float(prob)
        return 0.0


@dataclass(frozen=True)
class AttributeDistribution:
    """The distribution of ``d_{f,s}[A]`` over non-null attribute values.

    Following the paper's convention, the distribution is the posterior given
    ``d_{f,s}[A] ≠ ⊥``; when every destination has a null in ``A`` the
    distribution does not exist and callers receive ``None`` instead.
    """

    scheme: WalkScheme
    attribute: str
    values: tuple[Any, ...]
    probabilities: np.ndarray

    def __post_init__(self) -> None:
        probs = np.asarray(self.probabilities, dtype=np.float64)
        object.__setattr__(self, "probabilities", probs)
        if len(self.values) != probs.shape[0]:
            raise ValueError("values and probabilities must have the same length")

    def probability_of(self, value: Any) -> float:
        total = 0.0
        for candidate, prob in zip(self.values, self.probabilities):
            if candidate == value:
                total += float(prob)
        return total


def _step_candidates(db: Database, fact: Fact, step: WalkStep) -> tuple[Fact, ...]:
    """The set ``{g ∈ R_k | g[B_k] = fact[A_{k-1}]}`` for one walk step."""
    if step.direction is Direction.FORWARD:
        target = db.referenced_fact(fact, step.foreign_key)
        return (target,) if target is not None else ()
    return db.referencing_facts(fact, step.foreign_key)


def destination_distribution(
    db: Database, fact: Fact, scheme: WalkScheme
) -> DestinationDistribution:
    """Exact destination distribution of random walks with ``scheme`` from ``fact``.

    Walk prefixes that reach a fact with no valid continuation are dropped
    and the remaining mass is renormalised; if no complete walk exists the
    returned distribution is empty.
    """
    if fact.relation != scheme.start_relation:
        raise ValueError(
            f"fact is from relation {fact.relation!r} but scheme starts at "
            f"{scheme.start_relation!r}"
        )
    current: dict[int, tuple[Fact, float]] = {fact.fact_id: (fact, 1.0)}
    for step in scheme.steps:
        upcoming: dict[int, tuple[Fact, float]] = {}
        for current_fact, mass in current.values():
            candidates = _step_candidates(db, current_fact, step)
            if not candidates:
                continue
            share = mass / len(candidates)
            for candidate in candidates:
                existing = upcoming.get(candidate.fact_id)
                if existing is None:
                    upcoming[candidate.fact_id] = (candidate, share)
                else:
                    upcoming[candidate.fact_id] = (candidate, existing[1] + share)
        current = upcoming
        if not current:
            break
    if not current:
        return DestinationDistribution(scheme, (), np.zeros(0))
    facts = tuple(entry[0] for entry in current.values())
    probs = np.array([entry[1] for entry in current.values()], dtype=np.float64)
    probs = probs / probs.sum()
    return DestinationDistribution(scheme, facts, probs)


def attribute_distribution(
    db: Database, fact: Fact, scheme: WalkScheme, attribute: str
) -> AttributeDistribution | None:
    """The distribution of ``d_{f,s}[A]``, or None when it does not exist."""
    destinations = destination_distribution(db, fact, scheme)
    if destinations.is_empty:
        return None
    value_mass: dict[Any, float] = {}
    for destination, prob in zip(destinations.facts, destinations.probabilities):
        value = destination[attribute]
        if value is None:
            continue
        value_mass[value] = value_mass.get(value, 0.0) + float(prob)
    if not value_mass:
        return None
    values = tuple(value_mass.keys())
    probs = np.array([value_mass[v] for v in values], dtype=np.float64)
    probs = probs / probs.sum()
    return AttributeDistribution(scheme, attribute, values, probs)


def sample_walk(
    db: Database,
    fact: Fact,
    scheme: WalkScheme,
    rng: int | np.random.Generator | None = None,
) -> list[Fact] | None:
    """Sample one walk with ``scheme`` from ``fact``; None if it dead-ends."""
    generator = ensure_rng(rng)
    walk = [fact]
    current = fact
    for step in scheme.steps:
        candidates = _step_candidates(db, current, step)
        if not candidates:
            return None
        current = candidates[int(generator.integers(len(candidates)))]
        walk.append(current)
    return walk


class RandomWalker:
    """Stateful sampler of walk destinations, with per-(fact, scheme) caching.

    The FoRWaRD training loop draws many destination samples for the same
    (fact, scheme) pairs; caching the exact destination distribution once and
    sampling from it afterwards is equivalent to sampling fresh walks but far
    cheaper on databases with high-degree backward steps.

    Since the compiled walk engine (:mod:`repro.engine`) landed, the walker
    is a thin compatibility façade: distributions are computed by the engine
    (batched sparse propagation, shared across all facts of a relation) and
    only wrapped into the reference dataclasses here.  Pass ``engine=None``
    (the default) to have one compiled lazily on first use.

    Cache entries are keyed by the *value* of the scheme, not by ``id()`` —
    schemes are frozen dataclasses, and two structurally equal schemes must
    share one cached distribution (``id()`` can even be reused after garbage
    collection, which would silently return a wrong distribution).
    """

    def __init__(
        self,
        db: Database,
        rng: int | np.random.Generator | None = None,
        engine: "WalkEngine | None" = None,
    ):
        self.db = db
        self.rng = ensure_rng(rng)
        self._engine = engine
        self._cache: dict[tuple[int, WalkScheme], DestinationDistribution] = {}

    @property
    def engine(self) -> "WalkEngine":
        """The backing walk engine, compiled lazily from the database."""
        if self._engine is None:
            from repro.engine import WalkEngine

            self._engine = WalkEngine(self.db)
        return self._engine

    def destination_distribution(self, fact: Fact, scheme: WalkScheme) -> DestinationDistribution:
        key = (fact.fact_id, scheme)
        cached = self._cache.get(key)
        if cached is None:
            cached = self.engine.destination_distribution(fact, scheme)
            self._cache[key] = cached
        return cached

    def attribute_distribution(
        self, fact: Fact, scheme: WalkScheme, attribute: str
    ) -> AttributeDistribution | None:
        return self.engine.attribute_distribution(fact, scheme, attribute)

    def sample_destination(self, fact: Fact, scheme: WalkScheme) -> Fact | None:
        """Sample the destination of one random walk (None if no walk exists)."""
        destinations = self.destination_distribution(fact, scheme)
        if destinations.is_empty:
            return None
        index = int(self.rng.choice(len(destinations.facts), p=destinations.probabilities))
        return destinations.facts[index]

    def sample_destination_value(
        self, fact: Fact, scheme: WalkScheme, attribute: str
    ) -> Any | None:
        """Sample a non-null destination value ``g[A]`` (None if none exists)."""
        dist = self.attribute_distribution(fact, scheme, attribute)
        if dist is None:
            return None
        index = int(self.rng.choice(len(dist.values), p=dist.probabilities))
        return dist.values[index]

    def clear_cache(self) -> None:
        """Drop cached distributions and re-sync the engine with the database."""
        self._cache.clear()
        if self._engine is not None:
            self._engine.refresh()

"""Walk schemes: sequences of forward/backward foreign-key steps.

A walk scheme (Section V-A, Equation (1)) has the form::

    R0[A0]—R1[B1], R1[A1]—R2[B2], ..., R_{l-1}[A_{l-1}]—R_l[B_l]

where each step corresponds to a foreign key traversed either *forward*
(the step's source relation references the step's target relation) or
*backward* (the target relation references the source).  Walk schemes of
length zero exist for every relation and simply end at the start fact.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.db.schema import Attribute, ForeignKey, Schema


class Direction(enum.Enum):
    """Traversal direction of a foreign key inside a walk step."""

    FORWARD = "forward"
    """From the referencing relation (FK source) to the referenced relation."""

    BACKWARD = "backward"
    """From the referenced relation (FK target) back to referencing facts."""


@dataclass(frozen=True)
class WalkStep:
    """One step of a walk scheme: a foreign key plus a traversal direction."""

    foreign_key: ForeignKey
    direction: Direction

    @property
    def from_relation(self) -> str:
        if self.direction is Direction.FORWARD:
            return self.foreign_key.source
        return self.foreign_key.target

    @property
    def to_relation(self) -> str:
        if self.direction is Direction.FORWARD:
            return self.foreign_key.target
        return self.foreign_key.source

    @property
    def from_attrs(self) -> tuple[str, ...]:
        """The attributes ``A_{k-1}`` of the step's source relation."""
        if self.direction is Direction.FORWARD:
            return self.foreign_key.source_attrs
        return self.foreign_key.target_attrs

    @property
    def to_attrs(self) -> tuple[str, ...]:
        """The attributes ``B_k`` of the step's destination relation."""
        if self.direction is Direction.FORWARD:
            return self.foreign_key.target_attrs
        return self.foreign_key.source_attrs

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        left = f"{self.from_relation}[{','.join(self.from_attrs)}]"
        right = f"{self.to_relation}[{','.join(self.to_attrs)}]"
        return f"{left}—{right}"


@dataclass(frozen=True)
class WalkScheme:
    """A walk scheme: a start relation and a sequence of steps."""

    start_relation: str
    steps: tuple[WalkStep, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "steps", tuple(self.steps))
        previous = self.start_relation
        for step in self.steps:
            if step.from_relation != previous:
                raise ValueError(
                    f"walk scheme is not connected: step {step} does not start "
                    f"at {previous!r}"
                )
            previous = step.to_relation
        # schemes key the engine's per-scheme caches, so their hash is taken
        # on every lookup of the batched hot path; precompute the same value
        # the generated frozen-dataclass hash would produce (equality is
        # untouched, so hash/eq consistency is preserved)
        object.__setattr__(self, "_hash", hash((self.start_relation, self.steps)))

    def __hash__(self) -> int:
        return self._hash

    @property
    def length(self) -> int:
        return len(self.steps)

    @property
    def end_relation(self) -> str:
        if not self.steps:
            return self.start_relation
        return self.steps[-1].to_relation

    def extend(self, step: WalkStep) -> "WalkScheme":
        """A new scheme with ``step`` appended."""
        return WalkScheme(self.start_relation, self.steps + (step,))

    def __iter__(self) -> Iterator[WalkStep]:
        return iter(self.steps)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if not self.steps:
            return f"{self.start_relation}[] (length 0)"
        return ", ".join(str(step) for step in self.steps)


def enumerate_walk_schemes(
    schema: Schema,
    start_relation: str,
    max_length: int,
    include_zero_length: bool = True,
) -> list[WalkScheme]:
    """All walk schemes of length at most ``max_length`` starting at a relation.

    This reproduces the enumeration illustrated in Figure 4 of the paper
    (all schemes of length up to three from the ACTORS relation).  Schemes
    may revisit relations and traverse the same foreign key repeatedly in
    alternating directions, exactly as in the figure.
    """
    schema.relation(start_relation)
    if max_length < 0:
        raise ValueError("max_length must be non-negative")
    schemes: list[WalkScheme] = []
    root = WalkScheme(start_relation)
    if include_zero_length:
        schemes.append(root)
    frontier = [root]
    for _ in range(max_length):
        next_frontier: list[WalkScheme] = []
        for scheme in frontier:
            for step in _steps_from(schema, scheme.end_relation):
                extended = scheme.extend(step)
                schemes.append(extended)
                next_frontier.append(extended)
        frontier = next_frontier
    return schemes


def _steps_from(schema: Schema, relation: str) -> Iterator[WalkStep]:
    """All single steps leaving ``relation`` (forward and backward FKs)."""
    for fk in schema.foreign_keys_from(relation):
        yield WalkStep(fk, Direction.FORWARD)
    for fk in schema.foreign_keys_to(relation):
        yield WalkStep(fk, Direction.BACKWARD)


def walk_targets(
    schema: Schema,
    start_relation: str,
    max_length: int,
) -> list[tuple[WalkScheme, Attribute]]:
    """The set ``T(R, ℓmax)`` of Section V-C.

    All pairs ``(s, A)`` where ``s`` is a walk scheme of length at most
    ``max_length`` starting at ``start_relation`` and ``A`` is an attribute of
    the destination relation of ``s`` that is not involved in any foreign-key
    constraint.
    """
    targets: list[tuple[WalkScheme, Attribute]] = []
    for scheme in enumerate_walk_schemes(schema, start_relation, max_length):
        for attr in schema.non_fk_attributes(scheme.end_relation):
            targets.append((scheme, attr))
    return targets

"""Dynamic-experiment protocol (Section VI-E-1 of the paper).

The partitioning procedure splits a database into "old" facts and "new"
facts by stratified sampling of the prediction relation followed by
cascading deletion; the replay helpers re-insert the new facts either
one-by-one (each prediction fact together with its cascade batch) or all at
once.
"""

from repro.dynamic.partition import Partition, partition_dataset
from repro.dynamic.replay import replay_all_at_once, replay_one_by_one

__all__ = [
    "Partition",
    "partition_dataset",
    "replay_all_at_once",
    "replay_one_by_one",
]

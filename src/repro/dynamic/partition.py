"""Stratified cascade-delete partitioning into old and new facts.

The paper's protocol (Section VI-E-1):

1. stratified-split the prediction relation into old and new tuples
   according to the requested ratio (class proportions preserved);
2. remove the new prediction tuples one at a time, in random order, each
   with an "On Delete Cascade" deletion, so that data referenced only by the
   removed tuple disappears with it;
3. everything still in the database forms ``F_old``; the deleted facts form
   ``F_new``, grouped into one batch per removed prediction tuple.

Re-inserting the batches in inverse deletion order then simulates the
arrival of semantically related new data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.datasets.base import Dataset
from repro.db.database import Database, Fact
from repro.utils.rng import ensure_rng


@dataclass
class Partition:
    """Result of the cascade-delete partitioning.

    ``db`` is the database containing only the old facts.  ``new_batches``
    holds, in deletion order, one batch per removed prediction tuple; each
    batch starts with the prediction fact and continues with the facts
    removed by its cascade.  Replaying the batches in *reverse* order (see
    :mod:`repro.dynamic.replay`) restores the original database.
    """

    db: Database
    prediction_relation: str
    new_batches: list[list[Fact]]
    old_prediction_ids: tuple[int, ...]
    new_prediction_ids: tuple[int, ...]
    ratio_new: float

    @property
    def new_facts(self) -> list[Fact]:
        """All removed facts (prediction facts and their cascades)."""
        return [fact for batch in self.new_batches for fact in batch]

    @property
    def num_new_prediction_facts(self) -> int:
        return len(self.new_prediction_ids)

    @property
    def num_old_prediction_facts(self) -> int:
        return len(self.old_prediction_ids)


def _stratified_choice(
    labels: Mapping[int, Any], ratio_new: float, rng: np.random.Generator
) -> tuple[list[int], list[int]]:
    """Split fact ids into (old, new) with class proportions preserved."""
    by_class: dict[Any, list[int]] = {}
    for fact_id, label in labels.items():
        by_class.setdefault(label, []).append(fact_id)
    old_ids: list[int] = []
    new_ids: list[int] = []
    for members in by_class.values():
        members = list(members)
        rng.shuffle(members)
        cut = int(round(len(members) * ratio_new))
        # Keep at least one old tuple per class when possible so the
        # downstream classifier sees every class during training.
        cut = min(cut, max(len(members) - 1, 0))
        new_ids.extend(members[:cut])
        old_ids.extend(members[cut:])
    return old_ids, new_ids


def partition_dataset(
    dataset: Dataset,
    ratio_new: float,
    rng: int | np.random.Generator | None = None,
    mask_prediction_attribute: bool = True,
) -> Partition:
    """Partition a dataset's database into old data and new arrivals.

    The returned partition operates on a *copy* of the dataset's database
    (masked when ``mask_prediction_attribute`` is true, which is what the
    embedding algorithms must see); the dataset itself is never modified.
    """
    if not 0.0 < ratio_new < 1.0:
        raise ValueError("ratio_new must be strictly between 0 and 1")
    generator = ensure_rng(rng)
    db = dataset.masked_database() if mask_prediction_attribute else dataset.db.copy()
    labels = dataset.labels()

    old_ids, new_ids = _stratified_choice(labels, ratio_new, generator)
    order = list(new_ids)
    generator.shuffle(order)

    batches: list[list[Fact]] = []
    for fact_id in order:
        seed_fact = db.fact(fact_id)
        removed = db.delete_cascade(seed_fact)
        batches.append(removed)

    return Partition(
        db=db,
        prediction_relation=dataset.prediction_relation,
        new_batches=batches,
        old_prediction_ids=tuple(old_ids),
        new_prediction_ids=tuple(order),
        ratio_new=ratio_new,
    )

"""Replaying the arrival of new facts after partitioning.

Two modes, matching Section VI-E of the paper:

* **one-by-one** — the deleted prediction tuples are re-inserted in the
  inverse order of their deletion, each together with the facts removed by
  its cascade; after every batch a callback embeds the freshly inserted
  facts before the next batch arrives;
* **all-at-once** — every removed fact is re-inserted first, then a single
  callback embeds all of them together.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.db.database import Database, Fact
from repro.dynamic.partition import Partition

BatchCallback = Callable[[Sequence[Fact]], None]


def _reinsert_batch(db: Database, batch: Sequence[Fact]) -> list[Fact]:
    """Re-insert one cascade batch; referenced facts go in before referencing ones.

    The batch is stored in deletion order (prediction fact first, cascaded
    facts afterwards); re-inserting in reverse order restores parents before
    children, though the database tolerates either order.
    """
    restored: list[Fact] = []
    for fact in reversed(list(batch)):
        restored.append(db.reinsert(fact))
    return restored


def replay_one_by_one(
    partition: Partition,
    on_batch: BatchCallback,
) -> list[list[Fact]]:
    """Re-insert batches one at a time, invoking ``on_batch`` after each.

    Returns the list of re-inserted batches in arrival order (the inverse of
    deletion order).  ``on_batch`` receives the facts of the batch just
    inserted and is expected to extend the embedding to them.
    """
    arrived: list[list[Fact]] = []
    for batch in reversed(partition.new_batches):
        restored = _reinsert_batch(partition.db, batch)
        on_batch(restored)
        arrived.append(restored)
    return arrived


def replay_all_at_once(
    partition: Partition,
    on_batch: BatchCallback,
) -> list[Fact]:
    """Re-insert every removed fact, then invoke ``on_batch`` once with all of them."""
    restored: list[Fact] = []
    for batch in reversed(partition.new_batches):
        restored.extend(_reinsert_batch(partition.db, batch))
    on_batch(restored)
    return restored

"""Synthetic World dataset (MySQL "world" sample database shape).

Paper shape (Table I): 3 relations, 5 411 tuples, 24 attributes, 239
samples, 7 continent classes, prediction relation COUNTRY with attribute
``continent``.

Signal placement: the continent correlates with the country's region, its
demographic/economic numbers, and the languages spoken in it (reachable
through the backward FK from COUNTRY_LANGUAGE).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, scaled
from repro.db.database import Database
from repro.db.schema import Attribute, AttributeType, ForeignKey, RelationSchema, Schema
from repro.utils.rng import ensure_rng

CONTINENTS = [
    "Asia",
    "Europe",
    "North America",
    "Africa",
    "Oceania",
    "Antarctica",
    "South America",
]

# Regions and language families associated with each continent (signal).
REGIONS = {continent: [f"{continent} Region {i}" for i in range(1, 5)] for continent in CONTINENTS}
LANGUAGE_FAMILIES = {
    continent: [f"{continent.split()[0]}Lang{i}" for i in range(1, 7)] for continent in CONTINENTS
}
GOVERNMENT_FORMS = ["Republic", "Monarchy", "Federation", "Territory", "Commonwealth"]


def world_schema() -> Schema:
    country = RelationSchema(
        "COUNTRY",
        [
            Attribute("code", AttributeType.IDENTIFIER),
            Attribute("name", AttributeType.TEXT),
            Attribute("continent", AttributeType.CATEGORICAL),
            Attribute("region", AttributeType.CATEGORICAL),
            Attribute("surface_area", AttributeType.NUMERIC),
            Attribute("population", AttributeType.NUMERIC),
            Attribute("gnp", AttributeType.NUMERIC),
            Attribute("life_expectancy", AttributeType.NUMERIC),
            Attribute("government_form", AttributeType.CATEGORICAL),
        ],
        key=["code"],
    )
    city = RelationSchema(
        "CITY",
        [
            Attribute("city_id", AttributeType.IDENTIFIER),
            Attribute("country_code", AttributeType.IDENTIFIER),
            Attribute("name", AttributeType.TEXT),
            Attribute("district", AttributeType.CATEGORICAL),
            Attribute("population", AttributeType.NUMERIC),
        ],
        key=["city_id"],
    )
    country_language = RelationSchema(
        "COUNTRY_LANGUAGE",
        [
            Attribute("cl_id", AttributeType.IDENTIFIER),
            Attribute("country_code", AttributeType.IDENTIFIER),
            Attribute("language", AttributeType.CATEGORICAL),
            Attribute("is_official", AttributeType.CATEGORICAL),
            Attribute("percentage", AttributeType.NUMERIC),
        ],
        key=["cl_id"],
    )
    return Schema(
        [country, city, country_language],
        [
            ForeignKey("CITY", ("country_code",), "COUNTRY", ("code",)),
            ForeignKey("COUNTRY_LANGUAGE", ("country_code",), "COUNTRY", ("code",)),
        ],
    )


def make_world(scale: float = 1.0, seed: int | None = 0) -> Dataset:
    """Generate the synthetic World dataset at the given scale."""
    rng = ensure_rng(seed)
    num_countries = scaled(239, scale, minimum=28)
    cities_per_country = 17 if scale >= 1.0 else max(3, int(17 * min(scale * 2, 1.0)))
    languages_per_country = 4 if scale >= 1.0 else 2

    db = Database(world_schema())
    city_counter = 0
    language_counter = 0
    # Keep Antarctica rare, like the original dataset.
    continent_weights = np.array([0.22, 0.22, 0.16, 0.24, 0.10, 0.01, 0.05])
    continent_weights = continent_weights / continent_weights.sum()

    for i in range(num_countries):
        code = f"C{i:03d}"
        continent = CONTINENTS[int(rng.choice(len(CONTINENTS), p=continent_weights))]
        index = CONTINENTS.index(continent)
        region = (
            REGIONS[continent][int(rng.integers(len(REGIONS[continent])))]
            if rng.random() < 0.9
            else REGIONS[CONTINENTS[int(rng.integers(len(CONTINENTS)))]][0]
        )
        db.insert(
            "COUNTRY",
            {
                "code": code,
                "name": f"Country {i}",
                "continent": continent,
                "region": region,
                "surface_area": round(float(rng.lognormal(11 + 0.2 * index, 1.0)), 1),
                "population": int(rng.lognormal(15 + 0.1 * index, 1.2)),
                "gnp": round(float(rng.lognormal(9 + 0.3 * (index % 3), 1.0)), 1),
                "life_expectancy": round(float(np.clip(rng.normal(62 + 3 * index % 20, 5), 40, 85)), 1),
                "government_form": GOVERNMENT_FORMS[int(rng.integers(len(GOVERNMENT_FORMS)))],
            },
        )
        for _ in range(cities_per_country):
            db.insert(
                "CITY",
                {
                    "city_id": f"ct{city_counter:05d}",
                    "country_code": code,
                    "name": f"City {city_counter}",
                    "district": f"{continent} District {int(rng.integers(6))}",
                    "population": int(rng.lognormal(11, 1.3)),
                },
            )
            city_counter += 1
        families = LANGUAGE_FAMILIES[continent]
        for j in range(languages_per_country):
            if rng.random() < 0.85:
                language = families[int(rng.integers(len(families)))]
            else:
                other = LANGUAGE_FAMILIES[CONTINENTS[int(rng.integers(len(CONTINENTS)))]]
                language = other[int(rng.integers(len(other)))]
            db.insert(
                "COUNTRY_LANGUAGE",
                {
                    "cl_id": f"cl{language_counter:05d}",
                    "country_code": code,
                    "language": language,
                    "is_official": "T" if j == 0 else ("T" if rng.random() < 0.2 else "F"),
                    "percentage": round(float(rng.uniform(1, 100)), 1),
                },
            )
            language_counter += 1

    return Dataset(
        name="world",
        db=db,
        prediction_relation="COUNTRY",
        prediction_attribute="continent",
        description="Synthetic World dataset; predict a country's continent.",
    )

"""Benchmark datasets.

The paper evaluates on five public multi-relational datasets (Hepatitis,
Mondial, Genes, Mutagenesis, World; Table I) plus a running movie example
(Figure 2).  The public datasets are not available offline, so this package
generates *synthetic* databases that reproduce each dataset's schema shape
(relation count, foreign-key topology, attribute counts and types, tuple
counts, class balance) and plant the class signal in attributes that are
reachable only through foreign-key walks — the property the paper's
experiments rely on.  See the "note on the datasets" in
``docs/REPRODUCTION.md`` for the substitution rationale.  External
corpora ingested through :mod:`repro.io` join the same registry via
:func:`register_dataset` / :func:`repro.io.register_ingested`.
"""

from repro.datasets.base import Dataset
from repro.datasets.movies import make_movies
from repro.datasets.hepatitis import make_hepatitis
from repro.datasets.genes import make_genes
from repro.datasets.mutagenesis import make_mutagenesis
from repro.datasets.world import make_world
from repro.datasets.mondial import make_mondial
from repro.datasets.registry import (
    DATASET_BUILDERS,
    list_datasets,
    load_dataset,
    register_dataset,
    unregister_dataset,
)
from repro.datasets.summary import dataset_structure_rows, format_table_i

__all__ = [
    "Dataset",
    "make_movies",
    "make_hepatitis",
    "make_genes",
    "make_mutagenesis",
    "make_world",
    "make_mondial",
    "DATASET_BUILDERS",
    "list_datasets",
    "load_dataset",
    "register_dataset",
    "unregister_dataset",
    "dataset_structure_rows",
    "format_table_i",
]

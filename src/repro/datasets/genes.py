"""Synthetic Genes dataset (KDD Cup 2001 shape).

Paper shape (Table I): 3 relations, 6 063 tuples, 15 attributes, 862
samples, 15 localization classes, prediction relation CLASSIFICATION with
attribute ``localization``.

Signal placement: the localization of a gene is driven by its function
class and motif (stored in the GENE relation, reachable through one forward
FK step from CLASSIFICATION... backwards) and by homophily of interactions
(genes interacting with each other tend to share a localization), so an
embedding must aggregate FK-reachable context to predict well.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, scaled
from repro.db.database import Database
from repro.db.schema import Attribute, AttributeType, ForeignKey, RelationSchema, Schema
from repro.utils.rng import ensure_rng

LOCALIZATIONS = [
    "nucleus",
    "cytoplasm",
    "mitochondria",
    "golgi",
    "er",
    "vacuole",
    "peroxisome",
    "plasma_membrane",
    "cell_wall",
    "ribosome",
    "cytoskeleton",
    "endosome",
    "extracellular",
    "lipid_particle",
    "nucleolus",
]

FUNCTIONS = [
    "transcription",
    "metabolism",
    "transport",
    "signalling",
    "protein_synthesis",
    "cell_cycle",
    "stress_response",
    "structural",
]

MOTIFS = [f"motif_{i:02d}" for i in range(20)]
PHENOTYPES = ["viable", "lethal", "slow_growth", "sensitive", "resistant"]
CHROMOSOMES = [str(i) for i in range(1, 17)]
INTERACTION_TYPES = ["physical", "genetic"]


def genes_schema() -> Schema:
    classification = RelationSchema(
        "CLASSIFICATION",
        [
            Attribute("gene_id", AttributeType.IDENTIFIER),
            Attribute("localization", AttributeType.CATEGORICAL),
        ],
        key=["gene_id"],
    )
    gene = RelationSchema(
        "GENE",
        [
            Attribute("record_id", AttributeType.IDENTIFIER),
            Attribute("gene_id", AttributeType.IDENTIFIER),
            Attribute("essential", AttributeType.CATEGORICAL),
            Attribute("chromosome", AttributeType.CATEGORICAL),
            Attribute("motif", AttributeType.CATEGORICAL),
            Attribute("function_class", AttributeType.CATEGORICAL),
            Attribute("phenotype", AttributeType.CATEGORICAL),
        ],
        key=["record_id"],
    )
    interaction = RelationSchema(
        "INTERACTION",
        [
            Attribute("interaction_id", AttributeType.IDENTIFIER),
            Attribute("gene1", AttributeType.IDENTIFIER),
            Attribute("gene2", AttributeType.IDENTIFIER),
            Attribute("interaction_type", AttributeType.CATEGORICAL),
            Attribute("expression_corr", AttributeType.NUMERIC),
        ],
        key=["interaction_id"],
    )
    return Schema(
        [classification, gene, interaction],
        [
            ForeignKey("GENE", ("gene_id",), "CLASSIFICATION", ("gene_id",)),
            ForeignKey("INTERACTION", ("gene1",), "CLASSIFICATION", ("gene_id",)),
            ForeignKey("INTERACTION", ("gene2",), "CLASSIFICATION", ("gene_id",)),
        ],
    )


def make_genes(scale: float = 1.0, seed: int | None = 0) -> Dataset:
    """Generate the synthetic Genes dataset at the given scale."""
    rng = ensure_rng(seed)
    num_genes = scaled(862, scale, minimum=30)
    records_per_gene = 2
    num_interactions = scaled(3400, scale, minimum=40)

    db = Database(genes_schema())

    # Latent assignment: localization is a noisy function of function class
    # and motif; those observed attributes go into GENE records.
    localization_of: dict[str, str] = {}
    function_of: dict[str, str] = {}
    motif_of: dict[str, str] = {}
    for i in range(num_genes):
        gene_id = f"G{i:05d}"
        localization = LOCALIZATIONS[int(rng.integers(len(LOCALIZATIONS)))]
        localization_of[gene_id] = localization
        loc_index = LOCALIZATIONS.index(localization)
        # Function and motif carry the signal (85% consistent, 15% noise).
        if rng.random() < 0.85:
            function_of[gene_id] = FUNCTIONS[loc_index % len(FUNCTIONS)]
        else:
            function_of[gene_id] = FUNCTIONS[int(rng.integers(len(FUNCTIONS)))]
        if rng.random() < 0.85:
            motif_of[gene_id] = MOTIFS[loc_index % len(MOTIFS)]
        else:
            motif_of[gene_id] = MOTIFS[int(rng.integers(len(MOTIFS)))]
        db.insert("CLASSIFICATION", {"gene_id": gene_id, "localization": localization})

    record_counter = 0
    for gene_id in localization_of:
        for _ in range(records_per_gene):
            db.insert(
                "GENE",
                {
                    "record_id": f"R{record_counter:06d}",
                    "gene_id": gene_id,
                    "essential": "essential" if rng.random() < 0.3 else "non_essential",
                    "chromosome": CHROMOSOMES[int(rng.integers(len(CHROMOSOMES)))],
                    "motif": motif_of[gene_id],
                    "function_class": function_of[gene_id],
                    "phenotype": PHENOTYPES[int(rng.integers(len(PHENOTYPES)))],
                },
            )
            record_counter += 1

    gene_ids = list(localization_of.keys())
    by_localization: dict[str, list[str]] = {}
    for gene_id, localization in localization_of.items():
        by_localization.setdefault(localization, []).append(gene_id)
    for i in range(num_interactions):
        first = gene_ids[int(rng.integers(len(gene_ids)))]
        # Homophily: 70% of interactions connect genes with the same localization.
        same_pool = by_localization[localization_of[first]]
        if rng.random() < 0.7 and len(same_pool) > 1:
            second = same_pool[int(rng.integers(len(same_pool)))]
            while second == first:
                second = same_pool[int(rng.integers(len(same_pool)))]
            correlation = float(np.clip(rng.normal(0.6, 0.2), -1.0, 1.0))
        else:
            second = gene_ids[int(rng.integers(len(gene_ids)))]
            while second == first:
                second = gene_ids[int(rng.integers(len(gene_ids)))]
            correlation = float(np.clip(rng.normal(0.0, 0.3), -1.0, 1.0))
        db.insert(
            "INTERACTION",
            {
                "interaction_id": f"I{i:06d}",
                "gene1": first,
                "gene2": second,
                "interaction_type": INTERACTION_TYPES[int(rng.integers(2))],
                "expression_corr": round(correlation, 3),
            },
        )

    return Dataset(
        name="genes",
        db=db,
        prediction_relation="CLASSIFICATION",
        prediction_attribute="localization",
        description="Synthetic Genes dataset (KDD Cup 2001 shape); predict gene localization.",
    )

"""Synthetic Mutagenesis dataset (Debnath et al. 1991 shape).

Paper shape (Table I): 3 relations, 10 324 tuples, 14 attributes, 188
samples, binary ``mutagenic`` label (122 positive / 63 negative),
prediction relation MOLECULE.

Signal placement: mutagenicity depends on two numeric chemistry attributes
of the molecule (logp, lumo) and on the element composition of its atoms
(nitro-group-like patterns), so both direct attributes and FK-reachable
atom/bond structure carry signal.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, scaled
from repro.db.database import Database
from repro.db.schema import Attribute, AttributeType, ForeignKey, RelationSchema, Schema
from repro.utils.rng import ensure_rng

ELEMENTS = ["c", "h", "o", "n", "cl", "f"]
ATOM_TYPES = [str(t) for t in (1, 3, 10, 14, 22, 27, 35, 40)]
BOND_TYPES = ["1", "2", "3", "7"]


def mutagenesis_schema() -> Schema:
    molecule = RelationSchema(
        "MOLECULE",
        [
            Attribute("molecule_id", AttributeType.IDENTIFIER),
            Attribute("mutagenic", AttributeType.CATEGORICAL),
            Attribute("ind1", AttributeType.CATEGORICAL),
            Attribute("inda", AttributeType.CATEGORICAL),
            Attribute("logp", AttributeType.NUMERIC),
            Attribute("lumo", AttributeType.NUMERIC),
        ],
        key=["molecule_id"],
    )
    atom = RelationSchema(
        "ATOM",
        [
            Attribute("atom_id", AttributeType.IDENTIFIER),
            Attribute("molecule_id", AttributeType.IDENTIFIER),
            Attribute("element", AttributeType.CATEGORICAL),
            Attribute("atom_type", AttributeType.CATEGORICAL),
            Attribute("charge", AttributeType.NUMERIC),
        ],
        key=["atom_id"],
    )
    bond = RelationSchema(
        "BOND",
        [
            Attribute("bond_id", AttributeType.IDENTIFIER),
            Attribute("atom1", AttributeType.IDENTIFIER),
            Attribute("atom2", AttributeType.IDENTIFIER),
            Attribute("bond_type", AttributeType.CATEGORICAL),
        ],
        key=["bond_id"],
    )
    return Schema(
        [molecule, atom, bond],
        [
            ForeignKey("ATOM", ("molecule_id",), "MOLECULE", ("molecule_id",)),
            ForeignKey("BOND", ("atom1",), "ATOM", ("atom_id",)),
            ForeignKey("BOND", ("atom2",), "ATOM", ("atom_id",)),
        ],
    )


def make_mutagenesis(scale: float = 1.0, seed: int | None = 0) -> Dataset:
    """Generate the synthetic Mutagenesis dataset at the given scale."""
    rng = ensure_rng(seed)
    num_molecules = scaled(188, scale, minimum=24)
    atoms_per_molecule = 26 if scale >= 1.0 else max(6, int(26 * min(scale * 2, 1.0)))

    db = Database(mutagenesis_schema())
    atom_counter = 0
    bond_counter = 0
    for i in range(num_molecules):
        molecule_id = f"d{i:04d}"
        mutagenic = "yes" if rng.random() < 122 / 185 else "no"
        # Chemistry attributes correlate with the label.
        if mutagenic == "yes":
            logp = float(rng.normal(3.2, 0.8))
            lumo = float(rng.normal(-1.9, 0.4))
            nitrogen_fraction = 0.25
        else:
            logp = float(rng.normal(1.8, 0.8))
            lumo = float(rng.normal(-1.1, 0.4))
            nitrogen_fraction = 0.08
        db.insert(
            "MOLECULE",
            {
                "molecule_id": molecule_id,
                "mutagenic": mutagenic,
                "ind1": "1" if rng.random() < 0.5 else "0",
                "inda": "1" if rng.random() < 0.2 else "0",
                "logp": round(logp, 3),
                "lumo": round(lumo, 3),
            },
        )
        molecule_atoms: list[str] = []
        for _ in range(atoms_per_molecule):
            atom_id = f"a{atom_counter:06d}"
            atom_counter += 1
            if rng.random() < nitrogen_fraction:
                element = "n"
            else:
                element = ELEMENTS[int(rng.integers(len(ELEMENTS)))]
            db.insert(
                "ATOM",
                {
                    "atom_id": atom_id,
                    "molecule_id": molecule_id,
                    "element": element,
                    "atom_type": ATOM_TYPES[int(rng.integers(len(ATOM_TYPES)))],
                    "charge": round(float(rng.normal(0.0, 0.15)), 3),
                },
            )
            molecule_atoms.append(atom_id)
        # A ring-like bond structure within the molecule plus a few chords.
        for j in range(len(molecule_atoms)):
            first = molecule_atoms[j]
            second = molecule_atoms[(j + 1) % len(molecule_atoms)]
            db.insert(
                "BOND",
                {
                    "bond_id": f"b{bond_counter:06d}",
                    "atom1": first,
                    "atom2": second,
                    "bond_type": BOND_TYPES[int(rng.integers(len(BOND_TYPES)))],
                },
            )
            bond_counter += 1

    return Dataset(
        name="mutagenesis",
        db=db,
        prediction_relation="MOLECULE",
        prediction_attribute="mutagenic",
        description="Synthetic Mutagenesis dataset; predict molecule mutagenicity.",
    )

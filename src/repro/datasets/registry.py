"""Dataset registry: name-based access to all benchmark builders."""

from __future__ import annotations

from typing import Callable

from repro.datasets.base import Dataset
from repro.datasets.genes import make_genes
from repro.datasets.hepatitis import make_hepatitis
from repro.datasets.mondial import make_mondial
from repro.datasets.movies import make_movies
from repro.datasets.mutagenesis import make_mutagenesis
from repro.datasets.world import make_world

DatasetBuilder = Callable[..., Dataset]

DATASET_BUILDERS: dict[str, DatasetBuilder] = {
    "movies": make_movies,
    "hepatitis": make_hepatitis,
    "genes": make_genes,
    "mutagenesis": make_mutagenesis,
    "world": make_world,
    "mondial": make_mondial,
}

PAPER_DATASETS = ("hepatitis", "genes", "mutagenesis", "world", "mondial")
"""The five datasets of Table I, in the paper's order."""


def list_datasets() -> tuple[str, ...]:
    """Names of all available datasets."""
    return tuple(DATASET_BUILDERS.keys())


def load_dataset(name: str, scale: float = 1.0, seed: int | None = 0) -> Dataset:
    """Build a dataset by name.

    ``scale`` shrinks (or grows) the number of generated tuples, which the
    benchmark harness uses to keep CPU runtimes reasonable; ``seed`` makes
    generation reproducible.
    """
    try:
        builder = DATASET_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(DATASET_BUILDERS)}"
        ) from None
    return builder(scale=scale, seed=seed)

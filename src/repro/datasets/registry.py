"""Dataset registry: name-based access to bundled and registered builders.

Besides the six bundled generators, external databases brought in through
the ingestion layer (:mod:`repro.io`) can be registered at runtime with
:func:`register_dataset`; every consumer that resolves datasets by name —
the experiment drivers, the streaming replay CLI, the benchmark harness —
then accepts them like any bundled dataset.
"""

from __future__ import annotations

from typing import Callable

from repro.datasets.base import Dataset
from repro.datasets.genes import make_genes
from repro.datasets.hepatitis import make_hepatitis
from repro.datasets.mondial import make_mondial
from repro.datasets.movies import make_movies
from repro.datasets.mutagenesis import make_mutagenesis
from repro.datasets.world import make_world

DatasetBuilder = Callable[..., Dataset]

DATASET_BUILDERS: dict[str, DatasetBuilder] = {
    "movies": make_movies,
    "hepatitis": make_hepatitis,
    "genes": make_genes,
    "mutagenesis": make_mutagenesis,
    "world": make_world,
    "mondial": make_mondial,
}

BUNDLED_DATASETS = tuple(DATASET_BUILDERS)
"""The six bundled generators (never unregisterable)."""

PAPER_DATASETS = ("hepatitis", "genes", "mutagenesis", "world", "mondial")
"""The five datasets of Table I, in the paper's order."""


def list_datasets() -> tuple[str, ...]:
    """Names of all available datasets."""
    return tuple(DATASET_BUILDERS.keys())


def register_dataset(name: str, builder: DatasetBuilder, *, overwrite: bool = False) -> None:
    """Register a dataset builder under a name.

    ``builder`` must accept the registry calling convention
    ``builder(scale=..., seed=...)`` and return a
    :class:`~repro.datasets.base.Dataset` (builders backed by a fixed
    external corpus are free to ignore both arguments).  Registering over
    an existing name requires ``overwrite=True``; the bundled builders can
    never be overwritten.
    """
    if not name:
        raise ValueError("dataset name must be non-empty")
    if not callable(builder):
        raise TypeError(f"builder for {name!r} must be callable, got {builder!r}")
    if name in BUNDLED_DATASETS:
        raise ValueError(f"cannot overwrite the bundled dataset {name!r}")
    if name in DATASET_BUILDERS and not overwrite:
        raise ValueError(
            f"dataset {name!r} is already registered; pass overwrite=True to replace it"
        )
    DATASET_BUILDERS[name] = builder


def unregister_dataset(name: str) -> None:
    """Remove a registered dataset (bundled datasets cannot be removed)."""
    if name in BUNDLED_DATASETS:
        raise ValueError(f"cannot unregister the bundled dataset {name!r}")
    DATASET_BUILDERS.pop(name, None)


def load_dataset(name: str, scale: float = 1.0, seed: int | None = 0) -> Dataset:
    """Build a dataset by name.

    ``scale`` shrinks (or grows) the number of generated tuples, which the
    benchmark harness uses to keep CPU runtimes reasonable; ``seed`` makes
    generation reproducible.
    """
    try:
        builder = DATASET_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(DATASET_BUILDERS)}"
        ) from None
    return builder(scale=scale, seed=seed)

"""Synthetic Hepatitis dataset (ECML/PKDD 2002 Discovery Challenge shape).

Paper shape (Table I): 7 relations, 12 927 tuples, 26 attributes, 500
samples, binary ``type`` label (Hepatitis B vs. C, roughly 30/70),
prediction relation DISPAT.

Signal placement: the hepatitis type correlates with the biopsy findings
(BIO: fibrosis and activity grades) and with laboratory measurements (INDIS:
GOT/GPT/albumin/bilirubin), both reachable from DISPAT only through backward
foreign-key steps, plus the bridge relations REL11/REL12/REL13 that connect
examinations to each other — mirroring the original database's structure of
patient-linked examination tables.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, scaled
from repro.db.database import Database
from repro.db.schema import Attribute, AttributeType, ForeignKey, RelationSchema, Schema
from repro.utils.rng import ensure_rng

SEXES = ["male", "female"]
FIBROSIS_GRADES = ["F0", "F1", "F2", "F3", "F4"]
ACTIVITY_GRADES = ["A0", "A1", "A2", "A3"]
DURATION_BUCKETS = ["0-5y", "5-10y", "10-20y", "20y+"]


def hepatitis_schema() -> Schema:
    dispat = RelationSchema(
        "DISPAT",
        [
            Attribute("m_id", AttributeType.IDENTIFIER),
            Attribute("sex", AttributeType.CATEGORICAL),
            Attribute("age_group", AttributeType.CATEGORICAL),
            Attribute("type", AttributeType.CATEGORICAL),
        ],
        key=["m_id"],
    )
    indis = RelationSchema(
        "INDIS",
        [
            Attribute("in_id", AttributeType.IDENTIFIER),
            Attribute("m_id", AttributeType.IDENTIFIER),
            Attribute("got", AttributeType.NUMERIC),
            Attribute("gpt", AttributeType.NUMERIC),
            Attribute("alb", AttributeType.NUMERIC),
            Attribute("tbil", AttributeType.NUMERIC),
            Attribute("che", AttributeType.NUMERIC),
        ],
        key=["in_id"],
    )
    inf = RelationSchema(
        "INF",
        [
            Attribute("a_id", AttributeType.IDENTIFIER),
            Attribute("m_id", AttributeType.IDENTIFIER),
            Attribute("duration", AttributeType.CATEGORICAL),
        ],
        key=["a_id"],
    )
    bio = RelationSchema(
        "BIO",
        [
            Attribute("b_id", AttributeType.IDENTIFIER),
            Attribute("m_id", AttributeType.IDENTIFIER),
            Attribute("fibros", AttributeType.CATEGORICAL),
            Attribute("activity", AttributeType.CATEGORICAL),
        ],
        key=["b_id"],
    )
    rel11 = RelationSchema(
        "REL11",
        [
            Attribute("r_id", AttributeType.IDENTIFIER),
            Attribute("b_id", AttributeType.IDENTIFIER),
            Attribute("in_id", AttributeType.IDENTIFIER),
        ],
        key=["r_id"],
    )
    rel12 = RelationSchema(
        "REL12",
        [
            Attribute("r_id", AttributeType.IDENTIFIER),
            Attribute("in_id", AttributeType.IDENTIFIER),
            Attribute("a_id", AttributeType.IDENTIFIER),
        ],
        key=["r_id"],
    )
    rel13 = RelationSchema(
        "REL13",
        [
            Attribute("r_id", AttributeType.IDENTIFIER),
            Attribute("b_id", AttributeType.IDENTIFIER),
            Attribute("a_id", AttributeType.IDENTIFIER),
        ],
        key=["r_id"],
    )
    return Schema(
        [dispat, indis, inf, bio, rel11, rel12, rel13],
        [
            ForeignKey("INDIS", ("m_id",), "DISPAT", ("m_id",)),
            ForeignKey("INF", ("m_id",), "DISPAT", ("m_id",)),
            ForeignKey("BIO", ("m_id",), "DISPAT", ("m_id",)),
            ForeignKey("REL11", ("b_id",), "BIO", ("b_id",)),
            ForeignKey("REL11", ("in_id",), "INDIS", ("in_id",)),
            ForeignKey("REL12", ("in_id",), "INDIS", ("in_id",)),
            ForeignKey("REL12", ("a_id",), "INF", ("a_id",)),
            ForeignKey("REL13", ("b_id",), "BIO", ("b_id",)),
            ForeignKey("REL13", ("a_id",), "INF", ("a_id",)),
        ],
    )


def make_hepatitis(scale: float = 1.0, seed: int | None = 0) -> Dataset:
    """Generate the synthetic Hepatitis dataset at the given scale."""
    rng = ensure_rng(seed)
    num_patients = scaled(500, scale, minimum=30)
    labs_per_patient = 14 if scale >= 1.0 else max(2, int(14 * min(scale * 2, 1.0)))

    db = Database(hepatitis_schema())
    lab_counter = 0
    inf_counter = 0
    bio_counter = 0
    rel_counter = 0

    for i in range(num_patients):
        m_id = f"p{i:05d}"
        hepatitis_type = "B" if rng.random() < 206 / 690 else "C"
        db.insert(
            "DISPAT",
            {
                "m_id": m_id,
                "sex": SEXES[int(rng.integers(2))],
                "age_group": f"{10 * int(rng.integers(2, 8))}s",
                "type": hepatitis_type,
            },
        )
        # Biopsy: type B tends to lower fibrosis grades, C to higher.
        if hepatitis_type == "B":
            fibros = FIBROSIS_GRADES[int(np.clip(rng.normal(1.0, 1.0), 0, 4))]
            activity = ACTIVITY_GRADES[int(np.clip(rng.normal(1.0, 0.8), 0, 3))]
            got_mean, gpt_mean = 55.0, 60.0
        else:
            fibros = FIBROSIS_GRADES[int(np.clip(rng.normal(2.8, 1.0), 0, 4))]
            activity = ACTIVITY_GRADES[int(np.clip(rng.normal(2.0, 0.8), 0, 3))]
            got_mean, gpt_mean = 95.0, 110.0
        b_id = f"b{bio_counter:05d}"
        bio_counter += 1
        db.insert("BIO", {"b_id": b_id, "m_id": m_id, "fibros": fibros, "activity": activity})

        a_id = f"a{inf_counter:05d}"
        inf_counter += 1
        db.insert(
            "INF",
            {
                "a_id": a_id,
                "m_id": m_id,
                "duration": DURATION_BUCKETS[int(rng.integers(len(DURATION_BUCKETS)))],
            },
        )

        patient_labs: list[str] = []
        for _ in range(labs_per_patient):
            in_id = f"l{lab_counter:06d}"
            lab_counter += 1
            db.insert(
                "INDIS",
                {
                    "in_id": in_id,
                    "m_id": m_id,
                    "got": round(float(max(rng.normal(got_mean, 20), 5.0)), 1),
                    "gpt": round(float(max(rng.normal(gpt_mean, 25), 5.0)), 1),
                    "alb": round(float(np.clip(rng.normal(4.0, 0.5), 2.0, 5.5)), 2),
                    "tbil": round(float(max(rng.normal(1.0, 0.4), 0.1)), 2),
                    "che": round(float(max(rng.normal(220, 60), 30.0)), 1),
                },
            )
            patient_labs.append(in_id)

        # Bridge relations connect the patient's examinations to each other.
        first_lab = patient_labs[0]
        db.insert("REL11", {"r_id": f"r{rel_counter:06d}", "b_id": b_id, "in_id": first_lab})
        rel_counter += 1
        db.insert("REL12", {"r_id": f"r{rel_counter:06d}", "in_id": first_lab, "a_id": a_id})
        rel_counter += 1
        db.insert("REL13", {"r_id": f"r{rel_counter:06d}", "b_id": b_id, "a_id": a_id})
        rel_counter += 1

    return Dataset(
        name="hepatitis",
        db=db,
        prediction_relation="DISPAT",
        prediction_attribute="type",
        description="Synthetic Hepatitis dataset; predict hepatitis type B vs. C.",
    )

"""Dataset structure summaries in the style of Table I."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.datasets.base import Dataset


def dataset_structure_rows(datasets: Iterable[Dataset]) -> list[dict]:
    """One Table-I row per dataset: prediction column, counts, class count."""
    rows = []
    for dataset in datasets:
        summary = dataset.structure_summary()
        rows.append(
            {
                "dataset": dataset.name,
                "prediction_relation": dataset.prediction_relation,
                "prediction_attribute": dataset.prediction_attribute,
                "samples": summary["samples"],
                "relations": summary["relations"],
                "tuples": summary["tuples"],
                "attributes": summary["attributes"],
                "classes": len(dataset.class_distribution()),
            }
        )
    return rows


def format_table_i(rows: Sequence[dict]) -> str:
    """Render structure rows as an ASCII table matching Table I's columns."""
    header = (
        f"{'Dataset':<12} {'Prediction Rel.':<16} {'Prediction Attr.':<17} "
        f"{'#Samples':>8} {'#Relations':>10} {'#Tuples':>8} {'#Attributes':>11}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['dataset']:<12} {row['prediction_relation']:<16} "
            f"{row['prediction_attribute']:<17} {row['samples']:>8} "
            f"{row['relations']:>10} {row['tuples']:>8} {row['attributes']:>11}"
        )
    return "\n".join(lines)

"""The running movie-database example of Figure 2 of the paper.

Used throughout the tests and the documentation examples; the database is
reproduced value-for-value (including the null genre of Godzilla).
"""

from __future__ import annotations

from repro.datasets.base import Dataset
from repro.db.database import Database
from repro.db.schema import Attribute, AttributeType, ForeignKey, RelationSchema, Schema


def movies_schema() -> Schema:
    """The schema of Figure 2: MOVIES, ACTORS, STUDIOS, COLLABORATIONS."""
    movies = RelationSchema(
        "MOVIES",
        [
            Attribute("mid", AttributeType.IDENTIFIER),
            Attribute("studio", AttributeType.IDENTIFIER),
            Attribute("title", AttributeType.TEXT),
            Attribute("genre", AttributeType.CATEGORICAL),
            Attribute("budget", AttributeType.NUMERIC),
        ],
        key=["mid"],
    )
    actors = RelationSchema(
        "ACTORS",
        [
            Attribute("aid", AttributeType.IDENTIFIER),
            Attribute("name", AttributeType.TEXT),
            Attribute("worth", AttributeType.NUMERIC),
        ],
        key=["aid"],
    )
    studios = RelationSchema(
        "STUDIOS",
        [
            Attribute("sid", AttributeType.IDENTIFIER),
            Attribute("name", AttributeType.TEXT),
            Attribute("loc", AttributeType.CATEGORICAL),
        ],
        key=["sid"],
    )
    collaborations = RelationSchema(
        "COLLABORATIONS",
        [
            Attribute("actor1", AttributeType.IDENTIFIER),
            Attribute("actor2", AttributeType.IDENTIFIER),
            Attribute("movie", AttributeType.IDENTIFIER),
        ],
        key=["actor1", "actor2", "movie"],
    )
    return Schema(
        [movies, actors, studios, collaborations],
        [
            ForeignKey("MOVIES", ("studio",), "STUDIOS", ("sid",)),
            ForeignKey("COLLABORATIONS", ("actor1",), "ACTORS", ("aid",)),
            ForeignKey("COLLABORATIONS", ("actor2",), "ACTORS", ("aid",)),
            ForeignKey("COLLABORATIONS", ("movie",), "MOVIES", ("mid",)),
        ],
    )


def movies_database() -> Database:
    """The database instance of Figure 2 (budgets and worth in millions)."""
    db = Database(movies_schema())
    db.insert_many(
        "STUDIOS",
        [
            {"sid": "s01", "name": "Warner Bros.", "loc": "LA"},
            {"sid": "s02", "name": "Universal", "loc": "LA"},
            {"sid": "s03", "name": "Paramount", "loc": "LA"},
        ],
    )
    db.insert_many(
        "MOVIES",
        [
            {"mid": "m01", "studio": "s03", "title": "Titanic", "genre": "Drama", "budget": 200},
            {"mid": "m02", "studio": "s01", "title": "Inception", "genre": "SciFi", "budget": 160},
            {"mid": "m03", "studio": "s01", "title": "Godzilla", "genre": None, "budget": 150},
            {"mid": "m04", "studio": "s03", "title": "Interstellar", "genre": "SciFi", "budget": 160},
            {"mid": "m05", "studio": "s02", "title": "Tropic Thunder", "genre": "Action", "budget": 90},
            {"mid": "m06", "studio": "s01", "title": "Wolf of Wall St.", "genre": "Bio", "budget": 100},
        ],
    )
    db.insert_many(
        "ACTORS",
        [
            {"aid": "a01", "name": "DiCaprio", "worth": 230},
            {"aid": "a02", "name": "Watanabe", "worth": 40},
            {"aid": "a03", "name": "Cruise", "worth": 600},
            {"aid": "a04", "name": "McConaughey", "worth": 140},
            {"aid": "a05", "name": "Damon", "worth": 170},
        ],
    )
    db.insert_many(
        "COLLABORATIONS",
        [
            {"actor1": "a01", "actor2": "a02", "movie": "m03"},
            {"actor1": "a04", "actor2": "a05", "movie": "m04"},
            {"actor1": "a04", "actor2": "a03", "movie": "m05"},
            {"actor1": "a01", "actor2": "a04", "movie": "m06"},
        ],
    )
    return db


def make_movies(scale: float = 1.0, seed: int | None = None) -> Dataset:
    """The Figure-2 example as a Dataset (predicting the movie genre).

    ``scale`` and ``seed`` are accepted for interface uniformity with the
    other builders but ignored: the example is a fixed literal database.
    """
    del scale, seed
    return Dataset(
        name="movies",
        db=movies_database(),
        prediction_relation="MOVIES",
        prediction_attribute="genre",
        description="Running example of Figure 2 (predicting a movie's genre).",
    )

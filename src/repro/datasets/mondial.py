"""Synthetic Mondial dataset (May 1999 geographical database shape).

Paper shape (Table I): 40 relations, 21 497 tuples, 167 attributes, 206
samples, binary ``target`` label (Christian majority vs. not), prediction
relation TARGET which contains *only* the country identifier and the class.

Because the prediction relation has no informative attributes of its own,
every bit of signal must flow through foreign-key walks — which is exactly
why the paper includes this dataset.  The synthetic generator produces a
core of hand-designed relations (country, religion, language, ethnic group,
city, province, economy, population, borders, organizations, membership)
plus a family of small per-country indicator relations to reach the
40-relation / 167-attribute shape of the original.

Signal placement: the target is determined by the dominant religion family
recorded in the RELIGION relation (with noise), and correlates with the
language families in LANGUAGE.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import Dataset, scaled
from repro.db.database import Database
from repro.db.schema import Attribute, AttributeType, ForeignKey, RelationSchema, Schema
from repro.utils.rng import ensure_rng

NUM_INDICATOR_RELATIONS = 28
CHRISTIAN_RELIGIONS = ["Roman Catholic", "Protestant", "Orthodox", "Anglican"]
OTHER_RELIGIONS = ["Muslim", "Buddhist", "Hindu", "Jewish", "Folk", "None"]
CHRISTIAN_LANGUAGES = ["Spanish", "English", "Portuguese", "Italian", "Polish"]
OTHER_LANGUAGES = ["Arabic", "Mandarin", "Hindi", "Japanese", "Turkish"]
CONTINENTS = ["Europe", "Asia", "Africa", "America", "Oceania"]
GOVERNMENTS = ["republic", "monarchy", "federal republic", "territory"]
ORG_NAMES = [f"ORG{i:02d}" for i in range(25)]


def _indicator_relation(index: int) -> RelationSchema:
    """One of the small per-country auxiliary relations (no class signal)."""
    return RelationSchema(
        f"INDICATOR_{index:02d}",
        [
            Attribute("ind_id", AttributeType.IDENTIFIER),
            Attribute("country", AttributeType.IDENTIFIER),
            Attribute("value", AttributeType.NUMERIC),
            Attribute("category", AttributeType.CATEGORICAL),
        ],
        key=["ind_id"],
    )


def mondial_schema() -> Schema:
    target = RelationSchema(
        "TARGET",
        [
            Attribute("country", AttributeType.IDENTIFIER),
            Attribute("target", AttributeType.CATEGORICAL),
        ],
        key=["country"],
    )
    country = RelationSchema(
        "COUNTRY",
        [
            Attribute("code", AttributeType.IDENTIFIER),
            Attribute("name", AttributeType.TEXT),
            Attribute("capital", AttributeType.TEXT),
            Attribute("area", AttributeType.NUMERIC),
            Attribute("population", AttributeType.NUMERIC),
            Attribute("government", AttributeType.CATEGORICAL),
        ],
        key=["code"],
    )
    continent_of = RelationSchema(
        "ENCOMPASSES",
        [
            Attribute("e_id", AttributeType.IDENTIFIER),
            Attribute("country", AttributeType.IDENTIFIER),
            Attribute("continent", AttributeType.CATEGORICAL),
            Attribute("percentage", AttributeType.NUMERIC),
        ],
        key=["e_id"],
    )
    religion = RelationSchema(
        "RELIGION",
        [
            Attribute("rel_id", AttributeType.IDENTIFIER),
            Attribute("country", AttributeType.IDENTIFIER),
            Attribute("name", AttributeType.CATEGORICAL),
            Attribute("percentage", AttributeType.NUMERIC),
        ],
        key=["rel_id"],
    )
    language = RelationSchema(
        "LANGUAGE",
        [
            Attribute("lang_id", AttributeType.IDENTIFIER),
            Attribute("country", AttributeType.IDENTIFIER),
            Attribute("name", AttributeType.CATEGORICAL),
            Attribute("percentage", AttributeType.NUMERIC),
        ],
        key=["lang_id"],
    )
    ethnic = RelationSchema(
        "ETHNIC_GROUP",
        [
            Attribute("eg_id", AttributeType.IDENTIFIER),
            Attribute("country", AttributeType.IDENTIFIER),
            Attribute("name", AttributeType.CATEGORICAL),
            Attribute("percentage", AttributeType.NUMERIC),
        ],
        key=["eg_id"],
    )
    city = RelationSchema(
        "CITY",
        [
            Attribute("city_id", AttributeType.IDENTIFIER),
            Attribute("country", AttributeType.IDENTIFIER),
            Attribute("name", AttributeType.TEXT),
            Attribute("population", AttributeType.NUMERIC),
        ],
        key=["city_id"],
    )
    province = RelationSchema(
        "PROVINCE",
        [
            Attribute("prov_id", AttributeType.IDENTIFIER),
            Attribute("country", AttributeType.IDENTIFIER),
            Attribute("name", AttributeType.TEXT),
            Attribute("area", AttributeType.NUMERIC),
        ],
        key=["prov_id"],
    )
    economy = RelationSchema(
        "ECONOMY",
        [
            Attribute("eco_id", AttributeType.IDENTIFIER),
            Attribute("country", AttributeType.IDENTIFIER),
            Attribute("gdp", AttributeType.NUMERIC),
            Attribute("inflation", AttributeType.NUMERIC),
            Attribute("agriculture", AttributeType.NUMERIC),
        ],
        key=["eco_id"],
    )
    population = RelationSchema(
        "POPULATION",
        [
            Attribute("pop_id", AttributeType.IDENTIFIER),
            Attribute("country", AttributeType.IDENTIFIER),
            Attribute("growth", AttributeType.NUMERIC),
            Attribute("infant_mortality", AttributeType.NUMERIC),
        ],
        key=["pop_id"],
    )
    borders = RelationSchema(
        "BORDERS",
        [
            Attribute("border_id", AttributeType.IDENTIFIER),
            Attribute("country1", AttributeType.IDENTIFIER),
            Attribute("country2", AttributeType.IDENTIFIER),
            Attribute("length", AttributeType.NUMERIC),
        ],
        key=["border_id"],
    )
    organization = RelationSchema(
        "ORGANIZATION",
        [
            Attribute("org_id", AttributeType.IDENTIFIER),
            Attribute("name", AttributeType.CATEGORICAL),
            Attribute("established", AttributeType.NUMERIC),
        ],
        key=["org_id"],
    )
    is_member = RelationSchema(
        "IS_MEMBER",
        [
            Attribute("mem_id", AttributeType.IDENTIFIER),
            Attribute("country", AttributeType.IDENTIFIER),
            Attribute("organization", AttributeType.IDENTIFIER),
            Attribute("membership_type", AttributeType.CATEGORICAL),
        ],
        key=["mem_id"],
    )
    relations = [
        target,
        country,
        continent_of,
        religion,
        language,
        ethnic,
        city,
        province,
        economy,
        population,
        borders,
        organization,
        is_member,
    ]
    foreign_keys = [
        ForeignKey("TARGET", ("country",), "COUNTRY", ("code",)),
        ForeignKey("ENCOMPASSES", ("country",), "COUNTRY", ("code",)),
        ForeignKey("RELIGION", ("country",), "COUNTRY", ("code",)),
        ForeignKey("LANGUAGE", ("country",), "COUNTRY", ("code",)),
        ForeignKey("ETHNIC_GROUP", ("country",), "COUNTRY", ("code",)),
        ForeignKey("CITY", ("country",), "COUNTRY", ("code",)),
        ForeignKey("PROVINCE", ("country",), "COUNTRY", ("code",)),
        ForeignKey("ECONOMY", ("country",), "COUNTRY", ("code",)),
        ForeignKey("POPULATION", ("country",), "COUNTRY", ("code",)),
        ForeignKey("BORDERS", ("country1",), "COUNTRY", ("code",)),
        ForeignKey("BORDERS", ("country2",), "COUNTRY", ("code",)),
        ForeignKey("IS_MEMBER", ("country",), "COUNTRY", ("code",)),
        ForeignKey("IS_MEMBER", ("organization",), "ORGANIZATION", ("org_id",)),
    ]
    for index in range(1, NUM_INDICATOR_RELATIONS):
        relation = _indicator_relation(index)
        relations.append(relation)
        foreign_keys.append(ForeignKey(relation.name, ("country",), "COUNTRY", ("code",)))
    return Schema(relations, foreign_keys)


def make_mondial(scale: float = 1.0, seed: int | None = 0) -> Dataset:
    """Generate the synthetic Mondial dataset at the given scale."""
    rng = ensure_rng(seed)
    num_countries = scaled(206, scale, minimum=26)
    cities_per_country = 12 if scale >= 1.0 else 3
    provinces_per_country = 8 if scale >= 1.0 else 2

    db = Database(mondial_schema())
    counters = {"rel": 0, "lang": 0, "eg": 0, "city": 0, "prov": 0, "border": 0, "mem": 0, "enc": 0}

    for org_index, org_name in enumerate(ORG_NAMES):
        db.insert(
            "ORGANIZATION",
            {"org_id": f"org{org_index:03d}", "name": org_name, "established": int(rng.integers(1860, 2000))},
        )

    country_codes: list[str] = []
    is_christian: dict[str, bool] = {}
    for i in range(num_countries):
        code = f"CT{i:03d}"
        country_codes.append(code)
        christian = rng.random() < 114 / 185
        is_christian[code] = christian
        db.insert(
            "COUNTRY",
            {
                "code": code,
                "name": f"Nation {i}",
                "capital": f"Capital {i}",
                "area": round(float(rng.lognormal(11.5, 1.2)), 1),
                "population": int(rng.lognormal(15.5, 1.4)),
                "government": GOVERNMENTS[int(rng.integers(len(GOVERNMENTS)))],
            },
        )
        db.insert(
            "TARGET",
            {"country": code, "target": "christian" if christian else "non_christian"},
        )
        db.insert(
            "ENCOMPASSES",
            {
                "e_id": f"e{counters['enc']:05d}",
                "country": code,
                "continent": CONTINENTS[int(rng.integers(len(CONTINENTS)))],
                "percentage": 100.0,
            },
        )
        counters["enc"] += 1

        # Religions: the dominant religion carries the class signal (90%).
        dominant_pool = CHRISTIAN_RELIGIONS if christian else OTHER_RELIGIONS
        if rng.random() < 0.1:
            dominant_pool = OTHER_RELIGIONS if christian else CHRISTIAN_RELIGIONS
        dominant = dominant_pool[int(rng.integers(len(dominant_pool)))]
        db.insert(
            "RELIGION",
            {
                "rel_id": f"rl{counters['rel']:05d}",
                "country": code,
                "name": dominant,
                "percentage": round(float(rng.uniform(50, 95)), 1),
            },
        )
        counters["rel"] += 1
        for _ in range(2):
            minority = (CHRISTIAN_RELIGIONS + OTHER_RELIGIONS)[int(rng.integers(10))]
            db.insert(
                "RELIGION",
                {
                    "rel_id": f"rl{counters['rel']:05d}",
                    "country": code,
                    "name": minority,
                    "percentage": round(float(rng.uniform(1, 25)), 1),
                },
            )
            counters["rel"] += 1

        language_pool = CHRISTIAN_LANGUAGES if christian else OTHER_LANGUAGES
        if rng.random() < 0.2:
            language_pool = OTHER_LANGUAGES if christian else CHRISTIAN_LANGUAGES
        for j in range(2):
            db.insert(
                "LANGUAGE",
                {
                    "lang_id": f"lg{counters['lang']:05d}",
                    "country": code,
                    "name": language_pool[int(rng.integers(len(language_pool)))],
                    "percentage": round(float(rng.uniform(5, 95)), 1),
                },
            )
            counters["lang"] += 1

        for _ in range(2):
            db.insert(
                "ETHNIC_GROUP",
                {
                    "eg_id": f"eg{counters['eg']:05d}",
                    "country": code,
                    "name": f"Group {int(rng.integers(30))}",
                    "percentage": round(float(rng.uniform(1, 80)), 1),
                },
            )
            counters["eg"] += 1

        for _ in range(cities_per_country):
            db.insert(
                "CITY",
                {
                    "city_id": f"ci{counters['city']:06d}",
                    "country": code,
                    "name": f"Town {counters['city']}",
                    "population": int(rng.lognormal(11, 1.2)),
                },
            )
            counters["city"] += 1
        for _ in range(provinces_per_country):
            db.insert(
                "PROVINCE",
                {
                    "prov_id": f"pr{counters['prov']:05d}",
                    "country": code,
                    "name": f"Province {counters['prov']}",
                    "area": round(float(rng.lognormal(9, 1.0)), 1),
                },
            )
            counters["prov"] += 1

        db.insert(
            "ECONOMY",
            {
                "eco_id": f"ec{i:05d}",
                "country": code,
                "gdp": round(float(rng.lognormal(10, 1.3)), 1),
                "inflation": round(float(max(rng.normal(4, 3), 0.0)), 2),
                "agriculture": round(float(rng.uniform(1, 60)), 1),
            },
        )
        db.insert(
            "POPULATION",
            {
                "pop_id": f"pp{i:05d}",
                "country": code,
                "growth": round(float(rng.normal(1.2, 0.8)), 2),
                "infant_mortality": round(float(max(rng.normal(25, 15), 1.0)), 1),
            },
        )
        for _ in range(3):
            db.insert(
                "IS_MEMBER",
                {
                    "mem_id": f"mb{counters['mem']:06d}",
                    "country": code,
                    "organization": f"org{int(rng.integers(len(ORG_NAMES))):03d}",
                    "membership_type": "member" if rng.random() < 0.8 else "observer",
                },
            )
            counters["mem"] += 1

    for _ in range(num_countries * 2):
        first, second = rng.choice(len(country_codes), size=2, replace=False)
        db.insert(
            "BORDERS",
            {
                "border_id": f"bd{counters['border']:05d}",
                "country1": country_codes[int(first)],
                "country2": country_codes[int(second)],
                "length": round(float(rng.lognormal(6, 1.0)), 1),
            },
        )
        counters["border"] += 1

    # The small indicator relations fill out the 40-relation structure.
    for index in range(1, NUM_INDICATOR_RELATIONS):
        relation_name = f"INDICATOR_{index:02d}"
        for j, code in enumerate(country_codes):
            if rng.random() < 0.4:
                continue
            db.insert(
                relation_name,
                {
                    "ind_id": f"in{index:02d}_{j:04d}",
                    "country": code,
                    "value": round(float(rng.normal(0, 1)), 3),
                    "category": f"cat{int(rng.integers(5))}",
                },
            )

    return Dataset(
        name="mondial",
        db=db,
        prediction_relation="TARGET",
        prediction_attribute="target",
        description="Synthetic Mondial dataset; predict Christian vs. non-Christian majority.",
    )

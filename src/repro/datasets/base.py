"""The dataset container used by the evaluation harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.db.database import Database, Fact


@dataclass
class Dataset:
    """A database together with its downstream column-prediction task.

    ``prediction_relation``/``prediction_attribute`` identify the column the
    downstream task predicts (the paper's "prediction relation").  The
    embedding algorithms must not see that column; :meth:`masked_database`
    provides the database with the column nulled out, preserving fact ids so
    labels can be joined back by ``fact_id``.
    """

    name: str
    db: Database
    prediction_relation: str
    prediction_attribute: str
    description: str = ""

    def __post_init__(self) -> None:
        self.db.schema.relation(self.prediction_relation).attribute(self.prediction_attribute)

    # -------------------------------------------------------------- labels

    def prediction_facts(self) -> tuple[Fact, ...]:
        """The facts of the prediction relation, i.e. the labelled samples."""
        return self.db.facts(self.prediction_relation)

    def labels(self) -> dict[int, Any]:
        """Mapping from fact id to class label (nulls are skipped)."""
        return {
            fact.fact_id: fact[self.prediction_attribute]
            for fact in self.prediction_facts()
            if fact[self.prediction_attribute] is not None
        }

    def label_of(self, fact: Fact | int) -> Any:
        fact_id = fact.fact_id if isinstance(fact, Fact) else int(fact)
        return self.labels()[fact_id]

    def class_distribution(self) -> dict[Any, int]:
        """Number of samples per class."""
        counts: dict[Any, int] = {}
        for label in self.labels().values():
            counts[label] = counts.get(label, 0) + 1
        return counts

    # ------------------------------------------------------------ databases

    def masked_database(self) -> Database:
        """The database with the prediction attribute hidden (set to null)."""
        return self.db.mask_attribute(self.prediction_relation, self.prediction_attribute)

    # -------------------------------------------------------------- summary

    def structure_summary(self) -> dict[str, int]:
        """A Table-I style structure row for this dataset."""
        summary = self.db.structure_summary()
        summary["samples"] = len(self.labels())
        return summary

    def __repr__(self) -> str:  # pragma: no cover - trivial
        summary = self.structure_summary()
        return (
            f"Dataset({self.name!r}, samples={summary['samples']}, "
            f"relations={summary['relations']}, tuples={summary['tuples']})"
        )


def scaled(count: int, scale: float, minimum: int = 2) -> int:
    """Scale a tuple count, never dropping below ``minimum``."""
    return max(int(round(count * scale)), minimum)

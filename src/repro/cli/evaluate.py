"""``python -m repro evaluate`` — the paper's experiments from method specs.

::

    python -m repro evaluate --dataset world --scale 0.3 \\
        --methods "forward(dimension=32)" "node2vec(dim=32)" \\
        --experiment static --n-splits 5 --out results.json

Runs the static (Table III) or dynamic (Table IV/Figure 5) experiment on a
bundled/registered dataset — or an ingested source via ``--source`` with
``--relation``/``--attribute`` — for every given method spec, prints the
ASCII table and optionally writes a version-stamped JSON report.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
from pathlib import Path

from repro.cli.common import (
    CLIError,
    add_ingest_options,
    add_standard_options,
    ingest_source,
    load_dataset_or_error,
    make_runner,
)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Declare the subcommand's options on ``parser``."""
    what = parser.add_mutually_exclusive_group()
    what.add_argument("--dataset", help="bundled or registered dataset name")
    what.add_argument("--source", help="CSV directory or SQLite file to ingest")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="dataset generation scale (datasets only)")
    parser.add_argument("--relation", help="prediction relation (required with --source)")
    parser.add_argument("--attribute", help="prediction attribute (required with --source)")
    parser.add_argument(
        "--methods", nargs="+", default=["forward"], metavar="SPEC",
        help='method specs, e.g. "forward(dimension=32)" "node2vec(dim=32)"',
    )
    parser.add_argument("--experiment", choices=("static", "dynamic"), default="static")
    parser.add_argument("--n-splits", type=int, default=10,
                        help="cross-validation folds (static)")
    parser.add_argument("--n-runs", type=int, default=3,
                        help="repetitions of the dynamic protocol")
    parser.add_argument("--ratio", type=float, default=0.1,
                        help="new-data ratio of the dynamic experiment")
    parser.add_argument("--mode", choices=("one_by_one", "all_at_once"),
                        default="one_by_one", help="dynamic insertion mode")
    parser.add_argument("--fresh-per-fold", action="store_true",
                        help="train a fresh embedding per fold (paper protocol; slow)")
    parser.add_argument("--no-baselines", action="store_true",
                        help="skip the majority/flat baselines (static)")
    parser.add_argument("--out", help="optional JSON report path")
    add_ingest_options(parser)
    add_standard_options(parser)


def _resolve_dataset(args: argparse.Namespace):
    if args.dataset and args.source:
        raise CLIError("pass --dataset or --source, not both")
    if args.dataset:
        return load_dataset_or_error(args.dataset, args.scale, args.seed)
    if args.source:
        if not (args.relation and args.attribute):
            raise CLIError("--source needs --relation and --attribute")
        result = ingest_source(args)
        try:
            return result.dataset(args.relation, args.attribute)
        except (KeyError, ValueError) as error:
            raise CLIError(str(error)) from None
    raise CLIError("pass --dataset NAME or --source PATH")


def execute(args: argparse.Namespace) -> int:
    """Run an already parsed evaluate invocation."""
    from repro.api import MethodSpecError
    from repro.evaluation import (
        format_dynamic_table,
        format_static_table,
        method_from_spec,
        run_dynamic_experiment,
        run_static_experiment,
    )

    out = Path(args.out) if args.out else None
    if out is not None:
        # create the report directory before the (possibly long) experiment,
        # so a bad path fails now instead of discarding the results at the end
        try:
            out.parent.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise CLIError(f"cannot create report directory {out.parent}: {error}") from None
    dataset = _resolve_dataset(args)
    try:
        methods = [method_from_spec(spec) for spec in args.methods]
    except MethodSpecError as error:
        raise CLIError(str(error)) from None

    if args.experiment == "static":
        results = run_static_experiment(
            dataset,
            methods,
            n_splits=args.n_splits,
            fresh_embedding_per_fold=args.fresh_per_fold,
            include_baselines=not args.no_baselines,
            rng=args.seed,
        )
        print(format_static_table(results))
    else:
        results = [
            run_dynamic_experiment(
                dataset,
                method,
                ratio_new=args.ratio,
                mode=args.mode,
                n_runs=args.n_runs,
                rng=args.seed,
            )
            for method in methods
        ]
        print(format_dynamic_table(results))

    if out is not None:
        from repro import __version__

        report = {
            "repro_version": __version__,
            "experiment": args.experiment,
            "dataset": dataset.name,
            "scale": args.scale,
            "seed": args.seed,
            "methods": list(args.methods),
            "results": [dataclasses.asdict(result) for result in results],
        }
        out.write_text(json.dumps(report, indent=2))
        print(f"\nReport written to {out}")
    return 0


run = make_runner(
    "python -m repro evaluate",
    "Run the paper's static or dynamic experiment from method specs.",
    add_arguments,
    execute,
)
"""Standalone entry: parse, run the experiment, print the table."""

"""``python -m repro ingest`` — files → database → embeddings → saved model.

::

    python -m repro ingest data/ --out artifacts/ --relation TARGET \\
        --attribute target [--method "forward(dimension=32)"] [--report]

ingests a CSV directory or SQLite file (schema, keys and foreign keys
inferred, correctable via an override spec), writes ``schema.json``,
``report.json`` and a fact-id-preserving ``database.json``, then — when
``--relation`` is given — trains the chosen embedding method on that
relation (hiding ``--attribute``, the paper's protocol) and saves
``embeddings.npz`` plus, for FoRWaRD, a restartable model directory.  The
method is a registry spec (default: FoRWaRD built from the legacy
hyper-parameter flags).  Exit code 0 on success, 2 on any ingestion or
embedding failure (with an actionable message on stderr).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.cli.common import (
    CLIError,
    add_ingest_options,
    add_standard_options,
    checked_ingested_relation,
    ingest_source,
    make_runner,
    masked_database,
    require,
)


#: The legacy hyper-parameter flags by dest and their defaults — the single
#: source for both the argparse declarations below and the --method conflict
#: check (a spec supersedes the flags completely, so a changed flag errors).
_HYPER_FLAG_DEFAULTS = {
    "dimension": 32, "epochs": 5, "n_samples": 2000,
    "max_walk_length": 2, "batch_size": 4096, "learning_rate": 0.01,
}


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Declare the subcommand's options on ``parser``."""
    parser.add_argument("source", help="directory of .csv files, or a SQLite file")
    parser.add_argument(
        "--out", help="output directory for artifacts (flag or config file)"
    )
    parser.add_argument(
        "--relation",
        help="relation to embed (omit to only ingest and save the database)",
    )
    parser.add_argument(
        "--attribute",
        help="prediction attribute to hide during embedding (paper protocol); "
        "requires --relation",
    )
    parser.add_argument(
        "--method",
        help="embedding method spec, e.g. \"forward(dimension=32, epochs=5)\" "
        "(default: forward built from the hyper-parameter flags below)",
    )
    add_ingest_options(parser)
    parser.add_argument(
        "--report", action="store_true", help="print the full inference report"
    )
    embedding = parser.add_argument_group(
        "embedding hyper-parameters (use these or a --method spec, not both)"
    )
    defaults = _HYPER_FLAG_DEFAULTS
    embedding.add_argument("--dimension", type=int, default=defaults["dimension"])
    embedding.add_argument("--epochs", type=int, default=defaults["epochs"])
    embedding.add_argument(
        "--samples", type=int, default=defaults["n_samples"], dest="n_samples"
    )
    embedding.add_argument(
        "--walk-length", type=int, default=defaults["max_walk_length"],
        dest="max_walk_length",
    )
    embedding.add_argument("--batch-size", type=int, default=defaults["batch_size"])
    embedding.add_argument("--learning-rate", type=float, default=defaults["learning_rate"])
    add_standard_options(parser)


def _make_embedder(args: argparse.Namespace):
    """The embedder for the embed step: spec if given, legacy flags otherwise."""
    from repro.api import ForwardEmbedding, MethodSpecError, make_embedder
    from repro.core.config import ForwardConfig

    if args.method:
        typed = getattr(args, "_explicit_dests", set())
        changed = [name for name in _HYPER_FLAG_DEFAULTS if name in typed]
        if changed:
            # silently training with the spec's values while the user typed
            # hyper-parameter flags would be a trap; make the conflict
            # explicit (config-file defaults do not count as typed)
            raise CLIError(
                f"--method supersedes the hyper-parameter flags, but "
                f"{', '.join(changed)} were given explicitly; put them "
                f"inside the spec instead, e.g. \"forward({changed[0]}=...)\""
            )
        try:
            return make_embedder(args.method)
        except MethodSpecError as error:
            raise CLIError(str(error)) from None
    try:
        config = ForwardConfig(
            dimension=args.dimension,
            n_samples=args.n_samples,
            batch_size=args.batch_size,
            max_walk_length=args.max_walk_length,
            epochs=args.epochs,
            learning_rate=args.learning_rate,
        )
    except ValueError as error:
        raise CLIError(f"embedding failed: {error}") from None
    return ForwardEmbedding(config)


def execute(args: argparse.Namespace) -> int:
    """Run an already parsed ingest invocation."""
    from repro.db.serialization import save_database_json, schema_to_dict

    require(args, "out", "--out")
    if args.attribute and not args.relation:
        raise CLIError("--attribute requires --relation")
    result = ingest_source(args)
    print(result.summary())
    if args.report:
        print(result.report.format())

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    (out / "schema.json").write_text(json.dumps(schema_to_dict(result.schema), indent=2))
    (out / "report.json").write_text(json.dumps(result.report.to_dict(), indent=2))
    save_database_json(result.database, out / "database.json", include_fact_ids=True)
    print(f"wrote {out / 'schema.json'}, {out / 'report.json'}, {out / 'database.json'}")

    if not args.relation:
        return 0
    checked_ingested_relation(result.schema, args.relation)

    from repro.core.forward import ForwardModel
    from repro.core.persistence import save_embedding, save_forward_model

    db = result.database
    if args.attribute:
        db = masked_database(db, args.relation, args.attribute)
    embedder = _make_embedder(args)
    try:
        embedder.fit(db, args.relation, rng=args.seed)
    except ValueError as error:
        raise CLIError(f"embedding failed: {error}") from None
    embedding = embedder.transform()
    save_embedding(embedding, out / "embeddings.npz")
    model = embedder.model_
    if isinstance(model, ForwardModel):
        save_forward_model(model, out / "model")
        print(
            f"embedded {len(model.fact_ids)} {args.relation} facts "
            f"(d={model.config.dimension}, {len(model.targets)} walk targets, "
            f"final loss {model.loss_history[-1]:.4f}); "
            f"wrote {out / 'embeddings.npz'} and {out / 'model'}/"
        )
    else:
        print(
            f"embedded {len(embedding)} facts with {args.method or 'forward'} "
            f"(d={embedder.dimension}); wrote {out / 'embeddings.npz'}"
        )
    return 0


run = make_runner(
    "python -m repro ingest",
    "Ingest a CSV directory or SQLite file into a typed database "
    "(schema, keys and foreign keys inferred), optionally train "
    "embeddings on one relation, and save all artifacts.",
    add_arguments,
    execute,
)
"""The CLI: ingest, optionally embed, save artifacts.  Returns the exit code."""

"""The unified ``python -m repro`` command line.

One command, six subcommands — ``ingest``, ``embed``, ``serve``,
``replay``, ``evaluate``, ``bench`` — sharing one argument/config layer:
every subcommand accepts ``--config file.json`` (or ``.yaml``) whose keys
are the subcommand's long options, with explicit flags overriding the file,
plus a ``--seed`` that is plumbed end-to-end through dataset generation,
engine sampling and model initialisation.  Methods are chosen everywhere by
the same ``"name(key=value)"`` specs of :mod:`repro.api.registry`.

The historical module entry points (``python -m repro.io.ingest``,
``python -m repro.service.replay``) remain as deprecation shims that
forward here and emit a :class:`DeprecationWarning`.
"""

from repro.cli.main import main

__all__ = ["main"]

"""``python -m repro stats`` — summarize observability artifacts.

::

    python -m repro stats metrics.json
    python -m repro stats metrics.json --trace trace.jsonl

Reads a ``--metrics-out`` file written by ``replay``/``serve``/``bench``
(the payload of :func:`repro.obs.metrics_payload`) and prints the operator
view: the per-stage apply breakdown with coverage, engine cache hit ratios,
latency histogram percentiles, and the raw counters/gauges.  With
``--trace`` it additionally summarizes a span trace — JSONL traces are
aggregated per span name; Chrome traces are recognised and counted.

``BENCH_*.json`` files are accepted in place of a metrics payload:
``BENCH_load.json`` (the serve-tier load test, ``kind`` ``"load_test"``,
rendered by :func:`repro.serve.loadgen.render_load`), ``BENCH_knn.json``
(the kNN index ladder, ``kind`` ``"knn_bench"``, rendered by
:func:`repro.index.bench.render_knn`) and ``BENCH_streaming.json`` in both
of its formats — the throughput-ladder payload (``rungs`` list, rendered
as the per-rung floor/speedup table of
:func:`repro.service.ladder.render_ladder`) and the old single-run replay
report that ``python -m repro bench`` still writes.

No recomputation happens here: the artifacts are self-contained, so the
subcommand works on files copied off a CI run or another machine.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.cli.common import CLIError, add_standard_options, make_runner


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Declare the subcommand's options on ``parser``."""
    parser.add_argument(
        "metrics", nargs="?", type=Path,
        help="a metrics JSON file written with --metrics-out",
    )
    parser.add_argument(
        "--trace", metavar="FILE", type=Path, default=None,
        help="also summarize a trace file written with --trace",
    )
    add_standard_options(parser)


def _load_json(path: Path) -> dict:
    if not path.exists():
        raise CLIError(f"file {path} does not exist")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise CLIError(f"{path} is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise CLIError(f"{path} does not hold a JSON object")
    return payload


def render_metrics(payload: dict) -> str:
    """The human-readable summary of one metrics payload."""
    lines: list[str] = []
    stages = payload.get("stages", {})
    if stages:
        lines.append("apply stages")
        for name, stage in stages.items():
            short = name.rsplit(".", 1)[-1]
            lines.append(
                f"  {short:<14}{stage['inclusive_seconds']:>10.3f}s"
                f"{stage['fraction_of_apply']:>8.1%} of apply"
                f"  ({stage['calls']} calls)"
            )
        coverage = payload.get("stage_coverage", 0.0)
        lines.append(f"  {'coverage':<14}{coverage:>18.1%}")
    ratios = payload.get("cache_hit_ratios", {})
    if ratios:
        lines.append("engine caches")
        for kind, ratio in ratios.items():
            lines.append(
                f"  {kind:<14}{ratio['hit_ratio']:>10.1%} hit "
                f"({ratio['hits']} hits / {ratio['misses']} misses)"
            )
    serve = payload.get("serve", {})
    if serve:
        lines.append("serving endpoints")
        for endpoint, summary in serve.get("endpoints", {}).items():
            lines.append(
                f"  {endpoint:<14}{summary['count']:>8}x"
                f"  p50 {summary['p50_seconds'] * 1e3:.2f}ms"
                f"  p99 {summary['p99_seconds'] * 1e3:.2f}ms"
                f"  max {summary['max_seconds'] * 1e3:.2f}ms"
            )
        staleness = serve.get("staleness_versions")
        shown = "unknown" if staleness is None else staleness
        lines.append(f"  {'staleness (versions)':<22}{shown:>8}")
    histograms = payload.get("histograms", {})
    if histograms:
        lines.append("latency histograms")
        for name, summary in sorted(histograms.items()):
            if not summary.get("count"):
                continue
            lines.append(
                f"  {name:<32}{summary['count']:>8}x"
                f"  p50 {summary['p50_seconds']:.4f}s"
                f"  p95 {summary['p95_seconds']:.4f}s"
                f"  max {summary['max_seconds']:.4f}s"
            )
    counters = payload.get("counters", {})
    if counters:
        lines.append("counters")
        for name, value in sorted(counters.items()):
            if value:
                lines.append(f"  {name:<32}{value:>12}")
    gauges = payload.get("gauges", {})
    if gauges:
        lines.append("gauges")
        for name, value in sorted(gauges.items()):
            shown = "unknown" if value is None else (
                f"{value:.3f}" if isinstance(value, float) else value
            )
            lines.append(f"  {name:<32}{shown:>12}")
    if not lines:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)


def render_trace(path: Path) -> str:
    """Aggregate a trace file into per-span-name counts and totals."""
    text = path.read_text()
    totals: dict[str, list] = {}  # name -> [count, total_seconds]
    if path.suffix.lower() == ".jsonl":
        from repro.obs import load_jsonl

        for record in load_jsonl(path):
            bucket = totals.setdefault(record.name, [0, 0.0])
            bucket[0] += 1
            bucket[1] += record.duration
    else:
        try:
            events = json.loads(text).get("traceEvents", [])
        except json.JSONDecodeError as error:
            raise CLIError(f"{path} is not valid JSON: {error}") from None
        for event in events:
            bucket = totals.setdefault(event.get("name", "?"), [0, 0.0])
            bucket[0] += 1
            bucket[1] += float(event.get("dur", 0.0)) / 1e6
    lines = [f"trace spans ({sum(c for c, _ in totals.values())} total)"]
    for name, (count, seconds) in sorted(
        totals.items(), key=lambda item: -item[1][1]
    ):
        lines.append(f"  {name:<32}{count:>8}x{seconds:>10.3f}s")
    if len(lines) == 1:
        lines.append("  (no spans recorded)")
    return "\n".join(lines)


def render_payload(payload: dict) -> str:
    """Dispatch on payload shape: load test, ladder, single-run, or metrics."""
    if payload.get("kind") == "load_test":
        from repro.serve.loadgen import render_load

        return render_load(payload)
    if payload.get("kind") == "knn_bench":
        from repro.index.bench import render_knn

        return render_knn(payload)
    if "rungs" in payload:
        from repro.service.ladder import render_ladder

        return render_ladder(payload)
    if "facts_per_second" in payload:
        from repro.service.replay import render_report

        return render_report(payload)
    return render_metrics(payload)


def execute(args: argparse.Namespace) -> int:
    """Run an already parsed stats invocation."""
    if args.metrics is None and args.trace is None:
        raise CLIError("pass a metrics JSON file and/or --trace FILE")
    if args.metrics is not None:
        print(render_payload(_load_json(args.metrics)))
    if args.trace is not None:
        if not args.trace.exists():
            raise CLIError(f"file {args.trace} does not exist")
        if args.metrics is not None:
            print()
        print(render_trace(args.trace))
    return 0


run = make_runner(
    "python -m repro stats",
    "Summarize metrics/trace artifacts written by --metrics-out/--trace.",
    add_arguments,
    execute,
)
"""Standalone entry: parse, read the artifacts, print the summary."""

"""``python -m repro replay`` — stream a dataset through the live service.

::

    python -m repro replay --dataset mondial --insert-ratio 0.1
    python -m repro replay --dataset mondial --ops insert,delete,update

The serving-layer counterpart of the offline dynamic experiment: a dataset
is partitioned at the chosen insert ratio, the static model is trained on
the old part, and the removed facts are replayed as a change feed through a
live :class:`~repro.service.service.EmbeddingService` —
:func:`repro.service.replay.run_streaming_replay` does the work.  ``--ops``
selects the workload: pure inserts (default) or a full-CRUD churn stream
that interleaves deletions and in-place updates of previously streamed
facts.  A version-stamped ``BENCH_streaming.json`` with throughput and
latency statistics is written to ``--output``; under the default
``recompute`` policy the run self-verifies against a one-shot extender to
1e-9 (and, for churn, that deleted tuples are absent from the store).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.cli.common import (
    CLIError,
    add_observability_options,
    add_standard_options,
    export_observability,
    make_runner,
    telemetry_from_args,
)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Declare the subcommand's options on ``parser``."""
    from repro.service.replay import DEFAULT_CONFIG

    parser.add_argument("--dataset", default="mondial", help="bundled dataset name")
    parser.add_argument("--insert-ratio", type=float, default=0.1)
    parser.add_argument("--scale", type=float, default=0.2, help="dataset generation scale")
    parser.add_argument("--policy", choices=("recompute", "on_arrival"), default="recompute")
    parser.add_argument(
        "--ops", default="insert",
        help="comma-separated op mix for the stream: insert (default) or a "
        "churn workload like insert,delete,update",
    )
    parser.add_argument(
        "--delete-fraction", type=float, default=0.15,
        help="fraction of streamed facts churn-deleted per batch (with --ops delete)",
    )
    parser.add_argument(
        "--update-fraction", type=float, default=0.15,
        help="fraction of streamed facts churn-updated per batch (with --ops update)",
    )
    parser.add_argument(
        "--group-size", type=int, default=None,
        help="cascade batches coalesced per feed batch (default: ~8 feed batches)",
    )
    parser.add_argument("--epochs", type=int, default=DEFAULT_CONFIG.epochs)
    parser.add_argument("--dimension", type=int, default=DEFAULT_CONFIG.dimension)
    parser.add_argument(
        "--workers", type=int, default=0,
        help="process-pool size for the recompute solve stage (0 = in-process; "
        "embeddings are byte-identical for any value)",
    )
    parser.add_argument(
        "--output", type=Path, default=Path("BENCH_streaming.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the one-shot equivalence verification",
    )
    add_observability_options(parser)
    add_standard_options(parser)


def execute(args: argparse.Namespace) -> int:
    """Run an already parsed replay invocation."""
    import dataclasses

    from repro.service.replay import DEFAULT_CONFIG, render_report, run_streaming_replay

    config = dataclasses.replace(
        DEFAULT_CONFIG, dimension=args.dimension, epochs=args.epochs
    )
    ops = tuple(part.strip() for part in args.ops.split(",") if part.strip())
    telemetry = telemetry_from_args(args)
    try:
        report = run_streaming_replay(
            args.dataset,
            insert_ratio=args.insert_ratio,
            scale=args.scale,
            seed=args.seed,
            policy=args.policy,
            group_size=args.group_size,
            config=config,
            verify=(not args.no_verify) and args.policy == "recompute",
            ops=ops,
            delete_fraction=args.delete_fraction,
            update_fraction=args.update_fraction,
            telemetry=telemetry,
            workers=args.workers,
        )
    except ValueError as error:
        raise CLIError(str(error)) from None
    except KeyError as error:
        raise CLIError(str(error.args[0])) from None
    args.output.write_text(json.dumps(report, indent=2))
    export_observability(telemetry, args, report.get("total_apply_seconds"))
    print(render_report(report))
    print(f"\nReport written to {args.output}")
    if report.get("verified_against_one_shot") is False:
        return 1
    return 0


run = make_runner(
    "python -m repro replay",
    "Replay a dataset's insert stream through the embedding service.",
    add_arguments,
    execute,
)
"""Standalone entry: parse, replay, write the report.  Returns the exit code."""

"""``python -m repro serve`` — run the embedding service over external data.

::

    python -m repro serve --source data/ --relation TARGET \\
        --method "forward(dimension=32)" --fraction 0.2 --out store/

Ingests a CSV directory or SQLite file, holds out the tail of one relation
as an insert stream (:func:`repro.io.stream.stream_table`), trains the
chosen method on the base, then applies the stream through a live
:class:`~repro.service.service.EmbeddingService` and prints the operator
stats (throughput, apply latency, store versions).  ``--out`` persists the
final versioned store for a later restart.  Any registered method with
``partial_fit`` works under ``--policy on_arrival``; ``recompute`` (the
default) additionally needs deterministic re-extension (FoRWaRD).

With ``--port`` the final store is additionally served over the HTTP/JSON
protocol of :mod:`repro.serve` (``--serve-seconds`` bounds the serving
window; omit it to serve until interrupted)::

    python -m repro serve --source data/ --relation TARGET --port 8765

and ``--attach STORE_DIR --port N`` skips ingest/train entirely: it loads
a store persisted by an earlier ``--out`` run and serves its snapshots as
a read replica — the network face of the store's snapshot isolation.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.cli.common import (
    CLIError,
    add_ingest_options,
    add_observability_options,
    add_standard_options,
    export_observability,
    ingest_source,
    make_runner,
    telemetry_from_args,
)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Declare the subcommand's options on ``parser``."""
    parser.add_argument("--source", help="CSV directory or SQLite file to ingest (required)")
    parser.add_argument("--relation", help="relation whose tail is streamed (required)")
    parser.add_argument("--method", default="forward",
                        help='method spec (default: forward)')
    parser.add_argument("--fraction", type=float, default=0.2,
                        help="fraction of the relation to stream (default: 0.2)")
    parser.add_argument("--count", type=int, default=None,
                        help="stream exactly this many facts instead of --fraction")
    parser.add_argument("--batch-size", type=int, default=32,
                        help="facts per feed batch (default: 32)")
    parser.add_argument("--policy", choices=("recompute", "on_arrival"),
                        default="recompute")
    parser.add_argument(
        "--workers", type=int, default=0,
        help="process-pool size for the recompute solve stage (0 = in-process; "
        "embeddings are byte-identical for any value)",
    )
    parser.add_argument(
        "--index", choices=("exact", "ivf"), default=None,
        help="kNN index the store maintains (default: exact; with --attach, "
        "default is whatever the persisted store used)",
    )
    parser.add_argument("--out", help="directory to persist the final store into")
    parser.add_argument("--port", type=int, default=None,
                        help="serve the final store over HTTP/JSON on this port "
                        "(0 = pick a free one)")
    parser.add_argument("--serve-seconds", type=float, default=None,
                        help="stop serving after this many seconds "
                        "(default: until interrupted)")
    parser.add_argument("--attach", metavar="STORE_DIR", default=None,
                        help="serve a store persisted by --out instead of "
                        "ingesting/training (requires --port)")
    add_ingest_options(parser)
    add_observability_options(parser)
    add_standard_options(parser)


def _check_servable(embedder, spec: str, policy: str) -> None:
    """Refuse an unservable method *before* the (possibly long) training run.

    ``supports_on_arrival`` may be undecidable pre-fit (FoRWaRD inspects its
    fitted distribution cache); an undecidable answer counts as usable here
    — a freshly fitted model qualifies — and the service re-checks after
    fit anyway.
    """
    from repro.api import NotFittedError

    def on_arrival_possible() -> bool:
        try:
            return embedder.supports_on_arrival
        except NotFittedError:
            return True

    if not embedder.supports_partial_fit:
        raise CLIError(
            f"method spec {spec!r} does not support partial_fit and cannot be served"
        )
    if policy == "recompute" and not embedder.supports_recompute:
        if on_arrival_possible():
            raise CLIError(
                f"method spec {spec!r} does not support the 'recompute' "
                "policy; try --policy on_arrival"
            )
        raise CLIError(f"method spec {spec!r} supports no serving policy")
    if policy == "on_arrival" and not on_arrival_possible():
        if embedder.supports_recompute:
            raise CLIError(
                f"method spec {spec!r} does not support the 'on_arrival' "
                "policy; try --policy recompute"
            )
        raise CLIError(f"method spec {spec!r} supports no serving policy")


def _serve_http(store, args, telemetry) -> None:
    """Serve ``store`` over HTTP until ``--serve-seconds`` elapses (or ^C)."""
    from repro.serve import EmbeddingServer, LocalBackend, SnapshotRouter

    router = SnapshotRouter(store)
    backend = LocalBackend(router, telemetry=telemetry)
    server = EmbeddingServer(backend, port=args.port)
    server.start()
    print(
        f"serving {store.head.num_facts} embeddings "
        f"(version {store.version}, dimension {store.dimension}) at {server.url}"
    )
    print("endpoints: GET /health /stats /versions; "
          "POST /fetch /knn /slice /pin /release")
    try:
        if args.serve_seconds is not None:
            time.sleep(max(0.0, args.serve_seconds))
        else:  # pragma: no cover - interactive serving loop
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.stop()


def _attach(args: argparse.Namespace) -> int:
    """Replica mode: load a persisted store and serve its snapshots."""
    from repro.cli.common import require
    from repro.service import EmbeddingStore

    require(args, "port", "--port")
    directory = Path(args.attach)
    if not (directory / "store.json").exists():
        raise CLIError(
            f"{directory} is not a persisted store (no store.json); "
            "create one with `python -m repro serve ... --out DIR`"
        )
    store = EmbeddingStore.load(directory, index=args.index)
    telemetry = telemetry_from_args(args)
    store.set_telemetry(telemetry)
    print(
        f"attached to store {directory} at version {store.version} "
        f"(index {store.index_kind})"
    )
    _serve_http(store, args, telemetry)
    export_observability(telemetry, args, None)
    return 0


def execute(args: argparse.Namespace) -> int:
    """Run an already parsed serve invocation."""
    from repro.api import MethodSpecError, make_embedder
    from repro.cli.common import require
    from repro.evaluation.timing import latency_summary
    from repro.io.stream import stream_table
    from repro.service import EmbeddingService

    if args.attach:
        return _attach(args)
    require(args, "source", "--source")
    relation = require(args, "relation", "--relation")
    result = ingest_source(args)
    print(result.summary())
    try:
        stream = stream_table(
            result.database,
            relation,
            fraction=args.fraction,
            count=args.count,
            batch_size=args.batch_size,
        )
    except (KeyError, ValueError) as error:
        raise CLIError(str(error)) from None

    try:
        embedder = make_embedder(args.method)
    except MethodSpecError as error:
        raise CLIError(str(error)) from None
    _check_servable(embedder, args.method, args.policy)
    try:
        embedder.fit(stream.base, relation, rng=args.seed)
    except ValueError as error:
        raise CLIError(f"embedding failed: {error}") from None
    telemetry = telemetry_from_args(args)
    try:
        service = EmbeddingService(
            embedder, stream.base, policy=args.policy, seed=args.seed,
            telemetry=telemetry, workers=args.workers,
            index=args.index or "exact",
        )
    except ValueError as error:
        raise CLIError(str(error)) from None
    service.sync(stream.feed)
    stats = service.stats(stream.feed)
    latency = latency_summary(stats.apply_seconds)

    print(f"served {len(stream.feed)} feed batches ({stats.facts_inserted} facts) "
          f"with {args.method} under policy {args.policy!r}")
    print(f"{'store versions committed':<28}{stats.store_version:>12}")
    print(f"{'head / served version':<28}"
          f"{f'{stats.head_version} / {stats.served_version}':>12}  "
          f"(staleness {stats.staleness_versions})")
    print(f"{'facts embedded':<28}{stats.facts_embedded:>12}")
    print(f"{'facts / second':<28}{stats.facts_per_second:>12.1f}")
    print(f"{'apply p50 seconds':<28}{latency['p50_seconds']:>12.4f}")
    print(f"{'apply p95 seconds':<28}{latency['p95_seconds']:>12.4f}")
    print(f"{'apply p99 seconds':<28}{latency['p99_seconds']:>12.4f}")
    feed_lag = "unknown" if stats.feed_lag is None else stats.feed_lag
    print(f"{'feed lag':<28}{feed_lag:>12}")

    if args.out:
        directory = service.store.save(Path(args.out))
        print(f"store saved to {directory}")
    if args.port is not None:
        # serve before exporting so the serve-tier histograms are captured
        _serve_http(service.store, args, telemetry)
    export_observability(telemetry, args, stats.total_apply_seconds)
    return 0


run = make_runner(
    "python -m repro serve",
    "Stream an ingested relation through the online embedding service.",
    add_arguments,
    execute,
)
"""Standalone entry: parse, serve the stream, print stats."""

"""Top-level parser and dispatch of ``python -m repro``.

Builds one :mod:`argparse` tree with a subparser per subcommand module
(each contributes ``add_arguments``/``execute``), handles ``--version``,
and applies the shared config-file layer (:func:`repro.cli.common.
parse_with_config`) before dispatching.  Subcommand modules stay directly
runnable (their ``run(argv)``) so the legacy deprecation shims can forward
to them without going through the dispatcher.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.cli import bench, embed, evaluate, ingest, replay, serve, stats
from repro.cli.common import CLIError, parse_with_config

SUBCOMMANDS = {
    "ingest": (ingest, "ingest CSV/SQLite data: schema inference, embeddings, artifacts"),
    "embed": (embed, "train one embedding from a method spec and save it as .npz"),
    "serve": (serve, "stream an ingested relation through the online service"),
    "replay": (replay, "replay a dataset's insert stream (BENCH_streaming.json)"),
    "evaluate": (evaluate, "run the paper's static/dynamic experiments"),
    "bench": (bench, "run a reduced-scale benchmark suite"),
    "stats": (stats, "summarize --metrics-out/--trace observability artifacts"),
}


def build_parser() -> tuple[argparse.ArgumentParser, dict[str, argparse.ArgumentParser]]:
    """The full ``python -m repro`` parser plus its subparsers by name."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Stable tuple embeddings for dynamic databases: ingest data, "
            "train embeddings, serve them online, and reproduce the paper's "
            "experiments — all from one command."
        ),
        epilog="Run 'python -m repro <command> --help' for command options.",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", metavar="command")
    by_name: dict[str, argparse.ArgumentParser] = {}
    for name, (module, summary) in SUBCOMMANDS.items():
        sub = subparsers.add_parser(name, help=summary, description=summary)
        module.add_arguments(sub)
        sub.set_defaults(_execute=module.execute)
        by_name[name] = sub
    return parser, by_name


def main(argv: Sequence[str] | None = None) -> int:
    """Parse and dispatch one invocation; returns the exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    parser, by_name = build_parser()
    try:
        args = parser.parse_args(argv)
        if getattr(args, "_execute", None) is None:
            parser.print_help(sys.stderr)
            return 2
        args = parse_with_config(parser, argv, defaults_target=by_name[args.command])
        return args._execute(args)
    except CLIError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

"""``python -m repro embed`` — train one embedding and save it as ``.npz``.

::

    python -m repro embed --dataset mondial --scale 0.1 \\
        --method "forward(dimension=32, epochs=5)" --out embeddings.npz

Embeds a bundled/registered dataset (``--dataset``) or an external CSV
directory / SQLite file (``--source``, ingested on the fly) with any
registered method spec, and writes the resulting tuple embedding to an
``.npz`` stamped with the library version.  For datasets the prediction
attribute is masked (the paper's protocol) unless ``--no-mask`` is given;
for sources pass ``--relation`` (and optionally ``--attribute`` to mask).
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.cli.common import (
    CLIError,
    add_ingest_options,
    add_standard_options,
    checked_ingested_relation,
    checked_relation,
    ingest_source,
    load_dataset_or_error,
    make_runner,
    masked_database,
)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Declare the subcommand's options on ``parser``."""
    what = parser.add_mutually_exclusive_group()
    what.add_argument("--dataset", help="bundled or registered dataset name")
    what.add_argument("--source", help="CSV directory or SQLite file to ingest")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="dataset generation scale (datasets only)")
    parser.add_argument("--relation",
                        help="relation to embed (default: the dataset's prediction relation; "
                        "required with --source)")
    parser.add_argument("--attribute",
                        help="attribute to mask before embedding (default: the dataset's "
                        "prediction attribute)")
    parser.add_argument("--no-mask", action="store_true",
                        help="embed with the prediction attribute visible")
    parser.add_argument("--method", default="forward",
                        help='method spec, e.g. "forward(dimension=32)" (default: forward)')
    parser.add_argument("--out", default="embeddings.npz",
                        help="output .npz path (default: embeddings.npz)")
    add_ingest_options(parser)
    add_standard_options(parser)


def resolve_database(args: argparse.Namespace):
    """``(db, relation)`` from ``--dataset`` or ``--source`` flags.

    Loads (or ingests) the data, picks the relation and applies
    prediction-attribute masking; every bad name surfaces as a
    :class:`CLIError` instead of a traceback.
    """
    if args.dataset and args.source:
        raise CLIError("pass --dataset or --source, not both")
    if args.dataset:
        dataset = load_dataset_or_error(args.dataset, args.scale, args.seed)
        relation = checked_relation(
            dataset.db.schema, args.relation or dataset.prediction_relation
        )
        if args.no_mask:
            return dataset.db, relation
        if args.attribute:
            return masked_database(dataset.db, relation, args.attribute), relation
        if relation == dataset.prediction_relation:
            # the paper's protocol: hide the prediction attribute
            return dataset.masked_database(), relation
        # a non-prediction relation has no default attribute to hide
        return dataset.db, relation
    if args.source:
        if not args.relation:
            raise CLIError("--relation is required with --source")
        result = ingest_source(args)
        checked_ingested_relation(result.schema, args.relation)
        db = result.database
        if args.attribute and not args.no_mask:
            db = masked_database(db, args.relation, args.attribute)
        return db, args.relation
    raise CLIError("pass --dataset NAME or --source PATH")


def execute(args: argparse.Namespace) -> int:
    """Run an already parsed embed invocation."""
    from repro.api import MethodSpecError, make_embedder
    from repro.core.persistence import save_embedding

    db, relation = resolve_database(args)
    try:
        embedder = make_embedder(args.method)
    except MethodSpecError as error:
        raise CLIError(str(error)) from None
    try:
        embedder.fit(db, relation, rng=args.seed)
    except ValueError as error:
        raise CLIError(f"embedding failed: {error}") from None
    embedding = embedder.transform()
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    save_embedding(embedding, out)
    from repro import __version__

    print(
        f"embedded {len(embedding)} facts of {relation!r} with "
        f"{args.method} (d={embedder.dimension}, seed {args.seed}, "
        f"repro {__version__}); wrote {out}"
    )
    return 0


run = make_runner(
    "python -m repro embed",
    "Train one embedding with a registry method spec and save it.",
    add_arguments,
    execute,
)
"""Standalone entry: parse, embed, save.  Returns the exit code."""

"""The shared argument/config layer of every ``python -m repro`` subcommand.

Every subcommand gets two standard options:

* ``--config FILE`` — a JSON (or YAML, with pyyaml installed) file whose
  keys are the subcommand's long option names (dashes or underscores).
  Explicit command-line flags override file values, which override the
  built-in defaults — implemented as a second parse with the file's values
  installed as parser defaults.
* ``--seed N`` — the single RNG seed, threaded through dataset generation,
  engine sampling and model initialisation so two runs of the same spec
  are bit-identical.

:func:`parse_with_config` performs the two-pass parse; :class:`CLIError`
is the "print message, exit 2" error channel shared by all subcommands.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Callable, Sequence


class CLIError(Exception):
    """An actionable user-facing CLI failure (printed to stderr, exit 2)."""


def make_runner(
    prog: str,
    description: str,
    add_arguments: Callable[[argparse.ArgumentParser], None],
    execute: Callable[[argparse.Namespace], int],
) -> Callable[[Sequence[str] | None], int]:
    """Build a subcommand module's standalone ``run(argv)`` entry point.

    Every subcommand runs the same way — build the parser, apply the
    config layer, execute, and turn :class:`CLIError` into an ``error:``
    line with exit code 2 — so the wrapper lives here once.
    """

    def run(argv: Sequence[str] | None = None) -> int:
        parser = argparse.ArgumentParser(prog=prog, description=description)
        add_arguments(parser)
        try:
            args = parse_with_config(parser, argv)
            return execute(args)
        except CLIError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    return run


def add_ingest_options(parser: argparse.ArgumentParser) -> None:
    """The ingestion knobs shared by every subcommand that reads ``--source``."""
    parser.add_argument(
        "--overrides", help="override spec file (JSON, or YAML with pyyaml)"
    )
    parser.add_argument("--delimiter", help="CSV cell delimiter (default: comma)")
    parser.add_argument(
        "--encoding",
        help="CSV file encoding (default: utf-8-sig, which strips Excel's BOM)",
    )
    parser.add_argument(
        "--allow-dangling", action="store_true",
        help="tolerate dangling foreign-key references instead of failing",
    )


def ingest_source(args: argparse.Namespace):
    """Ingest ``args.source`` honoring the shared ingestion flags.

    One implementation for ``ingest``/``embed``/``serve``/``evaluate``:
    returns the :class:`~repro.io.pipeline.IngestResult`, turning every
    :class:`~repro.io.errors.IngestionError` into a :class:`CLIError`.
    """
    from repro.io.errors import IngestionError
    from repro.io.pipeline import ingest_path

    try:
        return ingest_path(
            args.source,
            overrides=getattr(args, "overrides", None),
            delimiter=getattr(args, "delimiter", None),
            encoding=getattr(args, "encoding", None),
            allow_dangling=getattr(args, "allow_dangling", False),
        )
    except IngestionError as error:
        raise CLIError(str(error)) from None


def load_dataset_or_error(name: str, scale: float, seed: int | None):
    """``load_dataset`` with unknown names turned into a :class:`CLIError`."""
    from repro.datasets import load_dataset

    try:
        return load_dataset(name, scale=scale, seed=seed)
    except KeyError as error:
        raise CLIError(str(error.args[0])) from None


def checked_relation(schema, relation: str) -> str:
    """``relation``, or an actionable error listing what the schema has."""
    if not schema.has_relation(relation):
        raise CLIError(
            f"unknown relation {relation!r}; available relations: "
            f"{', '.join(schema.relation_names)}"
        )
    return relation


def checked_ingested_relation(schema, relation: str) -> str:
    """Like :func:`checked_relation`, phrased for a just-ingested source."""
    if not schema.has_relation(relation):
        raise CLIError(
            f"relation {relation!r} was not ingested; "
            f"ingested relations are: {', '.join(schema.relation_names)}"
        )
    return relation


def masked_database(db, relation: str, attribute: str):
    """``db`` with ``relation.attribute`` hidden (validated first)."""
    rel_schema = db.schema.relation(relation)
    if not rel_schema.has_attribute(attribute):
        raise CLIError(
            f"relation {relation!r} has no attribute {attribute!r}; "
            f"its attributes are: {', '.join(rel_schema.attribute_names)}"
        )
    if attribute in rel_schema.key:
        raise CLIError(
            f"{attribute!r} is part of the key of {relation!r} and cannot "
            "be hidden for embedding; pick a non-key prediction attribute"
        )
    return db.mask_attribute(relation, attribute)


def add_standard_options(parser: argparse.ArgumentParser, seed: int = 0) -> None:
    """Attach the shared ``--config`` / ``--seed`` options."""
    parser.add_argument(
        "--config",
        metavar="FILE",
        help="JSON/YAML file of option defaults (keys = long option names); "
        "explicit flags override it",
    )
    parser.add_argument(
        "--seed", type=int, default=seed,
        help=f"RNG seed plumbed end-to-end (default: {seed})",
    )


def add_observability_options(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--trace`` / ``--metrics-out`` options.

    Passing either turns full telemetry on for the run (the default is the
    zero-cost no-op bundle); see ``docs/OBSERVABILITY.md``.
    """
    parser.add_argument(
        "--trace", metavar="FILE", type=Path, default=None,
        help="write a trace of the run: a .jsonl suffix gives one span "
        "record per line, anything else the Chrome trace-event JSON that "
        "chrome://tracing / Perfetto render as a flame graph",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE", type=Path, default=None,
        help="write the run's metrics (counters, gauges, latency "
        "histograms, per-stage apply breakdown, cache hit ratios) as JSON",
    )


def telemetry_from_args(args: argparse.Namespace):
    """An enabled :class:`~repro.obs.Telemetry` when the user opted in.

    Returns ``None`` (meaning: the library-level no-op default) unless
    ``--trace`` or ``--metrics-out`` was given.
    """
    from repro.obs import Telemetry

    if getattr(args, "trace", None) or getattr(args, "metrics_out", None):
        return Telemetry()
    return None


def export_observability(
    telemetry, args: argparse.Namespace, total_apply_seconds: float | None = None
) -> None:
    """Write the ``--trace`` / ``--metrics-out`` files a run asked for."""
    if telemetry is None:
        return
    trace = getattr(args, "trace", None)
    if trace:
        telemetry.tracer.export(trace)
        print(f"trace written to {trace}")
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        from repro.obs import metrics_payload

        payload = metrics_payload(telemetry, total_apply_seconds)
        Path(metrics_out).write_text(json.dumps(payload, indent=2))
        print(f"metrics written to {metrics_out}")


def load_config_file(path: str | Path) -> dict[str, Any]:
    """Load a JSON or YAML mapping of option defaults."""
    path = Path(path)
    if not path.exists():
        raise CLIError(f"config file {path} does not exist")
    text = path.read_text()
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:
            raise CLIError(
                f"config file {path} is YAML but pyyaml is not installed; "
                "install pyyaml or use a JSON config file"
            ) from None
        values = yaml.safe_load(text)
    else:
        try:
            values = json.loads(text)
        except json.JSONDecodeError as error:
            raise CLIError(f"config file {path} is not valid JSON: {error}") from None
    if not isinstance(values, dict):
        raise CLIError(
            f"config file {path} must hold a mapping of option names to "
            f"values, got {type(values).__name__}"
        )
    return values


def _option_actions(parser: argparse.ArgumentParser) -> dict[str, argparse.Action]:
    """Config-settable actions, keyed by long option name *and* dest.

    Config keys are documented as the long option names (``walk-length`` /
    ``walk_length``), which for renamed-dest options (``--samples`` →
    ``n_samples``) differ from the dest; both spellings resolve here.
    ``--config`` itself is excluded.
    """
    actions: dict[str, argparse.Action] = {}
    for action in parser._actions:  # noqa: SLF001 - argparse has no public walk
        if action.dest in ("help", "config") or action.dest is argparse.SUPPRESS:
            continue
        if not action.option_strings:
            # positionals are consumed in the first parse pass, before the
            # config file is read — defaults can never satisfy them
            continue
        actions.setdefault(action.dest, action)
        for option in action.option_strings:
            if option.startswith("--"):
                actions.setdefault(option[2:].replace("-", "_"), action)
    return actions


def _explicit_dests(
    parser: argparse.ArgumentParser, argv: Sequence[str]
) -> set[str]:
    """Dests of options the user actually typed on the command line.

    Matches exact option strings and argparse's unambiguous ``--pref``
    prefix abbreviations, so an abbreviated flag still counts as explicit.
    """
    dest_of: dict[str, str] = {}
    for action in parser._actions:  # noqa: SLF001 - argparse has no public walk
        for option in action.option_strings:
            dest_of[option] = action.dest
    explicit: set[str] = set()
    for token in argv:
        option = token.split("=", 1)[0]
        if option in dest_of:
            explicit.add(dest_of[option])
        elif option.startswith("--") and len(option) > 2:
            prefixed = {dest for opt, dest in dest_of.items() if opt.startswith(option)}
            if len(prefixed) == 1:
                explicit.add(prefixed.pop())
    return explicit


def parse_with_config(
    parser: argparse.ArgumentParser,
    argv: Sequence[str] | None,
    *,
    defaults_target: argparse.ArgumentParser | None = None,
) -> argparse.Namespace:
    """Parse ``argv``, layering ``--config`` file values under explicit flags.

    First pass parses normally; if ``--config`` was given, the file's values
    (validated against the subcommand's options, with dashes normalised to
    underscores and string values coerced through the option's ``type``)
    become parser defaults and ``argv`` is parsed again — so flags the user
    actually typed keep winning.  A typed flag also suppresses config
    defaults for the *other* members of its mutually exclusive group (e.g.
    ``--source`` on the command line beats ``dataset`` in the file).
    ``defaults_target`` is the subparser to install defaults on when
    ``parser`` is the top-level command.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    args = parser.parse_args(argv)
    target = defaults_target or parser
    # which options were actually typed (vs defaulted) — subcommands use
    # this to detect contradictions like --method plus hyper-parameter flags
    args._explicit_dests = _explicit_dests(target, argv)
    config_path = getattr(args, "config", None)
    if not config_path:
        return args
    actions = _option_actions(target)
    values = load_config_file(config_path)
    defaults: dict[str, Any] = {}
    for raw_key, value in values.items():
        action = actions.get(str(raw_key).replace("-", "_"))
        if action is None:
            raise CLIError(
                f"config file {config_path}: unknown option {raw_key!r}; "
                f"valid options: {', '.join(sorted(set(actions)))}"
            )
        if action.nargs in ("+", "*") and not isinstance(value, list):
            # a scalar for a list option is the natural spelling in a config
            # file; installing it raw would later be iterated char by char
            value = [value]

        def coerce(item, action=action, raw_key=raw_key):
            kind = action.type
            if kind is None or item is None:
                return item
            if not isinstance(kind, type):  # converter function: strings only
                return kind(item) if isinstance(item, str) else item
            if isinstance(item, kind) and not (kind is not bool and isinstance(item, bool)):
                return item
            convertible = isinstance(item, str) or (
                kind is float and isinstance(item, int) and not isinstance(item, bool)
            )
            if convertible:
                try:
                    return kind(item)
                except (TypeError, ValueError):
                    pass
            raise CLIError(
                f"config file {config_path}: option {raw_key!r} expects "
                f"{kind.__name__}, got {item!r}"
            )

        value = [coerce(item) for item in value] if isinstance(value, list) else coerce(value)
        if action.choices is not None:
            items = value if isinstance(value, list) else [value]
            for item in items:
                if item not in action.choices:
                    raise CLIError(
                        f"config file {config_path}: option {raw_key!r} must be "
                        f"one of {', '.join(map(str, action.choices))}, got {item!r}"
                    )
        defaults[action.dest] = value
    explicit = _explicit_dests(target, argv)
    for group in target._mutually_exclusive_groups:  # noqa: SLF001
        dests = [a.dest for a in group._group_actions]  # noqa: SLF001
        if any(dest in explicit for dest in dests):
            for dest in dests:
                if dest not in explicit:
                    defaults.pop(dest, None)
    target.set_defaults(**defaults)
    args = parser.parse_args(argv)
    args._explicit_dests = _explicit_dests(target, argv)
    return args


def require(args: argparse.Namespace, name: str, flag: str) -> Any:
    """Fetch an option that must be set by flag or config file."""
    value = getattr(args, name)
    if value is None:
        raise CLIError(f"{flag} is required (pass the flag or set it in --config)")
    return value

"""``python -m repro bench`` — quick version-stamped benchmark runs.

::

    python -m repro bench streaming --out results/
    python -m repro bench load --transport http --clients 128
    python -m repro bench knn --out results/

Runs one of the named benchmark suites at a reduced scale and writes its
``BENCH_*.json`` artifact (stamped with ``repro.__version__``) into the
output directory.  ``--list`` shows the suites.  The full paper-scale
harness remains ``python -m pytest benchmarks -q`` (see ``benchmarks/``);
this subcommand covers the quick, CI-sized runs.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.cli.common import (
    CLIError,
    add_observability_options,
    add_standard_options,
    export_observability,
    make_runner,
    telemetry_from_args,
)

SUITES = {
    "streaming": "Mondial insert stream through the live embedding service "
    "(throughput, latency, one-shot verification) -> BENCH_streaming.json",
    "load": "Concurrent serve-tier load test: zipfian readers vs one churn "
    "writer (qps, per-kind p50/p99, staleness, pinned bit-identity) "
    "-> BENCH_load.json",
    "knn": "kNN index ladder: IVF speedup-vs-exact and recall@10 on churned "
    "stores across Mondial scales -> BENCH_knn.json",
}


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Declare the subcommand's options on ``parser``."""
    parser.add_argument("suite", nargs="?", choices=tuple(SUITES),
                        help="benchmark suite to run")
    parser.add_argument("--list", action="store_true", help="list the available suites")
    parser.add_argument("--dataset", default="mondial", help="dataset for the streaming suite")
    parser.add_argument("--scale", type=float, default=0.15, help="dataset generation scale")
    parser.add_argument("--insert-ratio", type=float, default=0.1)
    parser.add_argument("--out", default=".", help="output directory for BENCH_*.json")
    load = parser.add_argument_group("load suite")
    load.add_argument("--transport", choices=("inproc", "http"), default="inproc",
                      help="query transport: shared backend or loopback HTTP")
    load.add_argument("--clients", type=int, default=64,
                      help="simulated logical clients (default: 64)")
    load.add_argument("--worker-threads", type=int, default=8,
                      help="reader threads the clients are multiplexed over")
    load.add_argument("--queries-per-client", type=int, default=10,
                      help="queries per client per plan round")
    load.add_argument("--zipf", type=float, default=1.1,
                      help="zipfian skew exponent of the query population")
    load.add_argument("--pinned-clients", type=int, default=4,
                      help="clients pinned to the pre-churn version (bit-identity check)")
    load.add_argument("--qps-floor", type=float, default=200.0,
                      help="asserted queries/second floor, recorded in the payload")
    load.add_argument("--index", choices=("exact", "ivf"), default="exact",
                      help="kNN index answering the load test's knn queries")
    load.add_argument("--nprobe", type=int, default=None,
                      help="ANN probe width override for --index ivf")
    knn = parser.add_argument_group("knn suite")
    knn.add_argument("--full", action="store_true",
                     help="climb the full ladder (up to 4x Mondial) instead "
                     "of the reduced rungs")
    knn.add_argument("--queries", type=int, default=None,
                     help="measured queries per rung (default: 100)")
    add_observability_options(parser)
    add_standard_options(parser)


def execute(args: argparse.Namespace) -> int:
    """Run an already parsed bench invocation."""
    if args.list or not args.suite:
        for name, summary in SUITES.items():
            print(f"{name:<12}{summary}")
        return 0 if args.list else 2
    if args.suite == "streaming":
        return _run_streaming(args)
    if args.suite == "load":
        return _run_load(args)
    if args.suite == "knn":
        return _run_knn(args)
    raise CLIError(f"unknown suite {args.suite!r}")  # pragma: no cover - argparse guards


def _run_streaming(args: argparse.Namespace) -> int:
    from repro.core.config import ForwardConfig
    from repro.service.replay import render_report, run_streaming_replay

    # Tiny hyper-parameters: the benchmark measures the serving layer, not
    # embedding quality (mirrors benchmarks/bench_streaming_service.py).
    config = ForwardConfig(
        dimension=16, n_samples=400, batch_size=1024, max_walk_length=2,
        epochs=4, learning_rate=0.02, n_new_samples=30,
    )
    telemetry = telemetry_from_args(args)
    try:
        report = run_streaming_replay(
            args.dataset,
            insert_ratio=args.insert_ratio,
            scale=args.scale,
            seed=args.seed,
            policy="recompute",
            config=config,
            telemetry=telemetry,
        )
    except KeyError as error:
        raise CLIError(str(error.args[0])) from None
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    path = out / "BENCH_streaming.json"
    path.write_text(json.dumps(report, indent=2))
    export_observability(telemetry, args, report.get("total_apply_seconds"))
    print(render_report(report))
    print(f"\nReport written to {path}")
    return 0 if report.get("verified_against_one_shot", True) else 1


def _run_load(args: argparse.Namespace) -> int:
    from repro.serve import LoadProfile, check_load, render_load, run_load_test

    # the load suite defaults to a mild churn so readers race real commits;
    # insert-ratio keeps its streaming meaning (fraction held out as feed)
    profile = LoadProfile(
        dataset=args.dataset,
        scale=args.scale,
        insert_ratio=max(args.insert_ratio, 0.2),
        seed=args.seed,
        clients=args.clients,
        worker_threads=args.worker_threads,
        queries_per_client=args.queries_per_client,
        zipf_exponent=args.zipf,
        transport=args.transport,
        pinned_clients=args.pinned_clients,
        qps_floor=args.qps_floor,
        index=args.index,
        nprobe=args.nprobe,
    )
    telemetry = telemetry_from_args(args)
    try:
        payload = run_load_test(profile, telemetry=telemetry)
    except KeyError as error:
        raise CLIError(str(error.args[0])) from None
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    path = out / "BENCH_load.json"
    path.write_text(json.dumps(payload, indent=2))
    export_observability(telemetry, args, payload.get("duration_seconds"))
    print(render_load(payload))
    print(f"\nReport written to {path}")
    return 0 if not check_load(payload) else 1


def _run_knn(args: argparse.Namespace) -> int:
    from repro.index.bench import (
        FULL_RUNGS,
        KNN_QUERIES,
        REDUCED_RUNGS,
        check_knn,
        render_knn,
        run_knn_bench,
    )

    telemetry = telemetry_from_args(args)
    try:
        payload = run_knn_bench(
            FULL_RUNGS if args.full else REDUCED_RUNGS,
            dataset=args.dataset,
            seed=args.seed,
            queries=args.queries if args.queries else KNN_QUERIES,
            telemetry=telemetry,
        )
    except KeyError as error:
        raise CLIError(str(error.args[0])) from None
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    path = out / "BENCH_knn.json"
    path.write_text(json.dumps(payload, indent=2))
    export_observability(telemetry, args, None)
    print(render_knn(payload))
    print(f"\nReport written to {path}")
    return 0 if not check_knn(payload) else 1


run = make_runner(
    "python -m repro bench",
    "Run a reduced-scale benchmark suite and write its artifact.",
    add_arguments,
    execute,
)
"""Standalone entry: parse and run the chosen suite.  Returns the exit code."""

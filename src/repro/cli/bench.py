"""``python -m repro bench`` — quick version-stamped benchmark runs.

::

    python -m repro bench streaming --out results/

Runs one of the named benchmark suites at a reduced scale and writes its
``BENCH_*.json`` artifact (stamped with ``repro.__version__``) into the
output directory.  ``--list`` shows the suites.  The full paper-scale
harness remains ``python -m pytest benchmarks -q`` (see ``benchmarks/``);
this subcommand covers the quick, CI-sized runs.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.cli.common import (
    CLIError,
    add_observability_options,
    add_standard_options,
    export_observability,
    make_runner,
    telemetry_from_args,
)

SUITES = {
    "streaming": "Mondial insert stream through the live embedding service "
    "(throughput, latency, one-shot verification) -> BENCH_streaming.json",
}


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Declare the subcommand's options on ``parser``."""
    parser.add_argument("suite", nargs="?", choices=tuple(SUITES),
                        help="benchmark suite to run")
    parser.add_argument("--list", action="store_true", help="list the available suites")
    parser.add_argument("--dataset", default="mondial", help="dataset for the streaming suite")
    parser.add_argument("--scale", type=float, default=0.15, help="dataset generation scale")
    parser.add_argument("--insert-ratio", type=float, default=0.1)
    parser.add_argument("--out", default=".", help="output directory for BENCH_*.json")
    add_observability_options(parser)
    add_standard_options(parser)


def execute(args: argparse.Namespace) -> int:
    """Run an already parsed bench invocation."""
    if args.list or not args.suite:
        for name, summary in SUITES.items():
            print(f"{name:<12}{summary}")
        return 0 if args.list else 2
    if args.suite == "streaming":
        return _run_streaming(args)
    raise CLIError(f"unknown suite {args.suite!r}")  # pragma: no cover - argparse guards


def _run_streaming(args: argparse.Namespace) -> int:
    from repro.core.config import ForwardConfig
    from repro.service.replay import render_report, run_streaming_replay

    # Tiny hyper-parameters: the benchmark measures the serving layer, not
    # embedding quality (mirrors benchmarks/bench_streaming_service.py).
    config = ForwardConfig(
        dimension=16, n_samples=400, batch_size=1024, max_walk_length=2,
        epochs=4, learning_rate=0.02, n_new_samples=30,
    )
    telemetry = telemetry_from_args(args)
    try:
        report = run_streaming_replay(
            args.dataset,
            insert_ratio=args.insert_ratio,
            scale=args.scale,
            seed=args.seed,
            policy="recompute",
            config=config,
            telemetry=telemetry,
        )
    except KeyError as error:
        raise CLIError(str(error.args[0])) from None
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    path = out / "BENCH_streaming.json"
    path.write_text(json.dumps(report, indent=2))
    export_observability(telemetry, args, report.get("total_apply_seconds"))
    print(render_report(report))
    print(f"\nReport written to {path}")
    return 0 if report.get("verified_against_one_shot", True) else 1


run = make_runner(
    "python -m repro bench",
    "Run a reduced-scale benchmark suite and write its artifact.",
    add_arguments,
    execute,
)
"""Standalone entry: parse and run the chosen suite.  Returns the exit code."""

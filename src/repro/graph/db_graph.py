"""The bipartite fact/value graph of Section IV.

Construction rules (verbatim from the paper):

* for each relation ``R``, attribute ``A`` and non-null value ``a`` occurring
  in ``R(D)``, add a value node ``u(R, A, a)``;
* for each fact ``f = R(a1, ..., ak)`` add a fact node ``v(f)`` and edges
  between ``v(f)`` and ``u(R, Ai, ai)`` for every non-null ``ai``;
* for each foreign key ``R[B1..Bl] ⊆ S[C1..Cl]``, identify ``u(R, Bi, a)``
  with ``u(S, Ci, a)`` for every value ``a``.

The identification is implemented by grouping attribute positions connected
through foreign keys with a union-find; a value node's identity is then
``(attribute-group, value)``, so two occurrences of the same value in
FK-linked columns share one node while equal values in unrelated columns do
not (the "Universal" example in the paper).

The graph supports incremental extension: :meth:`add_fact` appends nodes for
a newly inserted fact without renumbering existing nodes, which is what the
dynamic Node2Vec extension requires.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Hashable, Iterable, Sequence

import networkx as nx

from repro.db.database import Database, Fact
from repro.db.schema import Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import CompiledDatabase, WalkEngine


class _UnionFind:
    """Minimal union-find over hashable items."""

    def __init__(self) -> None:
        self._parent: dict[Hashable, Hashable] = {}

    def find(self, item: Hashable) -> Hashable:
        # Iterative two-pass find with path compression: the recursive
        # variant can exceed the interpreter recursion limit on long chains
        # of foreign-key identifications.
        parent = self._parent.setdefault(item, item)
        root = item
        while parent != root:
            root = parent
            parent = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a


class DatabaseGraph:
    """Bipartite fact/value graph with foreign-key value-node identification."""

    def __init__(
        self,
        db: Database,
        schema: Schema | None = None,
        identify_foreign_keys: bool = True,
        engine: "WalkEngine | CompiledDatabase | None" = None,
    ):
        self.db = db
        self.schema = schema or db.schema
        self.identify_foreign_keys = identify_foreign_keys
        if identify_foreign_keys:
            self._groups = self._build_attribute_groups(self.schema)
        else:
            # Ablation mode: every column keeps its own value nodes, so equal
            # values in FK-linked columns are NOT merged (Section IV argues
            # this loses the reference semantics).
            self._groups = {
                (rel.name, attr.name): (rel.name, attr.name)
                for rel in self.schema
                for attr in rel.attributes
            }
        self._node_keys: list[tuple] = []
        self._node_index: dict[tuple, int] = {}
        self._adjacency: list[list[int]] = []
        self._fact_nodes: dict[int, int] = {}
        if engine is not None:
            compiled = getattr(engine, "compiled", engine)
            if compiled.db is not db:
                raise ValueError("engine is compiled from a different database")
            compiled.refresh()
            self._build_from_compiled(compiled)
        else:
            for fact in db:
                self.add_fact(fact)

    # ------------------------------------------------------------ structure

    @staticmethod
    def _build_attribute_groups(schema: Schema) -> dict[tuple[str, str], Hashable]:
        """Map every (relation, attribute) to its FK-identification group."""
        uf = _UnionFind()
        for rel in schema:
            for attr in rel.attributes:
                uf.find((rel.name, attr.name))
        for fk in schema.foreign_keys:
            for src_attr, tgt_attr in zip(fk.source_attrs, fk.target_attrs):
                uf.union((fk.source, src_attr), (fk.target, tgt_attr))
        return {
            (rel.name, attr.name): uf.find((rel.name, attr.name))
            for rel in schema
            for attr in rel.attributes
        }

    def _build_from_compiled(self, compiled: "CompiledDatabase") -> None:
        """Construction from a compiled database's dictionary-encoded columns.

        Produces exactly the same graph — including node numbering and
        adjacency order — as per-fact :meth:`add_fact` over the whole
        database, but value nodes are resolved through per-column code
        tables, so each distinct value is hashed once per column instead of
        once per occurrence.
        """
        # per (relation, attribute): value-node index per vocabulary code,
        # filled in on first occurrence to preserve node creation order
        code_nodes: dict[tuple[str, str], list[int | None]] = {}
        columns = {
            (rel_name, attr_name): compiled_rel.columns[attr_name]
            for rel_name, compiled_rel in compiled.relations.items()
            for attr_name in compiled_rel.schema.attribute_names
        }
        for fact in self.db:
            compiled_rel = compiled.relations[fact.relation]
            row = compiled_rel.row_of[fact.fact_id]
            fact_node = self._intern_node(("fact", fact.fact_id))
            self._fact_nodes[fact.fact_id] = fact_node
            for attr_name in compiled_rel.schema.attribute_names:
                column_key = (fact.relation, attr_name)
                column = columns[column_key]
                code = column.codes[row]
                if code < 0:
                    continue
                table = code_nodes.get(column_key)
                if table is None:
                    table = [None] * len(column.vocab)
                    code_nodes[column_key] = table
                value_node = table[code]
                if value_node is None:
                    group = self._groups[column_key]
                    value_node = self._intern_node(("value", group, column.vocab[code]))
                    table[code] = value_node
                self._add_edge(fact_node, value_node)

    def _intern_node(self, key: tuple) -> int:
        index = self._node_index.get(key)
        if index is None:
            index = len(self._node_keys)
            self._node_index[key] = index
            self._node_keys.append(key)
            self._adjacency.append([])
        return index

    def _add_edge(self, a: int, b: int) -> None:
        self._adjacency[a].append(b)
        self._adjacency[b].append(a)

    # ----------------------------------------------------------- public API

    def add_fact(self, fact: Fact) -> list[int]:
        """Add the node ``v(fact)`` and its value nodes/edges.

        Returns the indices of all nodes *created* by this call (the fact
        node plus any value nodes not present before), in creation order.
        The dynamic extension uses exactly this list as the set of trainable
        (non-frozen) nodes.
        """
        if fact.fact_id in self._fact_nodes:
            return []
        before = len(self._node_keys)
        fact_node = self._intern_node(("fact", fact.fact_id))
        self._fact_nodes[fact.fact_id] = fact_node
        for attr_name, value in zip(fact.schema.attribute_names, fact.values):
            if value is None:
                continue
            group = self._groups[(fact.relation, attr_name)]
            value_node = self._intern_node(("value", group, value))
            self._add_edge(fact_node, value_node)
        return list(range(before, len(self._node_keys)))

    @property
    def num_nodes(self) -> int:
        return len(self._node_keys)

    @property
    def num_edges(self) -> int:
        return sum(len(neighbors) for neighbors in self._adjacency) // 2

    def neighbors(self, node: int) -> Sequence[int]:
        return self._adjacency[node]

    def degree(self, node: int) -> int:
        return len(self._adjacency[node])

    def fact_node(self, fact: Fact | int) -> int:
        """The graph node index of a fact (by Fact or by fact id)."""
        fact_id = fact.fact_id if isinstance(fact, Fact) else int(fact)
        return self._fact_nodes[fact_id]

    def has_fact(self, fact: Fact | int) -> bool:
        fact_id = fact.fact_id if isinstance(fact, Fact) else int(fact)
        return fact_id in self._fact_nodes

    def fact_nodes(self, facts: Iterable[Fact] | None = None) -> list[int]:
        if facts is None:
            return list(self._fact_nodes.values())
        return [self.fact_node(f) for f in facts]

    def value_node(self, relation: str, attribute: str, value: Any) -> int | None:
        """The node index of ``u(relation, attribute, value)`` if it exists."""
        group = self._groups.get((relation, attribute))
        if group is None:
            return None
        return self._node_index.get(("value", group, value))

    def node_key(self, node: int) -> tuple:
        """The descriptive key of a node (``("fact", id)`` or ``("value", ...)``)."""
        return self._node_keys[node]

    def is_fact_node(self, node: int) -> bool:
        return self._node_keys[node][0] == "fact"

    def to_networkx(self) -> nx.Graph:
        """A NetworkX view of the graph (for analysis and debugging)."""
        graph = nx.Graph()
        for index, key in enumerate(self._node_keys):
            graph.add_node(index, key=key, kind=key[0])
        for node, neighbors in enumerate(self._adjacency):
            for neighbor in neighbors:
                if neighbor >= node:
                    graph.add_edge(node, neighbor)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DatabaseGraph(nodes={self.num_nodes}, edges={self.num_edges})"

"""Graph substrate for the Node2Vec adaptation (Section IV of the paper).

The database is modelled as a bipartite graph with fact nodes ``v(f)`` and
value nodes ``u(R, A, a)``; value nodes linked by a foreign-key constraint
are identified (merged).  On top of that graph, a Node2Vec biased
second-order random-walk sampler produces the walk corpus consumed by the
skip-gram model.
"""

from repro.graph.db_graph import DatabaseGraph
from repro.graph.node2vec_walks import Node2VecWalker

__all__ = ["DatabaseGraph", "Node2VecWalker"]

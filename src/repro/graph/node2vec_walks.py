"""Node2Vec biased second-order random walks.

Implements the walk generation of Grover & Leskovec (2016) used by the
paper's Node2Vec adaptation: from the previous node ``t`` and current node
``v``, the next node ``x`` is drawn with unnormalised weight ``1/p`` when
``x == t``, ``1`` when ``x`` is a neighbour of ``t``, and ``1/q`` otherwise.
With ``p == q == 1`` the walk is a plain uniform random walk.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.graph.db_graph import DatabaseGraph
from repro.nn.corpus import WalkCorpus
from repro.utils.rng import ensure_rng


class Node2VecWalker:
    """Generates Node2Vec walks over a :class:`DatabaseGraph`."""

    def __init__(
        self,
        graph: DatabaseGraph,
        walks_per_node: int = 40,
        walk_length: int = 30,
        p: float = 1.0,
        q: float = 1.0,
        rng: int | np.random.Generator | None = None,
    ):
        if walks_per_node <= 0 or walk_length <= 0:
            raise ValueError("walks_per_node and walk_length must be positive")
        if p <= 0 or q <= 0:
            raise ValueError("p and q must be positive")
        self.graph = graph
        self.walks_per_node = int(walks_per_node)
        self.walk_length = int(walk_length)
        self.p = float(p)
        self.q = float(q)
        self.rng = ensure_rng(rng)

    # ----------------------------------------------------------------- walks

    def _next_node(self, previous: int | None, current: int) -> int | None:
        neighbors = self.graph.neighbors(current)
        if not neighbors:
            return None
        if previous is None or (self.p == 1.0 and self.q == 1.0):
            return neighbors[int(self.rng.integers(len(neighbors)))]
        previous_neighbors = set(self.graph.neighbors(previous))
        weights = np.empty(len(neighbors), dtype=np.float64)
        for i, candidate in enumerate(neighbors):
            if candidate == previous:
                weights[i] = 1.0 / self.p
            elif candidate in previous_neighbors:
                weights[i] = 1.0
            else:
                weights[i] = 1.0 / self.q
        weights /= weights.sum()
        return neighbors[int(self.rng.choice(len(neighbors), p=weights))]

    def walk_from(self, start: int) -> list[int]:
        """One walk of ``walk_length`` steps starting at ``start``."""
        walk = [start]
        previous: int | None = None
        current = start
        for _ in range(self.walk_length - 1):
            nxt = self._next_node(previous, current)
            if nxt is None:
                break
            walk.append(nxt)
            previous, current = current, nxt
        return walk

    def generate(self, start_nodes: Iterable[int] | None = None) -> WalkCorpus:
        """``walks_per_node`` walks from every start node (default: all nodes)."""
        if start_nodes is None:
            starts: Sequence[int] = range(self.graph.num_nodes)
        else:
            starts = list(start_nodes)
        walks: list[list[int]] = []
        for _ in range(self.walks_per_node):
            for start in starts:
                walks.append(self.walk_from(int(start)))
        return WalkCorpus(walks, self.graph.num_nodes)

"""The serve tier's query core: fetch/kNN/slice against routed snapshots.

:class:`LocalBackend` is the one implementation of the serving protocol;
the HTTP front end (:mod:`repro.serve.server`) and the in-process load
generator (:mod:`repro.serve.loadgen`) both call it, so a query costs the
same whichever transport carried it.  Every response is a JSON-safe dict
that names the ``version`` that answered, the writer's ``head_version``
and the resulting ``staleness`` (their difference), making the consistency
model observable per query.

Queries default to the router's latest committed version; passing
``version=`` reads a pinned/retained one instead (time travel).  ``pin``/
``release`` expose the router's leases to transports whose clients cannot
hold Python objects: a pin is keyed by its version number and refcounted
by the store underneath.

Observability: per-endpoint latency histograms ``serve.fetch.seconds``,
``serve.knn.seconds`` and ``serve.slice.seconds``, a ``serve.staleness_versions``
gauge updated on every query, and a ``serve.queries`` counter.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.obs import NULL_TELEMETRY, Telemetry
from repro.serve.router import ReaderLease, SnapshotRouter
from repro.service.store import StoreSnapshot


class LocalBackend:
    """Answers serving queries from snapshots handed out by a router.

    Thread-safe: any number of threads may query concurrently with the
    single writer committing through the underlying store.
    """

    def __init__(self, router: SnapshotRouter, *, telemetry: Telemetry | None = None):
        self.router = router
        self._pins: dict[int, list[ReaderLease]] = {}
        self._pins_lock = threading.Lock()
        self.set_telemetry(telemetry)

    def set_telemetry(self, telemetry: Telemetry | None) -> None:
        """Attach (or detach, with None) a telemetry bundle."""
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        metrics = self._telemetry.metrics
        self._h_fetch = metrics.histogram("serve.fetch.seconds")
        self._h_knn = metrics.histogram("serve.knn.seconds")
        self._h_slice = metrics.histogram("serve.slice.seconds")
        self._g_staleness = metrics.gauge("serve.staleness_versions")
        self._c_queries = metrics.counter("serve.queries")

    # ----------------------------------------------------------- resolving

    def _resolve(self, version: int | None) -> tuple[StoreSnapshot, int, int]:
        """``(snapshot, head_version, staleness)`` for one query."""
        head_version = self.router.head_version()
        if version is None:
            snapshot = self.router.latest()
        else:
            snapshot = self.router.store.snapshot(int(version))
        staleness = max(0, head_version - snapshot.version)
        self._g_staleness.set(staleness)
        return snapshot, max(head_version, snapshot.version), staleness

    def _meta(self, snapshot: StoreSnapshot, head_version: int, staleness: int) -> dict:
        return {
            "version": snapshot.version,
            "head_version": head_version,
            "staleness": staleness,
        }

    # ------------------------------------------------------------- queries

    def fetch(self, fact_ids: list[int], version: int | None = None) -> dict:
        """Batched fetch-by-fact-id; KeyError on unknown/deleted facts."""
        started = time.perf_counter()
        snapshot, head, staleness = self._resolve(version)
        vectors = snapshot.fetch([int(fid) for fid in fact_ids])
        response = self._meta(snapshot, head, staleness)
        response["fact_ids"] = [int(fid) for fid in fact_ids]
        response["vectors"] = vectors.tolist()
        self._c_queries.inc()
        self._h_fetch.observe(time.perf_counter() - started)
        return response

    def knn(
        self,
        query: int | list[float],
        k: int = 5,
        relation: str | None = None,
        version: int | None = None,
        index: str | None = None,
        nprobe: int | None = None,
    ) -> dict:
        """Top-``k`` cosine neighbours of a stored fact id or a raw vector.

        ``index`` picks the answering index per query (``"exact"`` default,
        bit-identical to the pre-index results; ``"ivf"`` when the store
        maintains one) and ``nprobe`` overrides the ANN probe width; an
        index the snapshot cannot answer raises ValueError (HTTP 400).
        """
        started = time.perf_counter()
        snapshot, head, staleness = self._resolve(version)
        if isinstance(query, (list, tuple)):
            query = np.asarray(query, dtype=np.float64)
        elif not isinstance(query, np.ndarray):
            query = int(query)
        neighbors = snapshot.nearest(
            query, k=int(k), relation=relation, index=index,
            nprobe=None if nprobe is None else int(nprobe),
        )
        response = self._meta(snapshot, head, staleness)
        response["index"] = index if index is not None else "exact"
        response["neighbors"] = [[fid, score] for fid, score in neighbors]
        self._c_queries.inc()
        self._h_knn.observe(time.perf_counter() - started)
        return response

    def slice(self, relation: str, version: int | None = None) -> dict:
        """All live facts of one relation: ids and vectors."""
        started = time.perf_counter()
        snapshot, head, staleness = self._resolve(version)
        fact_ids, vectors = snapshot.relation_slice(relation)
        response = self._meta(snapshot, head, staleness)
        response["relation"] = relation
        response["fact_ids"] = fact_ids.tolist()
        response["vectors"] = vectors.tolist()
        self._c_queries.inc()
        self._h_slice.observe(time.perf_counter() - started)
        return response

    # ------------------------------------------------------------- pinning

    def pin(self, version: int | None = None) -> dict:
        """Take a lease on ``version`` (head when None), keyed by version.

        Repeated pins of the same version stack; each must be released
        once.  Returns the pinned version and current head.
        """
        lease = self.router.lease(version)
        with self._pins_lock:
            self._pins.setdefault(lease.version, []).append(lease)
        return {
            "version": lease.version,
            "head_version": self.router.head_version(),
            "staleness": lease.staleness(),
        }

    def release(self, version: int) -> dict:
        """Release one backend-held lease on ``version`` (KeyError if none)."""
        with self._pins_lock:
            stack = self._pins[int(version)]
            lease = stack.pop()
            if not stack:
                del self._pins[int(version)]
        lease.release()
        return {"version": int(version), "released": True}

    def release_all(self) -> int:
        """Drop every backend-held lease (shutdown hook); returns #released."""
        with self._pins_lock:
            leases = [lease for stack in self._pins.values() for lease in stack]
            self._pins.clear()
        for lease in leases:
            lease.release()
        return len(leases)

    # ---------------------------------------------------------------- meta

    def versions(self) -> dict:
        """Resolvable store versions and the writer head."""
        return {
            "versions": sorted(self.router.store.versions()),
            "head_version": self.router.head_version(),
            "pinned": list(self.router.store.pinned_versions()),
        }

    def stats(self) -> dict:
        """Router bookkeeping plus the served head, JSON-safe."""
        payload = self.router.stats()
        payload["queries"] = int(self._c_queries.value)
        payload["num_facts"] = self.router.store.head.num_facts
        payload["dimension"] = self.router.store.dimension
        payload["index_kinds"] = list(self.router.store.head.index_kinds)
        index = self.router.store.index
        if index is not None:
            payload["index"] = index.stats()
        return payload

"""Concurrent serving tier: many pinned readers, one writer, one store.

This package turns the versioned :class:`~repro.service.store.EmbeddingStore`
into a query tier with an explicit consistency model:

* :mod:`repro.serve.router` — :class:`SnapshotRouter` hands readers pinned,
  refcounted snapshot leases (:class:`ReaderLease`) with a retention window
  and a GC hook, so pruning/compaction never invalidates a live reader and
  unpinned readers observe versions monotonically.
* :mod:`repro.serve.backend` — :class:`LocalBackend`, the shared query core
  (fetch / kNN / relation slice / pin / release) instrumented with
  per-endpoint latency histograms and a staleness gauge.
* :mod:`repro.serve.server` / :mod:`repro.serve.client` — a stdlib
  HTTP/JSON front end (:class:`EmbeddingServer`) and its matching
  :class:`ServeClient`, response-identical to the in-process backend.
* :mod:`repro.serve.loadgen` — the load generator behind
  ``python -m repro bench load``: zipfian-skewed concurrent clients over
  both transports, pinned bit-identity verification while a writer churns,
  and a checked ``BENCH_load.json`` report.

See ``docs/SERVING.md`` ("Concurrent serving & consistency model").
"""

from repro.serve.backend import LocalBackend
from repro.serve.client import ServeClient, ServeError
from repro.serve.loadgen import (
    LOAD_KIND,
    LOAD_SCHEMA_VERSION,
    LoadProfile,
    check_load,
    render_load,
    run_load_test,
)
from repro.serve.router import ReaderLease, SnapshotRouter
from repro.serve.server import EmbeddingServer

__all__ = [
    "LOAD_KIND",
    "LOAD_SCHEMA_VERSION",
    "EmbeddingServer",
    "LoadProfile",
    "LocalBackend",
    "ReaderLease",
    "ServeClient",
    "ServeError",
    "SnapshotRouter",
    "check_load",
    "render_load",
    "run_load_test",
]

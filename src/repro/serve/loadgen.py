"""Load generator for the serve tier: many zipfian readers, one writer.

``python -m repro bench load`` drives this module.  One run builds a small
serving stack (trained model → :class:`~repro.service.service.EmbeddingService`
→ :class:`~repro.serve.router.SnapshotRouter` →
:class:`~repro.serve.backend.LocalBackend`, optionally fronted by the HTTP
server), then

* starts a **writer thread** applying a full-CRUD churn feed through the
  service — every batch is a real embed-and-commit, exactly the production
  write path;
* simulates ``clients`` **logical clients** (≥ 64 by default) multiplexed
  over a bounded pool of reader threads, each client issuing a
  deterministic, zipfian-skewed mix of fetch / kNN / relation-slice
  queries (a fraction of the kNN ops also carry a ``relation=`` filter,
  and the profile's ``index``/``nprobe`` select the answering index —
  ``"exact"`` by default, ``"ivf"`` for an ANN profile that churns the
  maintainer through every commit).  Every client completes at least one
  full plan, and readers
  keep cycling extra rounds until the writer drains, so reads and commits
  genuinely overlap;
* dedicates the first ``pinned_clients`` clients to **pinned verification**:
  they query an explicitly pinned pre-churn version and their responses are
  compared against serially recorded references — the diff must be exactly
  0.0 (bit identity), proving snapshot isolation under concurrent commits
  and compaction;
* asserts **monotonic version observation** for unpinned clients (a client
  never sees the served version go backwards).

The result is one versioned JSON payload (``schema_version`` 1, ``kind``
``"load_test"``, written to ``benchmarks/results/BENCH_load.json`` by the
benchmark) reporting qps, per-kind p50/p99 latency, staleness
(served-version lag behind the writer head) and the verification outcome.
Like the throughput ladder, floors are recorded in the payload and enforced
by :func:`check_load`, so a stored artifact re-validates offline
(``tools/check_obs_artifacts.py``) and renders via ``python -m repro stats``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.config import ForwardConfig
from repro.core.forward import ForwardEmbedder
from repro.datasets import load_dataset
from repro.dynamic.partition import partition_dataset
from repro.engine import WalkEngine
from repro.obs import Telemetry, latency_summary
from repro.serve.backend import LocalBackend
from repro.serve.client import ServeClient
from repro.serve.router import SnapshotRouter
from repro.serve.server import EmbeddingServer
from repro.service.feed import churn_feed
from repro.service.service import EmbeddingService

LOAD_SCHEMA_VERSION = 1
LOAD_KIND = "load_test"

QUERY_KINDS = ("fetch", "knn", "slice")

#: Hyper-parameters of the served model: the load test measures the query
#: tier, so training is as small as the pipeline allows.
LOAD_CONFIG = ForwardConfig(
    dimension=16, n_samples=300, batch_size=1024, max_walk_length=2, epochs=3,
    learning_rate=0.02, n_new_samples=20,
)


@dataclass(frozen=True)
class LoadProfile:
    """One load-test configuration (JSON-safe via ``as_dict``)."""

    dataset: str = "mondial"
    scale: float = 0.2
    insert_ratio: float = 0.3
    seed: int = 0
    #: Simulated logical clients; each runs its own deterministic plan.
    clients: int = 64
    #: OS threads the logical clients are multiplexed over.
    worker_threads: int = 8
    #: Queries per client per plan round.
    queries_per_client: int = 10
    #: Zipf skew exponent over the fact popularity ranking (>= 0; 0 = uniform).
    zipf_exponent: float = 1.1
    #: Mix weights of fetch / knn / slice queries.
    query_mix: tuple[float, float, float] = (0.5, 0.35, 0.15)
    k: int = 5
    fetch_batch: int = 4
    #: ``"inproc"`` (shared backend) or ``"http"`` (loopback server + client).
    transport: str = "inproc"
    #: Leading clients pinned to the pre-churn version for bit-identity checks.
    pinned_clients: int = 4
    #: Asserted queries/second floor (recorded in the payload).
    qps_floor: float = 200.0
    delete_fraction: float = 0.2
    update_fraction: float = 0.2
    group_size: int = 2
    retention_window: int = 8
    #: Index answering the kNN queries: ``"exact"`` (default) or ``"ivf"``.
    #: The store is built with this index, so an ANN profile exercises the
    #: maintainer across every churn commit, not just one frozen view.
    index: str = "exact"
    #: Per-query probe-width override for ANN profiles (None = index default).
    nprobe: int | None = None
    #: Fraction of kNN queries that carry a ``relation=`` filter.
    knn_relation_fraction: float = 0.25

    def as_dict(self) -> dict:
        return {
            "dataset": self.dataset, "scale": self.scale,
            "insert_ratio": self.insert_ratio, "seed": self.seed,
            "clients": self.clients, "worker_threads": self.worker_threads,
            "queries_per_client": self.queries_per_client,
            "zipf_exponent": self.zipf_exponent,
            "query_mix": list(self.query_mix), "k": self.k,
            "fetch_batch": self.fetch_batch, "transport": self.transport,
            "pinned_clients": self.pinned_clients, "qps_floor": self.qps_floor,
            "delete_fraction": self.delete_fraction,
            "update_fraction": self.update_fraction,
            "group_size": self.group_size,
            "retention_window": self.retention_window,
            "index": self.index, "nprobe": self.nprobe,
            "knn_relation_fraction": self.knn_relation_fraction,
        }


def _zipf_weights(n: int, exponent: float) -> np.ndarray:
    """Normalised zipfian weights ``1/rank^s`` over ``n`` ranked items."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** -float(exponent)
    return weights / weights.sum()


def _client_plan(
    profile: LoadProfile,
    client: int,
    fact_ids: np.ndarray,
    fact_weights: np.ndarray,
    relations: list[str],
    relation_weights: np.ndarray,
) -> list[dict]:
    """The deterministic query plan of one logical client."""
    rng = np.random.default_rng([profile.seed, client])
    mix = np.asarray(profile.query_mix, dtype=np.float64)
    mix = mix / mix.sum()
    plan: list[dict] = []
    for _ in range(profile.queries_per_client):
        kind = QUERY_KINDS[int(rng.choice(len(QUERY_KINDS), p=mix))]
        if kind == "fetch":
            chosen = rng.choice(fact_ids, size=profile.fetch_batch, p=fact_weights)
            plan.append({"kind": "fetch", "fact_ids": [int(f) for f in chosen]})
        elif kind == "knn":
            fid = int(rng.choice(fact_ids, p=fact_weights))
            op = {"kind": "knn", "query": fid, "k": profile.k}
            if rng.random() < profile.knn_relation_fraction:
                op["relation"] = relations[
                    int(rng.choice(len(relations), p=relation_weights))
                ]
            plan.append(op)
        else:
            rel = relations[int(rng.choice(len(relations), p=relation_weights))]
            plan.append({"kind": "slice", "relation": rel})
    return plan


class _Transport:
    """One reader thread's query handle (in-proc backend or HTTP client)."""

    def __init__(
        self,
        backend: LocalBackend,
        server: EmbeddingServer | None,
        index: str | None = None,
        nprobe: int | None = None,
    ):
        # exact is the wire default — only name the index when it isn't
        self._index = None if index in (None, "exact") else index
        self._nprobe = nprobe
        if server is None:
            self._backend = backend
            self._client = None
        else:
            self._backend = None
            self._client = ServeClient("127.0.0.1", server.port, timeout=30.0)

    def query(self, op: dict, version: int | None) -> dict:
        target = self._client if self._client is not None else self._backend
        if op["kind"] == "fetch":
            return target.fetch(op["fact_ids"], version=version)
        if op["kind"] == "knn":
            return target.knn(
                op["query"], k=op["k"], relation=op.get("relation"),
                version=version, index=self._index, nprobe=self._nprobe,
            )
        return target.slice(op["relation"], version=version)

    def close(self) -> None:
        if self._client is not None:
            self._client.close()


@dataclass
class _ReaderResults:
    """One worker thread's private tallies (merged after the join)."""

    latencies: dict = field(default_factory=lambda: {k: [] for k in QUERY_KINDS})
    counts: dict = field(default_factory=lambda: {k: 0 for k in QUERY_KINDS})
    staleness: list = field(default_factory=list)
    pinned_queries: int = 0
    pinned_max_diff: float = 0.0
    monotonic_violations: int = 0
    errors: list = field(default_factory=list)


def _max_abs_diff(reference: dict, response: dict) -> float:
    """Max absolute numeric difference between two query responses."""
    diff = 0.0
    for key in ("vectors",):
        if key in reference:
            ref = np.asarray(reference[key], dtype=np.float64)
            got = np.asarray(response[key], dtype=np.float64)
            if ref.shape != got.shape:
                return float("inf")
            if ref.size:
                diff = max(diff, float(np.max(np.abs(ref - got))))
    if "fact_ids" in reference and list(reference["fact_ids"]) != list(
        response["fact_ids"]
    ):
        return float("inf")
    if "neighbors" in reference:
        ref_n, got_n = reference["neighbors"], response["neighbors"]
        if [fid for fid, _ in ref_n] != [fid for fid, _ in got_n]:
            return float("inf")
        for (_, a), (_, b) in zip(ref_n, got_n):
            diff = max(diff, abs(float(a) - float(b)))
    return diff


def run_load_test(
    profile: LoadProfile | None = None,
    telemetry: Telemetry | None = None,
    config: ForwardConfig | None = None,
) -> dict:
    """Run one concurrent load test and return the versioned payload.

    Floors and verification outcomes are recorded, not enforced here;
    :func:`check_load` turns them into failures so the stored artifact can
    be re-validated offline.
    """
    from repro import __version__

    profile = profile or LoadProfile()
    if profile.transport not in ("inproc", "http"):
        raise ValueError(f"unknown transport {profile.transport!r}")
    if profile.clients < 1 or profile.worker_threads < 1:
        raise ValueError("clients and worker_threads must be positive")
    if profile.index not in ("exact", "ivf"):
        raise ValueError(f"unknown index {profile.index!r}")
    config = config or LOAD_CONFIG

    # ------------------------------------------------------------- stack up
    dataset = load_dataset(profile.dataset, scale=profile.scale, seed=profile.seed)
    partition = partition_dataset(
        dataset, ratio_new=profile.insert_ratio, rng=profile.seed
    )
    started_setup = time.perf_counter()
    engine = WalkEngine(partition.db)
    model = ForwardEmbedder(
        partition.db, dataset.prediction_relation, config,
        rng=profile.seed, engine=engine,
    ).fit()
    service = EmbeddingService(
        model, partition.db, engine=engine, policy="recompute",
        seed=profile.seed, telemetry=telemetry, index=profile.index,
    )
    feed = churn_feed(
        partition,
        group_size=profile.group_size,
        delete_fraction=profile.delete_fraction,
        update_fraction=profile.update_fraction,
        rng=profile.seed,
    )
    router = SnapshotRouter(service.store, retention_window=profile.retention_window)
    service.attach_router(router)
    backend = LocalBackend(router, telemetry=telemetry)
    server = EmbeddingServer(backend).start() if profile.transport == "http" else None
    setup_seconds = time.perf_counter() - started_setup

    # --------------------------------------------- query population + plans
    base = service.store.head  # version 1: the trained baseline
    fact_ids = np.asarray(sorted(base.row_of), dtype=np.int64)
    fact_weights = _zipf_weights(fact_ids.size, profile.zipf_exponent)
    relations = sorted(set(base.relations))
    relation_weights = _zipf_weights(len(relations), profile.zipf_exponent)
    plans = [
        _client_plan(
            profile, client, fact_ids, fact_weights, relations, relation_weights
        )
        for client in range(profile.clients)
    ]
    pinned = min(profile.pinned_clients, profile.clients)

    # pin the pre-churn version and record serial reference answers for the
    # pinned clients — bit identity against these is the isolation proof
    pin_lease = router.lease()
    pinned_version = pin_lease.version
    serial = _Transport(  # uninstrumented reference, same index parameters
        LocalBackend(router), None, index=profile.index, nprobe=profile.nprobe
    )
    references = [
        [serial.query(op, pinned_version) for op in plans[client]]
        for client in range(pinned)
    ]

    # ------------------------------------------------------------ scheduler
    stop = threading.Event()
    mandatory = deque(range(profile.clients))
    schedule_lock = threading.Lock()
    extra_rounds = 0

    def next_client() -> int | None:
        nonlocal extra_rounds
        with schedule_lock:
            if mandatory:
                return mandatory.popleft()
            if stop.is_set():
                return None
            # keep every client (pinned ones included — they re-verify
            # against the same references) cycling until the writer drains
            client = extra_rounds % profile.clients
            extra_rounds += 1
            return client

    # --------------------------------------------------------------- writer
    commit_times: list[float] = []
    writer_error: list[BaseException] = []

    def writer() -> None:
        try:
            for batch in feed.read(service.last_sequence):
                service.apply(batch)
                commit_times.append(time.perf_counter())
                router.collect()
        except BaseException as exc:  # noqa: BLE001 - reported in the payload
            writer_error.append(exc)
        finally:
            stop.set()

    # -------------------------------------------------------------- readers
    results = [_ReaderResults() for _ in range(profile.worker_threads)]

    def reader(worker: int) -> None:
        mine = results[worker]
        transport = _Transport(
            backend, server, index=profile.index, nprobe=profile.nprobe
        )
        last_seen: dict[int, int] = {}  # unpinned client -> last served version
        try:
            while True:
                client = next_client()
                if client is None:
                    return
                version = pinned_version if client < pinned else None
                for index, op in enumerate(plans[client]):
                    begun = time.perf_counter()
                    try:
                        response = transport.query(op, version)
                    except Exception as exc:  # noqa: BLE001
                        mine.errors.append(f"client {client} {op['kind']}: {exc!r}")
                        continue
                    elapsed = time.perf_counter() - begun
                    mine.counts[op["kind"]] += 1
                    mine.latencies[op["kind"]].append(elapsed)
                    mine.staleness.append(int(response["staleness"]))
                    if client < pinned:
                        mine.pinned_queries += 1
                        mine.pinned_max_diff = max(
                            mine.pinned_max_diff,
                            _max_abs_diff(references[client][index], response),
                        )
                    else:
                        seen = last_seen.get(client, 0)
                        if response["version"] < seen:
                            mine.monotonic_violations += 1
                        last_seen[client] = max(seen, int(response["version"]))
        finally:
            transport.close()

    # ----------------------------------------------------------------- run
    load_started = time.perf_counter()
    writer_thread = threading.Thread(target=writer, name="repro-load-writer")
    reader_threads = [
        threading.Thread(target=reader, args=(worker,), name=f"repro-load-reader-{worker}")
        for worker in range(profile.worker_threads)
    ]
    writer_thread.start()
    for thread in reader_threads:
        thread.start()
    for thread in reader_threads:
        thread.join()
    readers_done = time.perf_counter()
    writer_thread.join()
    writer_done = time.perf_counter()
    stats = service.stats(feed)
    pin_lease.release()
    if server is not None:
        server.stop()

    # ------------------------------------------------------------- payload
    duration = readers_done - load_started
    total_queries = sum(sum(r.counts.values()) for r in results)
    overlapped = sum(1 for t in commit_times if load_started <= t <= readers_done)
    staleness_samples = [s for r in results for s in r.staleness]
    pinned_max_diff = max((r.pinned_max_diff for r in results), default=0.0)
    pinned_queries = sum(r.pinned_queries for r in results)
    per_kind = {}
    for kind in QUERY_KINDS:
        samples = [s for r in results for s in r.latencies[kind]]
        per_kind[kind] = {
            "count": sum(r.counts[kind] for r in results),
            "latency": latency_summary(samples),
        }
    payload: dict[str, Any] = {
        "schema_version": LOAD_SCHEMA_VERSION,
        "kind": LOAD_KIND,
        "repro_version": __version__,
        "profile": profile.as_dict(),
        "setup_seconds": setup_seconds,
        "duration_seconds": duration,
        "queries_total": total_queries,
        "qps": (total_queries / duration) if duration > 0 else 0.0,
        "qps_floor": profile.qps_floor,
        "per_kind": per_kind,
        "staleness": {
            "mean": float(np.mean(staleness_samples)) if staleness_samples else 0.0,
            "max": int(max(staleness_samples)) if staleness_samples else 0,
            "samples": len(staleness_samples),
        },
        "pinned_verification": {
            "version": pinned_version,
            "clients": pinned,
            "queries": pinned_queries,
            "max_abs_diff": pinned_max_diff,
            "bit_identical": pinned_max_diff == 0.0 and pinned_queries > 0,
        },
        "monotonic_violations": sum(r.monotonic_violations for r in results),
        "reader_errors": [e for r in results for e in r.errors],
        "writer": {
            "seconds": writer_done - load_started,
            "error": repr(writer_error[0]) if writer_error else None,
            "batches_applied": stats.batches_applied,
            "versions_committed": stats.store_version,
            "commits_during_load": overlapped,
            "facts_inserted": stats.facts_inserted,
            "facts_deleted": stats.facts_deleted,
            "facts_updated": stats.facts_updated,
            "head_version": stats.head_version,
            "served_version": stats.served_version,
        },
        "router": router.stats(),
    }
    return payload


def check_load(payload: dict) -> list[str]:
    """Validate a load-test payload; returns human-readable violations.

    Enforces the schema shape, the ≥64-client requirement, the qps floor,
    per-kind latency coverage, pinned bit-identity (exact 0.0), monotonic
    version observation, and that commits genuinely overlapped the reads.
    An empty list means the artifact passes.
    """
    problems: list[str] = []
    if payload.get("kind") != LOAD_KIND:
        problems.append(f"kind is {payload.get('kind')!r}, expected {LOAD_KIND!r}")
    if payload.get("schema_version") != LOAD_SCHEMA_VERSION:
        problems.append(
            f"schema_version is {payload.get('schema_version')!r}, "
            f"expected {LOAD_SCHEMA_VERSION}"
        )
    profile = payload.get("profile") or {}
    if profile.get("clients", 0) < 64:
        problems.append(
            f"only {profile.get('clients', 0)} simulated clients; need >= 64"
        )
    qps = payload.get("qps", 0.0)
    floor = payload.get("qps_floor", 0.0)
    if qps < floor:
        problems.append(f"qps {qps:.1f} is below the floor of {floor:.1f}")
    per_kind = payload.get("per_kind") or {}
    for kind in QUERY_KINDS:
        entry = per_kind.get(kind) or {}
        if entry.get("count", 0) < 1:
            problems.append(f"no {kind} queries were issued")
            continue
        latency = entry.get("latency") or {}
        for percentile in ("p50_seconds", "p99_seconds"):
            if percentile not in latency:
                problems.append(f"{kind} latency summary is missing {percentile}")
    verification = payload.get("pinned_verification") or {}
    if not verification.get("bit_identical"):
        problems.append(
            "pinned readers were not bit-identical to the serial reference "
            f"(max |diff| = {verification.get('max_abs_diff')!r} over "
            f"{verification.get('queries', 0)} queries)"
        )
    elif verification.get("max_abs_diff") != 0.0:
        problems.append(
            f"pinned max |diff| is {verification.get('max_abs_diff')!r}, expected 0.0"
        )
    if payload.get("monotonic_violations", 1) != 0:
        problems.append(
            f"{payload.get('monotonic_violations')} monotonic-version violations"
        )
    if payload.get("reader_errors"):
        problems.append(f"reader errors: {payload['reader_errors'][:3]}")
    writer = payload.get("writer") or {}
    if writer.get("error"):
        problems.append(f"writer failed: {writer['error']}")
    if writer.get("versions_committed", 0) < 2:
        problems.append("writer committed fewer than 2 store versions")
    if writer.get("commits_during_load", 0) < 1:
        problems.append("no store commit overlapped the read window")
    if "staleness" not in payload:
        problems.append("payload has no staleness block")
    return problems


def render_load(payload: dict) -> str:
    """A human-readable summary of one load-test payload."""
    profile = payload["profile"]
    writer = payload["writer"]
    verification = payload["pinned_verification"]
    lines = [
        f"Serve load test — {profile['dataset']} (scale {profile['scale']}, "
        f"transport {profile['transport']}, index {profile.get('index', 'exact')}, "
        f"{profile['clients']} clients over "
        f"{profile['worker_threads']} threads, zipf s={profile['zipf_exponent']})",
        f"{'queries':<26}{payload['queries_total']:>12}",
        f"{'duration seconds':<26}{payload['duration_seconds']:>12.3f}",
        f"{'qps':<26}{payload['qps']:>12.1f}  (floor {payload['qps_floor']:.0f})",
        f"{'kind':>8}{'count':>8}{'p50 ms':>10}{'p99 ms':>10}{'max ms':>10}",
    ]
    for kind in QUERY_KINDS:
        entry = payload["per_kind"][kind]
        latency = entry["latency"]
        lines.append(
            f"{kind:>8}{entry['count']:>8}"
            f"{latency['p50_seconds'] * 1e3:>10.2f}"
            f"{latency['p99_seconds'] * 1e3:>10.2f}"
            f"{latency['max_seconds'] * 1e3:>10.2f}"
        )
    staleness = payload["staleness"]
    lines += [
        f"{'staleness mean/max':<26}{staleness['mean']:>9.2f} / {staleness['max']}",
        f"{'writer commits (overlap)':<26}{writer['versions_committed']:>12}"
        f"  ({writer['commits_during_load']} during reads)",
        f"{'pinned bit-identity':<26}"
        f"{'OK (0.0)' if verification['bit_identical'] else 'FAILED':>12}"
        f"  (v{verification['version']}, {verification['queries']} queries)",
    ]
    problems = check_load(payload)
    lines.append(
        "floors/bars: OK" if not problems else "VIOLATIONS:\n  " + "\n  ".join(problems)
    )
    return "\n".join(lines)

"""A thin HTTP/JSON front end over :class:`~repro.serve.backend.LocalBackend`.

Stdlib-only (``http.server``): a :class:`EmbeddingServer` wraps a backend
in a ``ThreadingHTTPServer`` — one handler thread per connection, all of
them readers against immutable snapshots, so the GIL-released numpy kernels
(kNN matrix product, fetch gathers) overlap across requests while a writer
thread commits through the same store.

Protocol (all bodies JSON; responses carry ``version``/``head_version``/
``staleness`` on every query):

====================  =====================================================
``GET /health``        liveness + head version
``GET /stats``         router/backend bookkeeping
``GET /versions``      resolvable versions, head, pinned set
``POST /fetch``        ``{"fact_ids": [..], "version": v?}``
``POST /knn``          ``{"query": fid|[floats], "k": 5?, "relation": R?,
                       "version": v?, "index": "exact"|"ivf"?, "nprobe": n?}``
``POST /slice``        ``{"relation": R, "version": v?}``
``POST /pin``          ``{"version": v?}`` — lease a version (head if absent)
``POST /release``      ``{"version": v}`` — drop one lease
====================  =====================================================

Errors map to HTTP status: unknown fact/version → 404, malformed request
→ 400, anything else → 500, always with ``{"error": ...}``.  Bind with
``port=0`` to let the OS pick a free port (tests do); ``server.port``
reports the bound one.  :class:`~repro.serve.client.ServeClient` is the
matching client.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serve.backend import LocalBackend


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning server's backend."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    # headers and body go out as separate writes; without TCP_NODELAY the
    # second write stalls ~40ms behind the peer's delayed ACK (Nagle)
    disable_nagle_algorithm = True

    # the EmbeddingServer injects itself here via a subclass attribute
    embedding_server: "EmbeddingServer"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep the serving hot path quiet; telemetry covers it

    def _respond(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length == 0:
            return {}
        data = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        backend = self.embedding_server.backend
        try:
            if self.path == "/health":
                self._respond(
                    200, {"ok": True, "head_version": backend.router.head_version()}
                )
            elif self.path == "/stats":
                self._respond(200, backend.stats())
            elif self.path == "/versions":
                self._respond(200, backend.versions())
            else:
                self._respond(404, {"error": f"unknown endpoint {self.path!r}"})
        except Exception as exc:  # pragma: no cover - defensive
            self._respond(500, {"error": repr(exc)})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        backend = self.embedding_server.backend
        try:
            body = self._body()
            if self.path == "/fetch":
                result = backend.fetch(
                    body["fact_ids"], version=body.get("version")
                )
            elif self.path == "/knn":
                result = backend.knn(
                    body["query"],
                    k=body.get("k", 5),
                    relation=body.get("relation"),
                    version=body.get("version"),
                    index=body.get("index"),
                    nprobe=body.get("nprobe"),
                )
            elif self.path == "/slice":
                result = backend.slice(body["relation"], version=body.get("version"))
            elif self.path == "/pin":
                result = backend.pin(body.get("version"))
            elif self.path == "/release":
                result = backend.release(body["version"])
            else:
                self._respond(404, {"error": f"unknown endpoint {self.path!r}"})
                return
            self._respond(200, result)
        except KeyError as exc:
            self._respond(404, {"error": f"not found: {exc}"})
        except (ValueError, TypeError, json.JSONDecodeError) as exc:
            self._respond(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            self._respond(500, {"error": repr(exc)})


class EmbeddingServer:
    """Serves a backend over HTTP from a daemon thread.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    construction.  ``start()``/``stop()`` are idempotent; ``stop()`` also
    releases every lease HTTP clients still hold.  Usable as a context
    manager.
    """

    def __init__(
        self,
        backend: LocalBackend,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.backend = backend
        handler = type("_BoundHandler", (_Handler,), {"embedding_server": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The actually-bound port (resolves ``port=0`` requests)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "EmbeddingServer":
        """Begin serving from a background daemon thread."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-serve-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving, close the socket and release client-held leases."""
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()
        self.backend.release_all()

    def __enter__(self) -> "EmbeddingServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EmbeddingServer(url={self.url!r})"

"""Snapshot routing: leases that pin store versions for concurrent readers.

The store already gives us the hard part of a many-readers/one-writer tier
for free — every commit is an immutable :class:`~repro.service.store.StoreSnapshot`
— but a reader still needs two guarantees the raw store does not provide on
its own:

* **Resolvability.**  The service prunes old versions after every commit;
  a reader that resolved version ``v`` a moment ago must still be able to
  re-resolve (and keep querying) ``v`` while it holds a lease, no matter
  how far the writer has advanced or how many compactions have run.
* **Monotonicity.**  A reader that follows the head must never observe the
  version number going backwards.

:class:`SnapshotRouter` provides both.  ``lease()`` pins a version in the
store (refcounted) and hands back a :class:`ReaderLease` whose snapshot
stays bit-identical for the lease's lifetime; ``latest()`` returns the
current head and enforces monotonic observation.  The router also raises
the store's ``retention_window`` so the last few committed versions stay
addressable for time-travel reads even *before* anyone pins them, and
:meth:`collect` is the GC hook that prunes everything older and unpinned.
"""

from __future__ import annotations

import threading

from repro.service.store import EmbeddingStore, StoreSnapshot


class ReaderLease:
    """A pinned, released-once handle on one immutable store version.

    Obtained from :meth:`SnapshotRouter.lease`; usable as a context manager.
    While the lease is live, ``snapshot`` answers fetch/kNN/slice queries
    bit-identically to the moment the lease was taken, and the pinned
    version can be re-resolved by number from any thread.  ``release()``
    is idempotent.
    """

    __slots__ = ("_router", "snapshot", "_released", "_lock")

    def __init__(self, router: "SnapshotRouter", snapshot: StoreSnapshot):
        self._router = router
        self.snapshot = snapshot
        self._released = False
        self._lock = threading.Lock()

    @property
    def version(self) -> int:
        """The pinned store version this lease resolves."""
        return self.snapshot.version

    @property
    def released(self) -> bool:
        return self._released

    def staleness(self) -> int:
        """How many versions the writer head is ahead of this lease."""
        return self._router.staleness_of(self.version)

    def release(self) -> None:
        """Drop this lease's pin (idempotent)."""
        with self._lock:
            if self._released:
                return
            self._released = True
        self._router._release(self.version)

    def __enter__(self) -> "ReaderLease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "released" if self._released else "live"
        return f"ReaderLease(version={self.version}, {state})"


class SnapshotRouter:
    """Hands readers pinned snapshot versions while one writer commits.

    ``retention_window`` is the number of trailing versions kept resolvable
    beyond pinned ones (the router installs it as the store's pruning
    floor), so a reader may lease a slightly-stale version explicitly —
    time travel within the window — and unpinned recent versions survive
    the service's per-commit prune.

    Thread-safe: leases may be taken and released from any thread while
    the (single) writer commits and prunes concurrently.
    """

    def __init__(self, store: EmbeddingStore, *, retention_window: int = 8):
        if retention_window < 1:
            raise ValueError("retention_window must be at least 1")
        self.store = store
        self.retention_window = int(retention_window)
        store.retention_window = max(store.retention_window, self.retention_window)
        self._lock = threading.Lock()
        self._last_observed = store.version
        self._leases_taken = 0
        self._leases_released = 0

    # ------------------------------------------------------------- reading

    def latest(self) -> StoreSnapshot:
        """The newest committed snapshot; observation is monotonic.

        Unpinned readers call this per query: the returned version number
        never decreases across calls, even when interleaved with commits.
        """
        snapshot = self.store.head
        with self._lock:
            if snapshot.version < self._last_observed:
                # never hand out an older head than one already observed
                snapshot = self.store.snapshot(self._last_observed)
            else:
                self._last_observed = snapshot.version
        return snapshot

    def lease(self, version: int | None = None) -> ReaderLease:
        """Pin and return a lease on ``version`` (the head when ``None``).

        Raises ``KeyError`` if the requested version has already been
        pruned or never existed.
        """
        snapshot = self.store.pin(version)
        with self._lock:
            self._leases_taken += 1
            if snapshot.version > self._last_observed:
                self._last_observed = snapshot.version
        return ReaderLease(self, snapshot)

    def _release(self, version: int) -> None:
        self.store.release(version)
        with self._lock:
            self._leases_released += 1

    # ----------------------------------------------------------- staleness

    def head_version(self) -> int:
        """The writer's newest committed version."""
        return self.store.version

    def served_version(self) -> int:
        """The newest version any reader has observed so far.

        Together with :meth:`head_version` this makes staleness computable
        without reaching into store internals (``ServiceStats`` reports
        both).
        """
        with self._lock:
            return self._last_observed

    def staleness_of(self, version: int) -> int:
        """Version lag of ``version`` behind the writer head (>= 0)."""
        return max(0, self.store.version - int(version))

    # ------------------------------------------------------------------ GC

    def collect(self) -> int:
        """Prune versions outside the retention window; returns #dropped.

        Pinned versions always survive (the store skips them), so GC can
        run at any time — even from the writer thread between commits —
        without invalidating a live lease.
        """
        return self.store.prune(keep_last=self.retention_window)

    def stats(self) -> dict:
        """Router bookkeeping as a JSON-safe dict."""
        with self._lock:
            taken, released = self._leases_taken, self._leases_released
        return {
            "head_version": self.head_version(),
            "retained_versions": len(self.store.versions()),
            "pinned_versions": list(self.store.pinned_versions()),
            "retention_window": self.retention_window,
            "leases_taken": taken,
            "leases_released": released,
            "leases_live": taken - released,
        }

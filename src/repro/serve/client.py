"""HTTP client for the serve tier — the remote face of ``LocalBackend``.

:class:`ServeClient` mirrors the :class:`~repro.serve.backend.LocalBackend`
method-for-method and returns the same JSON dicts, so callers (the load
generator, replica processes attaching to a served store, tests) can swap
the in-process and networked transports without code changes.  Stdlib-only
(``http.client``); each client owns one persistent connection, so use one
client per thread — connections are not thread-safe.

Floats survive the HTTP round trip exactly: both ends serialise with
Python's ``repr``-based JSON float encoding, which round-trips IEEE-754
doubles losslessly, so a pinned remote reader sees results bit-identical
to a local reader of the same version.
"""

from __future__ import annotations

import json
import socket
from http.client import HTTPConnection


class ServeError(RuntimeError):
    """A non-2xx response from the serve tier; carries the HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """Talks to an :class:`~repro.serve.server.EmbeddingServer`.

    Not thread-safe: give each reader thread its own client (they each
    keep one persistent connection).  Usable as a context manager.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8765, timeout: float = 10.0):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._conn: HTTPConnection | None = None

    # ----------------------------------------------------------- transport

    def _connection(self) -> HTTPConnection:
        if self._conn is None:
            self._conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
            self._conn.connect()
            # small request/response pairs on a keep-alive connection: never
            # let Nagle hold a packet back waiting for a delayed ACK
            self._conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
        return self._conn

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        payload = None
        headers = {}
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn = self._connection()
        try:
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = response.read()
        except (ConnectionError, OSError):
            # stale keep-alive connection: reconnect once
            self.close()
            conn = self._connection()
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = response.read()
        result = json.loads(data.decode("utf-8")) if data else {}
        if response.status >= 300:
            raise ServeError(response.status, str(result.get("error", result)))
        return result

    def close(self) -> None:
        """Close the persistent connection (reopened lazily on next call)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- queries

    def health(self) -> dict:
        """Liveness probe; includes the writer's head version."""
        return self._request("GET", "/health")

    def stats(self) -> dict:
        """Server-side router/backend bookkeeping."""
        return self._request("GET", "/stats")

    def versions(self) -> dict:
        """Resolvable versions, head and pinned set."""
        return self._request("GET", "/versions")

    def fetch(self, fact_ids: list[int], version: int | None = None) -> dict:
        """Batched fetch-by-fact-id at ``version`` (latest when None)."""
        body: dict = {"fact_ids": [int(fid) for fid in fact_ids]}
        if version is not None:
            body["version"] = int(version)
        return self._request("POST", "/fetch", body)

    def knn(
        self,
        query: int | list[float],
        k: int = 5,
        relation: str | None = None,
        version: int | None = None,
        index: str | None = None,
        nprobe: int | None = None,
    ) -> dict:
        """Top-``k`` cosine neighbours of a fact id or raw vector.

        ``index``/``nprobe`` select and tune the answering index per query
        (exact default; HTTP 400 when the server cannot answer ``index``).
        """
        body: dict = {"query": query, "k": int(k)}
        if relation is not None:
            body["relation"] = relation
        if version is not None:
            body["version"] = int(version)
        if index is not None:
            body["index"] = index
        if nprobe is not None:
            body["nprobe"] = int(nprobe)
        return self._request("POST", "/knn", body)

    def slice(self, relation: str, version: int | None = None) -> dict:
        """All live facts of one relation."""
        body: dict = {"relation": relation}
        if version is not None:
            body["version"] = int(version)
        return self._request("POST", "/slice", body)

    # ------------------------------------------------------------- pinning

    def pin(self, version: int | None = None) -> dict:
        """Lease ``version`` (head when None) server-side; returns it."""
        body = {} if version is None else {"version": int(version)}
        return self._request("POST", "/pin", body)

    def release(self, version: int) -> dict:
        """Drop one server-side lease on ``version``."""
        return self._request("POST", "/release", {"version": int(version)})

"""Nested-span tracing on monotonic clocks, exportable to JSONL and Chrome.

:class:`Tracer` hands out context-managed spans::

    tracer = Tracer()
    with tracer.span("service.apply", batch_id="b1"):
        with tracer.span("service.apply.embed"):
            ...

Spans nest through a per-thread stack, so concurrently traced threads never
see each other's parents; finished spans are appended to one shared,
lock-protected record list.  All clocks are ``time.perf_counter`` —
monotonic and sub-microsecond — with start times reported relative to the
tracer's creation, so a trace is self-contained and immune to wall-clock
jumps.

A *disabled* tracer (``Tracer(enabled=False)`` — what
:data:`repro.obs.NULL_TELEMETRY` carries) returns one shared no-op span
handle from :meth:`Tracer.span` and records nothing, so instrumented hot
paths cost a method call and nothing else when observability is off.

Two export formats cover the two ways people read traces:

* :meth:`Tracer.export_jsonl` — one JSON object per span, loadable back
  with :func:`load_jsonl` (lossless round trip);
* :meth:`Tracer.export_chrome` — the Chrome trace-event format
  (``{"traceEvents": [...]}``) that ``chrome://tracing`` / Perfetto render
  as a flame graph.

:meth:`Tracer.export` dispatches on the file suffix (``.jsonl`` → JSONL,
anything else → Chrome JSON).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from itertools import count
from pathlib import Path


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: name, timing, position in the span tree."""

    span_id: int
    parent_id: int | None
    name: str
    start: float
    """Seconds since the tracer's creation (monotonic clock)."""
    duration: float
    depth: int
    """Nesting depth at entry (0 for root spans of a thread)."""
    thread_id: int
    attrs: dict

    def to_json(self) -> dict:
        """A JSON-safe dict with one key per field (JSONL line payload)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "depth": self.depth,
            "thread_id": self.thread_id,
            "attrs": self.attrs,
        }


class _NullSpan:
    """The shared no-op span handle of a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """A live span between ``__enter__`` and ``__exit__`` (one per use)."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "depth", "_start")

    def __init__(self, tracer: "Tracer", span_id: int, name: str, attrs: dict):
        self._tracer = tracer
        self.span_id = span_id
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> "_ActiveSpan":
        """Attach (or overwrite) span attributes; chainable."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_ActiveSpan":
        stack = self._tracer._thread_stack()
        parent = stack[-1] if stack else None
        self.parent_id = parent.span_id if parent is not None else None
        self.depth = len(stack)
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        end = time.perf_counter()
        tracer = self._tracer
        stack = tracer._thread_stack()
        # tolerate mismatched exits (an inner span leaked by an exception
        # path): unwind down to this span, never past it
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        tracer._record(
            SpanRecord(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                start=self._start - tracer._origin,
                duration=end - self._start,
                depth=self.depth,
                thread_id=threading.get_ident(),
                attrs=dict(self.attrs),
            )
        )
        return False


class Tracer:
    """Thread-safe producer of nested :class:`SpanRecord` trees.

    One tracer per process (or per run) is the intended granularity; spans
    from any number of threads interleave safely.  When constructed with
    ``enabled=False`` every :meth:`span` call returns the shared no-op
    handle and nothing is ever recorded.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._origin = time.perf_counter()
        self._records: list[SpanRecord] = []
        self._lock = threading.Lock()
        self._ids = count(1)
        self._local = threading.local()

    def _thread_stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    # ------------------------------------------------------------ producing

    def span(self, name: str, **attrs):
        """A context-managed span named ``name`` with initial attributes.

        Nested use builds the parent/child tree; the handle's ``set()``
        attaches further attributes while the span is open.
        """
        if not self.enabled:
            return NULL_SPAN
        return _ActiveSpan(self, next(self._ids), name, attrs)

    # ------------------------------------------------------------ consuming

    def spans(self) -> tuple[SpanRecord, ...]:
        """A snapshot of every finished span, in completion order."""
        with self._lock:
            return tuple(self._records)

    def clear(self) -> None:
        """Drop all finished spans (open spans are unaffected)."""
        with self._lock:
            self._records.clear()

    def export_jsonl(self, path: str | Path) -> Path:
        """Write one JSON object per span; lossless (see :func:`load_jsonl`)."""
        path = Path(path)
        lines = [json.dumps(record.to_json()) for record in self.spans()]
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path

    def export_chrome(self, path: str | Path) -> Path:
        """Write the Chrome trace-event JSON (open in ``chrome://tracing``).

        Every span becomes one complete ("ph": "X") event with microsecond
        timestamps; span attributes travel in ``args``.
        """
        path = Path(path)
        events = [
            {
                "name": record.name,
                "ph": "X",
                "ts": record.start * 1e6,
                "dur": record.duration * 1e6,
                "pid": 0,
                "tid": record.thread_id,
                "args": record.attrs,
            }
            for record in sorted(self.spans(), key=lambda r: r.start)
        ]
        path.write_text(json.dumps({"traceEvents": events}, indent=1))
        return path

    def export(self, path: str | Path) -> Path:
        """Export dispatching on suffix: ``.jsonl`` → JSONL, else Chrome JSON."""
        path = Path(path)
        if path.suffix.lower() == ".jsonl":
            return self.export_jsonl(path)
        return self.export_chrome(path)


def load_jsonl(path: str | Path) -> list[SpanRecord]:
    """Read spans written by :meth:`Tracer.export_jsonl` back as records."""
    records: list[SpanRecord] = []
    for line in Path(path).read_text().splitlines():
        if not line.strip():
            continue
        payload = json.loads(line)
        records.append(SpanRecord(**payload))
    return records

"""Well-known-name summaries: stage breakdowns, cache ratios, payloads.

The tracer/metrics/profiler core is name-agnostic; this module knows the
names the instrumented layers actually use (see ``docs/OBSERVABILITY.md``)
and reshapes a :class:`~repro.obs.Telemetry` into the JSON blocks the
benchmarks, the ``--metrics-out`` file and ``BENCH_*.json`` reports embed:

* :func:`stage_breakdown` — the service's per-batch apply stages
  (decode → engine_sync → embed → store_commit) with inclusive/exclusive
  seconds and each stage's fraction of total apply wall time, plus
  ``coverage`` (how much of the apply time the stages account for — the
  regression guard asserts ≥ 0.9);
* :func:`cache_hit_ratios` — per-kind engine cache hit ratios from the
  ``engine.cache.<kind>.{hits,misses}`` counters (plus append-``extends``
  where the kind supports them);
* :func:`pipeline_breakdown` — the batched extension pipeline inside the
  embed stage (prepare → assemble → solve), with its share of the embed
  stage's inclusive time;
* :func:`serve_endpoint_latencies` — the serve tier's per-endpoint
  (``fetch``/``knn``/``slice``) latency summaries, staleness gauge and
  query count, embedded when a serving layer ran;
* :func:`observability_report` — both of the above;
* :func:`metrics_payload` — the full ``--metrics-out`` file content
  (registry snapshot + the derived blocks), validated by
  ``tools/check_obs_artifacts.py``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Telemetry

#: The engine cache kinds counted by :class:`~repro.engine.engine.WalkEngine`.
ENGINE_CACHE_KINDS = ("step", "mass", "dest", "attr", "column", "row")

#: The per-batch apply stages of :meth:`EmbeddingService.apply`.
SERVICE_STAGES = (
    "service.apply.decode",
    "service.apply.engine_sync",
    "service.apply.embed",
    "service.apply.store_commit",
)

#: The batched extension pipeline stages inside ``service.apply.embed``
#: (see :meth:`ForwardDynamicExtender.extend_batch`).
PIPELINE_STAGES = (
    "service.embed.prepare",
    "service.embed.assemble",
    "service.embed.solve",
)

#: The serve tier's query endpoints (see :class:`repro.serve.LocalBackend`).
SERVE_ENDPOINTS = ("fetch", "knn", "slice")


def stage_breakdown(
    telemetry: "Telemetry", total_apply_seconds: float | None = None
) -> dict:
    """Per-stage apply-time attribution from the profiler's accumulators.

    ``total_apply_seconds`` is the denominator for the fractions (the
    service's summed per-batch apply latencies); when omitted it falls back
    to the exact sum of the ``service.apply.seconds`` histogram.
    """
    report = telemetry.profiler.report()
    if total_apply_seconds is None:
        histograms = telemetry.metrics.snapshot()["histograms"]
        total_apply_seconds = histograms.get("service.apply.seconds", {}).get(
            "sum_seconds", 0.0
        )
    stages: dict[str, dict] = {}
    covered = 0.0
    for name in SERVICE_STAGES:
        totals = report.get(name)
        if totals is None:
            continue
        covered += totals["inclusive_seconds"]
        stages[name] = {
            **totals,
            "fraction_of_apply": (
                totals["inclusive_seconds"] / total_apply_seconds
                if total_apply_seconds > 0
                else 0.0
            ),
        }
    return {
        "stages": stages,
        "total_apply_seconds": float(total_apply_seconds),
        "coverage": (
            covered / total_apply_seconds if total_apply_seconds > 0 else 0.0
        ),
    }


def cache_hit_ratios(telemetry: "Telemetry") -> dict[str, dict]:
    """Hit/miss counts and ratio per engine cache kind (only kinds touched).

    Reads a snapshot rather than get-or-creating counters, so summarizing
    never plants zero-valued instruments into the registry.
    """
    counters = telemetry.metrics.snapshot()["counters"]
    ratios: dict[str, dict] = {}
    for kind in ENGINE_CACHE_KINDS:
        hits = counters.get(f"engine.cache.{kind}.hits", 0)
        misses = counters.get(f"engine.cache.{kind}.misses", 0)
        if hits + misses == 0:
            continue
        entry = {
            "hits": hits,
            "misses": misses,
            "hit_ratio": hits / (hits + misses),
        }
        extends = counters.get(f"engine.cache.{kind}.extends", 0)
        if extends:
            # append-extensions are neither hits nor misses (the cached rows
            # were reused, but new rows were computed); reported separately
            # so hit_ratio keeps its hits/(hits+misses) meaning
            entry["extends"] = extends
        ratios[kind] = entry
    return ratios


def pipeline_breakdown(telemetry: "Telemetry") -> dict:
    """The batched embed pipeline: per-stage seconds inside the embed stage.

    ``coverage`` is the pipeline's share of the ``service.apply.embed``
    inclusive time — the regression guard asserts ≥ 0.9 whenever the
    recompute policy ran, i.e. the three stages account for (almost) all of
    the embed stage's wall time.
    """
    report = telemetry.profiler.report()
    stages: dict[str, dict] = {}
    covered = 0.0
    for name in PIPELINE_STAGES:
        totals = report.get(name)
        if totals is None:
            continue
        covered += totals["inclusive_seconds"]
        stages[name] = dict(totals)
    embed = report.get("service.apply.embed", {})
    embed_seconds = embed.get("inclusive_seconds", 0.0)
    return {
        "stages": stages,
        "embed_seconds": float(embed_seconds),
        "coverage": covered / embed_seconds if embed_seconds > 0 else 0.0,
    }


def serve_endpoint_latencies(telemetry: "Telemetry") -> dict:
    """The serve tier's per-endpoint latency summaries and staleness gauge.

    Reads the ``serve.<endpoint>.seconds`` histograms the
    :class:`~repro.serve.backend.LocalBackend` records per query, the
    ``serve.staleness_versions`` gauge (version lag of the last answered
    query behind the writer head) and the ``serve.queries`` counter.
    Returns ``{}`` when no serve-tier query was recorded, so payloads of
    runs without a serving layer stay unchanged.
    """
    snapshot = telemetry.metrics.snapshot()
    histograms = snapshot["histograms"]
    endpoints: dict[str, dict] = {}
    for endpoint in SERVE_ENDPOINTS:
        summary = histograms.get(f"serve.{endpoint}.seconds")
        if summary and summary.get("count"):
            endpoints[endpoint] = summary
    if not endpoints:
        return {}
    return {
        "endpoints": endpoints,
        "staleness_versions": snapshot["gauges"].get("serve.staleness_versions"),
        "queries": snapshot["counters"].get("serve.queries", 0),
    }


def observability_report(
    telemetry: "Telemetry", total_apply_seconds: float | None = None
) -> dict:
    """The block ``BENCH_streaming.json``/``BENCH_churn.json`` embed."""
    breakdown = stage_breakdown(telemetry, total_apply_seconds)
    report = {
        "stages": breakdown["stages"],
        "stage_coverage": breakdown["coverage"],
        "total_apply_seconds": breakdown["total_apply_seconds"],
        "cache_hit_ratios": cache_hit_ratios(telemetry),
    }
    pipeline = pipeline_breakdown(telemetry)
    if pipeline["stages"]:
        report["pipeline"] = pipeline
    return report


def metrics_payload(
    telemetry: "Telemetry", total_apply_seconds: float | None = None
) -> dict:
    """The full ``--metrics-out`` file: registry snapshot + derived blocks."""
    from repro import __version__

    payload = {"repro_version": __version__}
    payload.update(telemetry.metrics.snapshot())
    breakdown = stage_breakdown(telemetry, total_apply_seconds)
    payload["stages"] = breakdown["stages"]
    payload["stage_coverage"] = breakdown["coverage"]
    payload["cache_hit_ratios"] = cache_hit_ratios(telemetry)
    pipeline = pipeline_breakdown(telemetry)
    if pipeline["stages"]:
        payload["pipeline"] = pipeline
    serve = serve_endpoint_latencies(telemetry)
    if serve:
        payload["serve"] = serve
    return payload

"""Stage profiling: inclusive/exclusive wall time attributed per stage.

:class:`StageProfiler` is the cheap complement to the tracer: instead of
recording every span it *accumulates* per-stage totals, so a hot function
wrapped in a stage costs two clock reads and a dict update no matter how
often it runs.  Stages nest::

    profiler = StageProfiler()
    with profiler.stage("apply"):
        with profiler.stage("apply.embed"):
            ...

and the report attributes time both ways: *inclusive* (the stage and
everything nested under it) and *exclusive* (the stage minus its nested
stages), which is what you need to find where the time actually goes —
a stage whose exclusive time ≈ its inclusive time is itself the hot spot,
not a wrapper around one.

:meth:`StageProfiler.wrap` decorates a function so every call runs inside
a stage.  A disabled profiler (``StageProfiler(enabled=False)``) hands out
one shared no-op stage and reports nothing.
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Callable


class _NullStage:
    """Shared no-op stage of a disabled profiler."""

    __slots__ = ()

    def __enter__(self) -> "_NullStage":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_STAGE = _NullStage()


class _Stage:
    """One live stage activation (context manager, one per use)."""

    __slots__ = ("_profiler", "name", "_start", "_child_seconds")

    def __init__(self, profiler: "StageProfiler", name: str):
        self._profiler = profiler
        self.name = name
        self._child_seconds = 0.0

    def __enter__(self) -> "_Stage":
        self._profiler._thread_stack().append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        inclusive = time.perf_counter() - self._start
        stack = self._profiler._thread_stack()
        while stack and stack[-1] is not self:  # unwind leaked inner stages
            stack.pop()
        if stack:
            stack.pop()
        if stack:
            stack[-1]._child_seconds += inclusive
        self._profiler._accumulate(self.name, inclusive, inclusive - self._child_seconds)
        return False


class StageProfiler:
    """Accumulates inclusive/exclusive wall time per named stage."""

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._totals: dict[str, list] = {}  # name -> [calls, inclusive, exclusive]
        self._lock = threading.Lock()
        self._local = threading.local()

    def _thread_stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _accumulate(self, name: str, inclusive: float, exclusive: float) -> None:
        with self._lock:
            totals = self._totals.get(name)
            if totals is None:
                self._totals[name] = [1, inclusive, exclusive]
            else:
                totals[0] += 1
                totals[1] += inclusive
                totals[2] += exclusive

    def stage(self, name: str):
        """A context-managed stage; nested stages subtract from ``exclusive``."""
        if not self.enabled:
            return NULL_STAGE
        return _Stage(self, name)

    def wrap(self, name: str | None = None) -> Callable:
        """Decorator running every call of the function inside a stage."""

        def decorate(fn: Callable) -> Callable:
            stage_name = name if name is not None else fn.__qualname__

            @functools.wraps(fn)
            def wrapped(*args, **kwargs):
                with self.stage(stage_name):
                    return fn(*args, **kwargs)

            return wrapped

        return decorate

    def report(self) -> dict[str, dict[str, float]]:
        """Per-stage totals: ``{name: {calls, inclusive_seconds, exclusive_seconds}}``."""
        with self._lock:
            return {
                name: {
                    "calls": totals[0],
                    "inclusive_seconds": totals[1],
                    "exclusive_seconds": totals[2],
                }
                for name, totals in sorted(self._totals.items())
            }

    def clear(self) -> None:
        """Reset every accumulated total (open stages are unaffected)."""
        with self._lock:
            self._totals.clear()

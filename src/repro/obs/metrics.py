"""Named counters, gauges and latency histograms behind one registry.

:class:`MetricsRegistry` is the single metrics surface of the repository:
every instrumented layer (engine, service, store, CLI drivers) get-or-
creates its instruments by name, so two components naming the same metric
share one instrument and a snapshot of the registry is a complete picture
of the process.

Three instrument kinds cover everything the serving/engine layers need:

* :class:`Counter` — monotonically increasing event count (cache hits,
  facts inserted, bytes copied);
* :class:`Gauge` — last-written value, possibly ``None`` for "unknown"
  (feed lag with no feed attached, tombstone ratio);
* :class:`Histogram` — a latency sample with streaming percentile
  summaries.  Count/sum/max are exact over every observation; percentiles
  are computed over a bounded reservoir (uniform reservoir sampling once
  the capacity is exceeded — exact below it) through
  :func:`latency_summary`, the repository's **single** percentile
  implementation, which moved here from ``repro.evaluation.timing`` (that
  module re-exports it unchanged).

A registry constructed with ``enabled=False`` (what
:data:`repro.obs.NULL_TELEMETRY` carries) hands out shared no-op
instruments and snapshots to empty dicts, so instrumented code pays one
no-op method call per event when observability is off.
"""

from __future__ import annotations

import random
import threading
from typing import Sequence

import numpy as np


def latency_summary(seconds: Sequence[float]) -> dict[str, float]:
    """Summary statistics of a latency sample (count/p50/p95/p99/mean/max).

    The serving layer reports per-batch apply latencies through this helper
    so the streaming/churn benchmarks and the replay CLI emit identical
    fields.  Non-finite samples (NaN/inf — a clock that went backwards, a
    crashed probe) are dropped before aggregation so one bad sample cannot
    poison every percentile; ``count`` reports the samples actually used.
    An empty (or all-invalid) sample yields all zeros.
    """
    values = np.asarray(list(seconds), dtype=np.float64)
    values = values[np.isfinite(values)]
    if values.size == 0:
        return {
            "count": 0,
            "mean_seconds": 0.0,
            "p50_seconds": 0.0,
            "p95_seconds": 0.0,
            "p99_seconds": 0.0,
            "max_seconds": 0.0,
        }
    return {
        "count": int(values.size),
        "mean_seconds": float(values.mean()),
        "p50_seconds": float(np.percentile(values, 50)),
        "p95_seconds": float(np.percentile(values, 95)),
        "p99_seconds": float(np.percentile(values, 99)),
        "max_seconds": float(values.max()),
    }


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the counter."""
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A last-write-wins value; ``None`` means "not known / not applicable"."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value: float | int | None = None

    def set(self, value: float | int | None) -> None:
        """Record the current value (``None`` resets to "unknown")."""
        self._value = value

    @property
    def value(self) -> float | int | None:
        return self._value


class Histogram:
    """A latency sample with exact totals and reservoir-backed percentiles.

    ``count``/``sum``/``max`` are exact over every observation.  Percentile
    summaries come from a bounded reservoir (default 8192 samples): below
    capacity the sample is complete and percentiles are exact (equal to
    ``np.percentile`` over everything observed); beyond it, uniform
    reservoir sampling keeps an unbiased subsample.  The reservoir RNG is
    seeded from the metric name, so two runs observing the same stream
    summarize identically.
    """

    __slots__ = ("name", "_capacity", "_samples", "_count", "_sum", "_max", "_rng", "_lock")

    def __init__(self, name: str, capacity: int = 8192):
        if capacity < 1:
            raise ValueError("histogram capacity must be at least 1")
        self.name = name
        self._capacity = int(capacity)
        self._samples: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._rng = random.Random(hash(name) & 0xFFFFFFFF)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation (non-finite values are dropped)."""
        value = float(value)
        if not np.isfinite(value):
            return
        with self._lock:
            self._count += 1
            self._sum += value
            if value > self._max or self._count == 1:
                self._max = value
            if len(self._samples) < self._capacity:
                self._samples.append(value)
            else:
                slot = self._rng.randrange(self._count)
                if slot < self._capacity:
                    self._samples[slot] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def summary(self) -> dict[str, float]:
        """The :func:`latency_summary` fields with exact totals patched in.

        ``count``/``mean_seconds``/``max_seconds``/``sum_seconds`` are exact
        over the full stream; the percentiles are over the (possibly
        subsampled) reservoir, whose size ``sampled`` reports.
        """
        with self._lock:
            samples = list(self._samples)
            count, total, peak = self._count, self._sum, self._max
        result = latency_summary(samples)
        result["sampled"] = len(samples)
        if count:
            result["count"] = count
            result["mean_seconds"] = total / count
            result["max_seconds"] = peak
        result["sum_seconds"] = total
        return result


class _NullCounter:
    """Shared no-op counter of a disabled registry."""

    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge:
    """Shared no-op gauge of a disabled registry."""

    __slots__ = ()
    name = "null"
    value = None

    def set(self, value) -> None:
        pass


class _NullHistogram:
    """Shared no-op histogram of a disabled registry."""

    __slots__ = ()
    name = "null"
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        pass

    def summary(self) -> dict[str, float]:
        return latency_summary(())


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Get-or-create registry of named instruments, snapshotable as JSON.

    Instrument names are dotted paths (``engine.cache.dest.hits``); asking
    for an existing name returns the existing instrument, asking for it as
    a *different* kind raises.  A disabled registry returns shared no-op
    instruments and snapshots to empty sections.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind, *args):
        if not self.enabled:
            return {Counter: NULL_COUNTER, Gauge: NULL_GAUGE, Histogram: NULL_HISTOGRAM}[kind]
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = kind(name, *args)
            elif not isinstance(instrument, kind):
                raise ValueError(
                    f"metric {name!r} is already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get(name, Gauge)

    def histogram(self, name: str, capacity: int = 8192) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        return self._get(name, Histogram, capacity)

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._instruments))

    def snapshot(self) -> dict:
        """A JSON-safe snapshot: ``{"counters": …, "gauges": …, "histograms": …}``."""
        with self._lock:
            instruments = dict(self._instruments)
        counters: dict[str, int] = {}
        gauges: dict[str, float | int | None] = {}
        histograms: dict[str, dict] = {}
        for name in sorted(instruments):
            instrument = instruments[name]
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            else:
                histograms[name] = instrument.summary()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

"""End-to-end observability: tracing, metrics and stage profiling.

Layer: ``obs`` (stdlib + numpy only; imported by ``engine``, ``service``
and the CLI, imports nothing from them).

One :class:`Telemetry` object bundles the three instruments every layer
shares:

* :class:`~repro.obs.tracer.Tracer` — nested spans on monotonic clocks,
  exportable as JSONL or Chrome ``chrome://tracing`` trace-event JSON;
* :class:`~repro.obs.metrics.MetricsRegistry` — named counters / gauges /
  latency histograms with streaming percentile summaries
  (:func:`~repro.obs.metrics.latency_summary` lives here — the single
  percentile implementation of the repository);
* :class:`~repro.obs.profiler.StageProfiler` — accumulated inclusive /
  exclusive wall time per stage.

The default everywhere is :data:`NULL_TELEMETRY` — a disabled bundle whose
spans, instruments and stages are shared no-op singletons — so the
instrumented hot paths cost one no-op method call per event until a caller
opts in by passing ``Telemetry()`` (the CLI does when ``--trace`` /
``--metrics-out`` is given; the benchmarks always do).  Span taxonomy and
metric names are documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import time

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    latency_summary,
)
from repro.obs.profiler import StageProfiler
from repro.obs.report import (
    ENGINE_CACHE_KINDS,
    PIPELINE_STAGES,
    SERVE_ENDPOINTS,
    SERVICE_STAGES,
    cache_hit_ratios,
    metrics_payload,
    observability_report,
    pipeline_breakdown,
    serve_endpoint_latencies,
    stage_breakdown,
)
from repro.obs.tracer import SpanRecord, Tracer, load_jsonl

__all__ = [
    "Counter",
    "ENGINE_CACHE_KINDS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "PIPELINE_STAGES",
    "SERVE_ENDPOINTS",
    "SERVICE_STAGES",
    "SpanRecord",
    "StageProfiler",
    "Telemetry",
    "Tracer",
    "cache_hit_ratios",
    "latency_summary",
    "load_jsonl",
    "metrics_payload",
    "observability_report",
    "pipeline_breakdown",
    "serve_endpoint_latencies",
    "stage_breakdown",
]


class _NullStageSpan:
    """Shared no-op combined stage of :data:`NULL_TELEMETRY`."""

    __slots__ = ()

    def __enter__(self) -> "_NullStageSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_STAGE_SPAN = _NullStageSpan()


class _StageSpan:
    """One combined activation: tracer span + profiler stage + histogram.

    The service's apply stages use this so one ``with`` statement feeds all
    three instruments consistently (same name, same clock interval).
    """

    __slots__ = ("_span", "_stage", "_histogram", "_start")

    def __init__(self, span, stage, histogram):
        self._span = span
        self._stage = stage
        self._histogram = histogram

    def __enter__(self) -> "_StageSpan":
        self._span.__enter__()
        self._stage.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._histogram.observe(time.perf_counter() - self._start)
        self._stage.__exit__(*exc)
        self._span.__exit__(*exc)
        return False


class Telemetry:
    """The tracer + metrics + profiler bundle instrumented layers share.

    ``Telemetry()`` is fully enabled; ``Telemetry(enabled=False)`` (or the
    shared :data:`NULL_TELEMETRY`) is the zero-cost default.  Individual
    components can be injected for tests.
    """

    def __init__(
        self,
        enabled: bool = True,
        *,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        profiler: StageProfiler | None = None,
    ):
        self.tracer = tracer if tracer is not None else Tracer(enabled)
        self.metrics = metrics if metrics is not None else MetricsRegistry(enabled)
        self.profiler = profiler if profiler is not None else StageProfiler(enabled)

    @property
    def enabled(self) -> bool:
        """True when any component records (the no-op bundle is all-off)."""
        return self.tracer.enabled or self.metrics.enabled or self.profiler.enabled

    def span(self, name: str, **attrs):
        """Shorthand for ``telemetry.tracer.span(name, **attrs)``."""
        return self.tracer.span(name, **attrs)

    def stage(self, name: str):
        """A combined stage: one span, one profiler stage, one histogram.

        The histogram is named ``<name>.seconds``.  Disabled bundles return
        a shared no-op context manager.
        """
        if not self.enabled:
            return _NULL_STAGE_SPAN
        return _StageSpan(
            self.tracer.span(name),
            self.profiler.stage(name),
            self.metrics.histogram(f"{name}.seconds"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Telemetry(enabled={self.enabled})"


NULL_TELEMETRY = Telemetry(enabled=False)
"""The process-wide disabled bundle every instrumented layer defaults to."""

"""Stratified k-fold cross-validation (the paper uses k = 10)."""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

import numpy as np

from repro.ml.metrics import accuracy_score
from repro.ml.scaling import StandardScaler
from repro.utils.rng import ensure_rng


class StratifiedKFold:
    """Splits indices into k folds with (roughly) equal class proportions."""

    def __init__(self, n_splits: int = 10, shuffle: bool = True, rng=None):
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = int(n_splits)
        self.shuffle = shuffle
        self.rng = ensure_rng(rng)

    def split(self, labels: Sequence) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (train_indices, test_indices) pairs."""
        labels = np.asarray(labels)
        n = len(labels)
        if n < self.n_splits:
            raise ValueError(
                f"cannot split {n} samples into {self.n_splits} folds"
            )
        fold_of = np.empty(n, dtype=np.int64)
        for cls in np.unique(labels):
            members = np.flatnonzero(labels == cls)
            if self.shuffle:
                members = self.rng.permutation(members)
            for position, index in enumerate(members):
                fold_of[index] = position % self.n_splits
        for fold in range(self.n_splits):
            test = np.flatnonzero(fold_of == fold)
            train = np.flatnonzero(fold_of != fold)
            if len(test) == 0 or len(train) == 0:
                continue
            yield train, test


def cross_val_accuracy(
    model_factory: Callable[[], object],
    features: np.ndarray,
    labels: Sequence,
    n_splits: int = 10,
    scale: bool = True,
    rng=None,
) -> tuple[float, float, list[float]]:
    """Mean accuracy, standard deviation, and per-fold accuracies.

    ``model_factory`` creates a fresh classifier per fold (any object with
    ``fit``/``predict``).  When ``scale`` is true the features are
    standardised on the training fold only, matching standard practice.
    """
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels)
    splitter = StratifiedKFold(n_splits=n_splits, rng=rng)
    fold_scores: list[float] = []
    for train_idx, test_idx in splitter.split(labels):
        train_x, test_x = features[train_idx], features[test_idx]
        if scale:
            scaler = StandardScaler().fit(train_x)
            train_x = scaler.transform(train_x)
            test_x = scaler.transform(test_x)
        model = model_factory()
        model.fit(train_x, labels[train_idx])
        predictions = model.predict(test_x)
        fold_scores.append(accuracy_score(labels[test_idx], predictions))
    if not fold_scores:
        raise ValueError("cross-validation produced no usable folds")
    scores = np.asarray(fold_scores)
    return float(scores.mean()), float(scores.std()), fold_scores

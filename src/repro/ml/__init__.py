"""Downstream machine-learning substrate (stands in for scikit-learn).

The paper evaluates embeddings by feeding them into an SVM classifier
(scikit-learn's ``SVC``) and measuring 10-fold stratified cross-validation
accuracy.  This package provides the pieces of that protocol: an RBF/linear
kernel SVM with one-vs-rest multi-class support, stratified k-fold splits, a
standard scaler, and accuracy metrics.
"""

from repro.ml.svm import SVC, KernelType
from repro.ml.linear import LogisticRegression
from repro.ml.scaling import StandardScaler
from repro.ml.cross_validation import StratifiedKFold, cross_val_accuracy
from repro.ml.metrics import accuracy_score, confusion_matrix, majority_class_accuracy

__all__ = [
    "SVC",
    "KernelType",
    "LogisticRegression",
    "StandardScaler",
    "StratifiedKFold",
    "cross_val_accuracy",
    "accuracy_score",
    "confusion_matrix",
    "majority_class_accuracy",
]

"""Kernel support vector classification.

A small but complete SVM: binary soft-margin SVM trained on the dual
objective with projected gradient ascent (box constraints ``0 ≤ α ≤ C``),
RBF or linear kernel, and one-vs-rest reduction for multi-class problems.
This replaces scikit-learn's ``SVC`` in the downstream-task protocol; the
convex dual has a unique optimum, so the solver choice does not change what
is being measured.
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from repro.utils.rng import ensure_rng


class KernelType(enum.Enum):
    """The SVM kernel: RBF (the paper's downstream setup) or linear."""

    RBF = "rbf"
    LINEAR = "linear"


def _rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float) -> np.ndarray:
    sq_a = np.sum(a * a, axis=1)[:, None]
    sq_b = np.sum(b * b, axis=1)[None, :]
    distances = sq_a + sq_b - 2.0 * (a @ b.T)
    return np.exp(-gamma * np.maximum(distances, 0.0))


def _linear_kernel(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a @ b.T


class _BinarySVM:
    """Soft-margin binary SVM on labels in {-1, +1}."""

    def __init__(self, C: float, kernel: KernelType, gamma: float, max_iter: int, tol: float):
        self.C = C
        self.kernel = kernel
        self.gamma = gamma
        self.max_iter = max_iter
        self.tol = tol
        self.alpha: np.ndarray | None = None
        self.bias = 0.0
        self.support_vectors: np.ndarray | None = None
        self.support_targets: np.ndarray | None = None

    def _gram(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.kernel is KernelType.RBF:
            return _rbf_kernel(a, b, self.gamma)
        return _linear_kernel(a, b)

    def fit(self, features: np.ndarray, targets: np.ndarray) -> None:
        gram = self._gram(features, features)
        n = len(targets)
        q = gram * np.outer(targets, targets)
        alpha = np.zeros(n)
        # Projected gradient ascent on the dual: maximize 1ᵀα - 0.5 αᵀQα.
        # The Lipschitz constant of the gradient is the largest eigenvalue of
        # Q; a power-iteration estimate gives a safe step size.
        lipschitz = max(float(np.linalg.norm(q, ord=2)), 1e-8)
        step = 1.0 / lipschitz
        previous_objective = -np.inf
        for _ in range(self.max_iter):
            gradient = 1.0 - q @ alpha
            alpha = np.clip(alpha + step * gradient, 0.0, self.C)
            objective = alpha.sum() - 0.5 * alpha @ q @ alpha
            if abs(objective - previous_objective) < self.tol * max(abs(objective), 1.0):
                break
            previous_objective = objective
        self.alpha = alpha
        support = alpha > 1e-8
        self.support_vectors = features[support]
        self.support_targets = targets[support]
        self._support_alpha = alpha[support]
        # Bias from margin support vectors (0 < α < C); fall back to all SVs.
        margin = (alpha > 1e-8) & (alpha < self.C - 1e-8)
        reference = margin if np.any(margin) else support
        if np.any(reference):
            decision = (alpha * targets) @ gram[:, reference]
            self.bias = float(np.mean(targets[reference] - decision))
        else:
            self.bias = 0.0

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        if self.support_vectors is None or len(self.support_vectors) == 0:
            return np.full(len(features), self.bias)
        gram = self._gram(features, self.support_vectors)
        return gram @ (self._support_alpha * self.support_targets) + self.bias


class SVC:
    """Multi-class SVM via one-vs-rest, mirroring ``sklearn.svm.SVC`` defaults.

    ``gamma='scale'`` reproduces scikit-learn's default RBF bandwidth
    ``1 / (n_features * Var(X))``.
    """

    def __init__(
        self,
        C: float = 1.0,
        kernel: KernelType | str = KernelType.RBF,
        gamma: float | str = "scale",
        max_iter: int = 500,
        tol: float = 1e-6,
    ):
        if C <= 0:
            raise ValueError("C must be positive")
        self.C = float(C)
        self.kernel = KernelType(kernel) if isinstance(kernel, str) else kernel
        self.gamma = gamma
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.classes_: np.ndarray | None = None
        self._machines: list[_BinarySVM] = []

    def _resolve_gamma(self, features: np.ndarray) -> float:
        if isinstance(self.gamma, str):
            if self.gamma != "scale":
                raise ValueError(f"unknown gamma specification {self.gamma!r}")
            variance = float(features.var())
            return 1.0 / (features.shape[1] * variance) if variance > 0 else 1.0
        return float(self.gamma)

    def fit(self, features: np.ndarray, labels: Sequence) -> "SVC":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        if features.ndim != 2:
            raise ValueError("expected a 2-D feature matrix")
        if len(features) != len(labels):
            raise ValueError("features and labels must have the same length")
        self.classes_ = np.unique(labels)
        if len(self.classes_) < 2:
            # Degenerate training fold: predict the single observed class.
            self._machines = []
            return self
        gamma = self._resolve_gamma(features)
        self._machines = []
        for cls in self.classes_:
            targets = np.where(labels == cls, 1.0, -1.0)
            machine = _BinarySVM(self.C, self.kernel, gamma, self.max_iter, self.tol)
            machine.fit(features, targets)
            self._machines.append(machine)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("classifier is not fitted")
        features = np.asarray(features, dtype=np.float64)
        if not self._machines:
            return np.zeros((len(features), 1))
        return np.column_stack([m.decision_function(features) for m in self._machines])

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("classifier is not fitted")
        if not self._machines:
            return np.full(len(np.asarray(features)), self.classes_[0])
        scores = self.decision_function(features)
        return self.classes_[np.argmax(scores, axis=1)]

    def score(self, features: np.ndarray, labels: Sequence) -> float:
        predictions = self.predict(features)
        return float(np.mean(predictions == np.asarray(labels)))

"""Feature scaling for the downstream classifiers.

Layer: ``ml`` (self-contained numeric building blocks; no repro imports).
The downstream-task protocol standardises embedding features before
fitting the SVM / logistic-regression classifiers; the scaler is fit on
the training fold only and applied to both folds, so no test-fold
statistics leak into training.
"""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Per-feature standardisation to zero mean and unit variance."""

    def __init__(self):
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("expected a 2-D feature matrix")
        self.mean_ = features.mean(axis=0)
        std = features.std(axis=0)
        self.scale_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler is not fitted")
        features = np.asarray(features, dtype=np.float64)
        return (features - self.mean_) / self.scale_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)

"""Multinomial logistic regression (a lightweight alternative downstream model).

Not used by the headline experiments (which use the SVM, as in the paper)
but handy for quick sanity checks and as a second downstream task showing
that embeddings are model-agnostic.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.rng import ensure_rng


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class LogisticRegression:
    """Multinomial logistic regression trained with full-batch gradient descent."""

    def __init__(
        self,
        learning_rate: float = 0.1,
        epochs: int = 300,
        l2: float = 1e-4,
        rng: int | np.random.Generator | None = None,
    ):
        self.learning_rate = float(learning_rate)
        self.epochs = int(epochs)
        self.l2 = float(l2)
        self.rng = ensure_rng(rng)
        self.classes_: np.ndarray | None = None
        self.weights_: np.ndarray | None = None
        self.bias_: np.ndarray | None = None

    def fit(self, features: np.ndarray, labels: Sequence) -> "LogisticRegression":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        self.classes_ = np.unique(labels)
        class_index = {c: i for i, c in enumerate(self.classes_)}
        targets = np.zeros((len(labels), len(self.classes_)))
        for row, label in enumerate(labels):
            targets[row, class_index[label]] = 1.0
        n_features = features.shape[1]
        self.weights_ = self.rng.normal(0.0, 0.01, size=(n_features, len(self.classes_)))
        self.bias_ = np.zeros(len(self.classes_))
        for _ in range(self.epochs):
            probabilities = _softmax(features @ self.weights_ + self.bias_)
            error = (probabilities - targets) / len(labels)
            grad_w = features.T @ error + self.l2 * self.weights_
            grad_b = error.sum(axis=0)
            self.weights_ -= self.learning_rate * grad_w
            self.bias_ -= self.learning_rate * grad_b
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise RuntimeError("classifier is not fitted")
        features = np.asarray(features, dtype=np.float64)
        return _softmax(features @ self.weights_ + self.bias_)

    def predict(self, features: np.ndarray) -> np.ndarray:
        probabilities = self.predict_proba(features)
        return self.classes_[np.argmax(probabilities, axis=1)]

    def score(self, features: np.ndarray, labels: Sequence) -> float:
        return float(np.mean(self.predict(features) == np.asarray(labels)))

"""Classification metrics."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def accuracy_score(y_true: Sequence, y_pred: Sequence) -> float:
    """Fraction of predictions that match the true labels."""
    true = np.asarray(y_true)
    pred = np.asarray(y_pred)
    if true.shape != pred.shape:
        raise ValueError(f"shape mismatch: {true.shape} vs {pred.shape}")
    if true.size == 0:
        raise ValueError("cannot compute accuracy of an empty label set")
    return float(np.mean(true == pred))


def majority_class_accuracy(y: Sequence) -> float:
    """Accuracy of always predicting the most common class.

    This is the "baseline" curve plotted in Figure 5 of the paper.
    """
    labels = np.asarray(y)
    if labels.size == 0:
        raise ValueError("cannot compute the majority class of an empty label set")
    _, counts = np.unique(labels, return_counts=True)
    return float(counts.max() / labels.size)


def confusion_matrix(y_true: Sequence, y_pred: Sequence) -> tuple[np.ndarray, list]:
    """Confusion matrix and the label order used for its rows/columns."""
    true = np.asarray(y_true)
    pred = np.asarray(y_pred)
    labels = sorted(set(true.tolist()) | set(pred.tolist()), key=str)
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for t, p in zip(true, pred):
        matrix[index[t], index[p]] += 1
    return matrix, labels

"""End-to-end ingestion pipeline: files → typed ``Database`` → ``Dataset``.

Layer: ``io`` (relational ingestion; top of the stack — uses ``db``,
``kernels``, ``core``, ``datasets`` and ``service``).

The high-level entry points bundle the whole pipeline of this package —
read (:mod:`repro.io.readers`), infer (:mod:`repro.io.infer`), override
(:mod:`repro.io.overrides`), build (:mod:`repro.io.build`) — and return an
:class:`IngestResult` that plugs into the rest of the system: a validated
:class:`~repro.db.database.Database`, the kernel registry mapping inferred
types to domain kernels, a :class:`~repro.datasets.base.Dataset` wrapper
for the experiment drivers, and registration into the dataset registry.

The companion CLI is ``python -m repro ingest`` (:mod:`repro.cli.ingest`),
which drives this pipeline end to end — files → database → embeddings →
saved model in one command; the historical ``python -m repro.io.ingest``
entry point forwards there as a deprecation shim.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.datasets.base import Dataset
from repro.datasets.registry import register_dataset
from repro.db.database import Database
from repro.db.schema import Schema
from repro.io.errors import MalformedSourceError, OverrideError
from repro.io.infer import DEFAULT_MIN_FK_SCORE, InferenceReport, infer_schema
from repro.io.overrides import OverrideSpec, load_overrides
from repro.io.readers import (
    SQLITE_SUFFIXES,
    read_csv_dir,
    read_sqlite,
    resolve_relation_order,
)
from repro.io.build import build_database
from repro.io.tables import DEFAULT_NULL_VALUES, RawTable


@dataclass
class IngestResult:
    """Everything one ingestion run produced."""

    database: Database
    schema: Schema
    report: InferenceReport
    source: str
    table_rows: dict[str, int]
    """Rows ingested per table, in table order."""

    def kernels(self, numeric_variance: float | None = None):
        """The kernel registry induced by the inferred types.

        Numeric attributes get Gaussian kernels fit to their ingested
        active domains; categorical/text/identifier attributes fall back
        to the equality kernel — the paper's default assignment applied to
        the inferred schema.
        """
        from repro.kernels.registry import default_kernels

        return default_kernels(self.database, numeric_variance=numeric_variance)

    def dataset(
        self,
        prediction_relation: str,
        prediction_attribute: str,
        name: str | None = None,
    ) -> Dataset:
        """Wrap the ingested database as a :class:`Dataset` for the drivers."""
        return Dataset(
            name=name or f"ingested:{Path(self.source).name}",
            db=self.database,
            prediction_relation=prediction_relation,
            prediction_attribute=prediction_attribute,
            description=f"Ingested from {self.source}",
        )

    def summary(self) -> str:
        """A one-paragraph human-readable description of the run."""
        counts = self.schema.summary()
        return (
            f"{self.source}: {counts['relations']} relations, "
            f"{sum(self.table_rows.values())} rows, {counts['attributes']} attributes, "
            f"{counts['foreign_keys']} foreign keys discovered"
        )


def ingest_tables(
    tables: Sequence[RawTable],
    *,
    overrides: OverrideSpec | Mapping[str, Any] | str | Path | None = None,
    source: str = "in-memory tables",
    allow_dangling: bool = False,
) -> IngestResult:
    """Infer a schema over raw tables and build the validated database.

    The core of every import path: applies the override spec (types, keys,
    foreign-key additions/removals, acceptance threshold, and — when the
    tables were not already ordered by a reader — ``relation_order``),
    runs inference, and inserts all rows.  Raises :class:`IngestionError`
    subclasses with actionable messages on any defect; ``null_values`` in
    the spec is rejected here because it only means something while
    *parsing* CSV text, and this function receives already-parsed values.
    """
    spec = overrides if isinstance(overrides, OverrideSpec) else load_overrides(overrides)
    if spec.null_values is not None:
        raise OverrideError(
            "override spec (null_values): applies while parsing CSV text, but "
            "this source provides already-parsed values; use ingest_csv_dir on "
            "the CSV files, or apply the spellings with repro.io.tables.parse_cell"
        )
    if spec.relation_order is not None:
        by_name = {table.name: table for table in tables}
        order = resolve_relation_order(
            [table.name for table in tables], spec.relation_order, source
        )
        tables = [by_name[name] for name in order]
    spec.validate_against(tables)
    schema, report = infer_schema(
        tables,
        min_fk_score=spec.min_fk_score if spec.min_fk_score is not None else DEFAULT_MIN_FK_SCORE,
        type_overrides=spec.type_overrides,
        key_overrides=spec.key_overrides,
        transform=spec.apply_foreign_keys,
    )
    database = build_database(tables, schema, allow_dangling=allow_dangling)
    return IngestResult(
        database=database,
        schema=schema,
        report=report,
        source=source,
        table_rows={table.name: table.num_rows for table in tables},
    )


def ingest_csv_dir(
    directory: str | Path,
    *,
    overrides: OverrideSpec | Mapping[str, Any] | str | Path | None = None,
    delimiter: str = ",",
    encoding: str = "utf-8-sig",
    allow_dangling: bool = False,
) -> IngestResult:
    """Ingest a directory of ``*.csv`` files (one relation per file).

    Tables are ordered by file name unless the override spec pins
    ``relation_order`` (the order matters: it determines the foreign-key
    list order and therefore the walk-scheme enumeration downstream — see
    ``docs/INGESTION.md``).  Null spellings default to
    :data:`~repro.io.tables.DEFAULT_NULL_VALUES` and are overridable via
    ``null_values`` in the spec.  Both reader-level spec fields are
    consumed here, so the downstream :func:`ingest_tables` call sees a
    spec without them.
    """
    spec = overrides if isinstance(overrides, OverrideSpec) else load_overrides(overrides)
    tables = read_csv_dir(
        directory,
        null_values=(
            spec.null_values if spec.null_values is not None else DEFAULT_NULL_VALUES
        ),
        relation_order=spec.relation_order,
        delimiter=delimiter,
        encoding=encoding,
    )
    spec = replace(spec, null_values=None, relation_order=None)  # consumed above
    return ingest_tables(
        tables, overrides=spec, source=str(directory), allow_dangling=allow_dangling
    )


def ingest_sqlite(
    path: str | Path,
    *,
    overrides: OverrideSpec | Mapping[str, Any] | str | Path | None = None,
    allow_dangling: bool = False,
) -> IngestResult:
    """Ingest a SQLite file (tables in creation order, rows in rowid order).

    ``relation_order`` in the spec re-orders the tables (strictly
    validated, like the CSV path); ``null_values`` is rejected because
    SQLite values arrive typed — there is no text to interpret.
    """
    spec = overrides if isinstance(overrides, OverrideSpec) else load_overrides(overrides)
    tables = read_sqlite(path)
    return ingest_tables(
        tables, overrides=spec, source=str(path), allow_dangling=allow_dangling
    )


def ingest_path(
    source: str | Path,
    *,
    overrides: OverrideSpec | Mapping[str, Any] | str | Path | None = None,
    delimiter: str | None = None,
    encoding: str | None = None,
    allow_dangling: bool = False,
) -> IngestResult:
    """Ingest ``source``, auto-detecting the format.

    Directories are read as CSV corpora (``delimiter``/``encoding`` apply
    there and are rejected for SQLite sources, where they mean nothing);
    files with a SQLite suffix (``.sqlite``/``.sqlite3``/``.db``) are read
    as SQLite databases.
    """
    source = Path(source)
    if not source.exists():
        raise MalformedSourceError(
            f"{source}: no such file or directory; check the path"
        )
    if source.is_dir():
        csv_kwargs = {}
        if delimiter is not None:
            csv_kwargs["delimiter"] = delimiter
        if encoding is not None:
            csv_kwargs["encoding"] = encoding
        return ingest_csv_dir(
            source, overrides=overrides, allow_dangling=allow_dangling, **csv_kwargs
        )
    if source.suffix.lower() in SQLITE_SUFFIXES:
        if delimiter is not None or encoding is not None:
            raise MalformedSourceError(
                f"{source}: delimiter/encoding apply to CSV directories only; "
                "a SQLite file needs neither"
            )
        return ingest_sqlite(source, overrides=overrides, allow_dangling=allow_dangling)
    raise MalformedSourceError(
        f"{source}: cannot auto-detect the format; pass a directory of .csv files "
        f"or a SQLite file ({'/'.join(SQLITE_SUFFIXES)})"
    )


def register_ingested(
    name: str,
    source: str | Path,
    prediction_relation: str,
    prediction_attribute: str,
    *,
    overrides: OverrideSpec | Mapping[str, Any] | str | Path | None = None,
    overwrite: bool = False,
) -> None:
    """Register an external corpus in the dataset registry.

    After this, ``load_dataset(name)`` re-ingests ``source`` and returns a
    :class:`Dataset`, so every experiment driver and benchmark accepts the
    corpus by name.  The registry's ``scale``/``seed`` arguments are
    accepted and ignored — an external corpus has one fixed size.
    """

    def builder(scale: float = 1.0, seed: int | None = 0) -> Dataset:
        del scale, seed  # fixed external corpus: nothing to scale or seed
        result = ingest_path(source, overrides=overrides)
        return result.dataset(prediction_relation, prediction_attribute, name=name)

    register_dataset(name, builder, overwrite=overwrite)

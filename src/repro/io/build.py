"""Building a validated :class:`Database` from raw tables and a schema.

Layer: ``io`` (relational ingestion; sits on top of ``db``).

Contract: facts are inserted relation by relation — referenced relations
before referencing ones (see :func:`insertion_order`) — and, per relation,
in the raw table's row order.  The per-relation row order is what an
exported-then-re-ingested database needs to assign every relation the same
per-relation fact ordering as the original (which keeps the compiled
engine's row numbering, value vocabularies, and hence all downstream
embeddings identical); the cross-relation order is a pure performance
choice, because :meth:`Database._index_fact` resolves a referencing fact's
foreign keys in O(1) when its target already exists but scans the whole
source relation when a *target* arrives after its sources.  Key violations
and dangling foreign keys are reported with the table and 1-based data row
they came from, plus the override that fixes them.
"""

from __future__ import annotations

from typing import Sequence

from repro.db.database import Database
from repro.db.errors import KeyViolation
from repro.db.schema import Schema
from repro.io.errors import IngestionError
from repro.io.tables import RawTable


def insertion_order(schema: Schema) -> list[str]:
    """Relation names ordered so foreign-key targets come before sources.

    A topological order over the reference graph (Kahn's algorithm,
    schema order as the tie-break so the result is deterministic).
    Relations on reference cycles — where no valid order exists — are
    appended in schema order; they fall back to the slow reconnection
    path, which is correct just not O(1).
    """
    names = list(schema.relation_names)
    blockers: dict[str, set[str]] = {name: set() for name in names}
    for fk in schema.foreign_keys:
        if fk.source != fk.target:
            blockers[fk.source].add(fk.target)  # target must be inserted first
    ordered: list[str] = []
    placed: set[str] = set()
    remaining = list(names)
    while remaining:
        ready = [name for name in remaining if blockers[name] <= placed]
        if not ready:  # every remaining relation is on a reference cycle
            ordered.extend(remaining)
            break
        ordered.extend(ready)
        placed.update(ready)
        remaining = [name for name in remaining if name not in placed]
    return ordered


def build_database(
    tables: Sequence[RawTable],
    schema: Schema,
    *,
    allow_dangling: bool = False,
) -> Database:
    """Insert every raw row into a fresh :class:`Database` over ``schema``.

    Raises :class:`IngestionError` on duplicate keys (naming the row) and,
    unless ``allow_dangling`` is set, on foreign-key values that reference
    no existing fact (naming the constraint — discovered foreign keys are
    inclusion-checked and cannot dangle, so this only fires for foreign
    keys forced in via the override spec).
    """
    by_name = {table.name: table for table in tables}
    db = Database(schema)
    for relation in insertion_order(schema):
        table = by_name[relation]
        for number, row in enumerate(table.rows, start=1):
            try:
                db.insert(relation, row)
            except KeyViolation as error:
                raise IngestionError(
                    f"table {relation!r}, data row {number}: {error}; deduplicate "
                    "the data or pin a different key via the override spec "
                    f'({{"relations": {{"{relation}": {{"key": [...]}}}}}})'
                ) from error
    if not allow_dangling:
        problems = db.check_foreign_keys()
        if problems:
            shown = "; ".join(problems[:3])
            raise IngestionError(
                f"{len(problems)} dangling foreign-key reference(s): {shown} — "
                "fix the data, remove the foreign key via the override spec "
                '("foreign_keys": {"remove": [...]}), or ingest with '
                "allow_dangling=True"
            )
    return db

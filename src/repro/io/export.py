"""Exporters: a :class:`Database` as a plain CSV directory or SQLite file.

Layer: ``io`` (relational ingestion; sits on top of ``db``).

These write *schema-less* dumps — one header row per CSV, untyped SQLite
tables, no key or foreign-key declarations — exactly the kind of corpus
the ingestion layer is built to re-understand.  (The schema-preserving
formats live in :mod:`repro.db.serialization`.)  Both exporters write
relations in schema order and rows in per-relation fact order; together
with :mod:`repro.io.build` inserting in the same order, this is what makes
an export → ingest round trip reproduce per-relation fact numbering
exactly.  Supported value types: ``None``, ``int``, ``float``, ``str``.
"""

from __future__ import annotations

import csv
import math
import sqlite3
from pathlib import Path

from repro.db.database import Database
from repro.io.errors import IngestionError
from repro.io.tables import is_number, parse_cell, quote_sqlite_identifier

_CSV_NULL = ""
"""Nulls are written as empty cells (the common convention of real dumps)."""


def _checked(value, relation: str):
    if isinstance(value, float) and not math.isfinite(value):
        # NaN silently becomes NULL in SQLite and the *string* "nan" in CSV
        # (parse_cell deliberately refuses nan/inf spellings), so letting it
        # through would corrupt the round trip instead of failing loudly.
        raise IngestionError(
            f"relation {relation!r}: cannot export non-finite number {value!r}; "
            "replace it with null (None) before exporting"
        )
    if value is None or is_number(value) or isinstance(value, str):
        return value
    raise IngestionError(
        f"relation {relation!r}: cannot export value {value!r} of type "
        f"{type(value).__name__}; the ingestion formats carry text and numbers only"
    )


def _csv_cell(value, relation: str) -> str:
    """One CSV cell, refusing values the importer would read back changed.

    CSV has no type channel, so a *string* that spells a number, a null
    token, or an otherwise re-typed value (``"42"``, ``"NULL"``,
    ``"04109"`` — leading zeros become the int 4109) cannot survive a
    text round trip.  Failing loudly beats silent corruption; the SQLite
    format carries types natively and handles such values fine.
    """
    if value is None:
        return _CSV_NULL
    value = _checked(value, relation)
    text = str(value)
    if isinstance(value, str) and parse_cell(text) != value:
        raise IngestionError(
            f"relation {relation!r}: the string value {value!r} would be read "
            "back as a number or null by the CSV importer; export to SQLite "
            "instead (it preserves value types exactly)"
        )
    return text


def export_csv_dir(db: Database, directory: str | Path) -> Path:
    """Write one plain ``<relation>.csv`` per relation (header + rows).

    Unlike :func:`repro.db.serialization.save_database_csv_dir` no
    ``schema.json`` is written: types, keys and foreign keys are the
    re-ingesting side's problem.  Numbers are written with ``str`` (whose
    ``repr`` round-trips Python ints and floats exactly); nulls become
    empty cells; string values that a text round trip cannot preserve are
    rejected (see :func:`_csv_cell`).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for relation in db.relations:
        rel_schema = db.schema.relation(relation)
        with open(
            directory / f"{relation}.csv", "w", newline="", encoding="utf-8"
        ) as handle:
            writer = csv.writer(handle)
            writer.writerow(rel_schema.attribute_names)
            for fact in db.facts(relation):
                writer.writerow([_csv_cell(value, relation) for value in fact.values])
    return directory


def export_sqlite(db: Database, path: str | Path) -> Path:
    """Write the database as an untyped SQLite file (one table per relation).

    Tables are created in schema order — SQLite's ``sqlite_master`` keeps
    creation order, which the importer reads back, so a SQLite round trip
    preserves relation order without any hints.  Columns are declared
    without affinity so SQLite stores each value with its Python type
    (int → INTEGER, float → REAL, str → TEXT, None → NULL) and returns it
    unchanged.  An existing file at ``path`` is overwritten.
    """
    path = Path(path)
    if path.exists():
        path.unlink()
    connection = sqlite3.connect(path)
    try:
        for relation in db.relations:
            rel_schema = db.schema.relation(relation)
            table = quote_sqlite_identifier(relation)
            columns = ", ".join(
                quote_sqlite_identifier(name) for name in rel_schema.attribute_names
            )
            connection.execute(f"CREATE TABLE {table} ({columns})")
            placeholders = ", ".join("?" for _ in rel_schema.attribute_names)
            connection.executemany(
                f"INSERT INTO {table} VALUES ({placeholders})",
                (
                    tuple(_checked(value, relation) for value in fact.values)
                    for fact in db.facts(relation)
                ),
            )
        connection.commit()
    finally:
        connection.close()
    return path

"""Schema inference: attribute types, primary keys, and foreign keys.

Layer: ``io`` (relational ingestion; sits on top of ``db``).

Given raw tables (:mod:`repro.io.tables`), this module reconstructs a
typed :class:`~repro.db.schema.Schema`:

* **Types** — a column whose non-null values are all numbers becomes
  :attr:`~repro.db.schema.AttributeType.NUMERIC` (and will receive a
  Gaussian kernel from :func:`repro.kernels.registry.default_kernels`);
  string columns split into ``TEXT`` (mostly-distinct, free-form) and
  ``CATEGORICAL`` (repeating labels, equality kernel); key and
  foreign-key columns are re-typed ``IDENTIFIER`` at the end, because
  surrogate-key values carry no semantic meaning of their own — even when
  they happen to look numeric, a Gaussian kernel over ids is noise.
* **Keys** — the leftmost non-null column with all-distinct values; if no
  single column qualifies, the leftmost all-distinct column *pair*.
* **Foreign keys** — inclusion-dependency candidates scored by name
  similarity.  A column ``S.c`` is a candidate reference of table ``T``'s
  key ``p`` when every non-null value of ``S.c`` occurs in ``T.p`` and
  both columns hold the same value class (numbers join numbers, strings
  join strings).  Candidates are scored by

  ``score = 0.6 · sim(c, T) + 0.4 · sim(c, p)``

  (``sim`` is a normalised :class:`difflib.SequenceMatcher` ratio over
  lower-cased names), the best-scoring target above ``min_fk_score`` wins
  the column, and a mutual key↔key inclusion (two tables in 1:1
  correspondence) keeps only the better-scoring direction.  The heuristic
  is motivated by the foreign-key ablation
  (``benchmarks/bench_ablation_fk_identification.py``), which measures how
  much correctly identified references contribute to accuracy: getting
  foreign keys right is what lets signal flow across relations, so
  ingestion treats their discovery as a first-class concern.

Every decision — chosen keys, accepted and rejected foreign-key
candidates, runner-up targets, type-tie notes — is recorded in an
:class:`InferenceReport` so inference is auditable and correctable through
the override spec (:mod:`repro.io.overrides`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from difflib import SequenceMatcher
from itertools import combinations
from typing import Any, Callable, Mapping, Sequence

from repro.db.schema import Attribute, AttributeType, ForeignKey, RelationSchema, Schema
from repro.io.errors import InferenceError
from repro.io.tables import RawTable, is_number, value_class

RELATION_NAME_WEIGHT = 0.6
"""Weight of the source-column ↔ target-*relation* name similarity."""

KEY_NAME_WEIGHT = 0.4
"""Weight of the source-column ↔ target-*key-column* name similarity."""

DEFAULT_MIN_FK_SCORE = 0.3
"""Candidates scoring below this are rejected (tune via the override spec)."""

AMBIGUITY_MARGIN = 0.1
"""A runner-up within this margin of the winner is reported as ambiguous."""

TEXT_DISTINCT_RATIO = 0.8
"""Minimum distinct/total ratio for a string column to be considered TEXT."""


# ---------------------------------------------------------------- reporting


@dataclass
class ColumnDecision:
    """Why one column got its type."""

    type: AttributeType
    reason: str


@dataclass
class ForeignKeyDecision:
    """One accepted or rejected foreign-key candidate."""

    source: str
    source_attr: str
    target: str
    target_attr: str
    score: float
    accepted: bool
    reason: str
    runners_up: tuple[str, ...] = ()
    """Other targets within :data:`AMBIGUITY_MARGIN` of the winner."""

    @property
    def name(self) -> str:
        return f"{self.source}[{self.source_attr}]->{self.target}[{self.target_attr}]"


@dataclass
class InferenceReport:
    """A full audit trail of one schema-inference run."""

    columns: dict[str, dict[str, ColumnDecision]] = field(default_factory=dict)
    keys: dict[str, tuple[tuple[str, ...], str]] = field(default_factory=dict)
    foreign_keys: list[ForeignKeyDecision] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def accepted_foreign_keys(self) -> list[ForeignKeyDecision]:
        return [d for d in self.foreign_keys if d.accepted]

    @property
    def ambiguous_foreign_keys(self) -> list[ForeignKeyDecision]:
        """Accepted decisions that had a close runner-up target."""
        return [d for d in self.foreign_keys if d.accepted and d.runners_up]

    def to_dict(self) -> dict[str, Any]:
        """A JSON-safe document (written as ``report.json`` by the CLI)."""
        return {
            "columns": {
                table: {
                    name: {"type": decision.type.value, "reason": decision.reason}
                    for name, decision in decisions.items()
                }
                for table, decisions in self.columns.items()
            },
            "keys": {
                table: {"key": list(key), "reason": reason}
                for table, (key, reason) in self.keys.items()
            },
            "foreign_keys": [
                {
                    "name": d.name,
                    "score": round(d.score, 4),
                    "accepted": d.accepted,
                    "reason": d.reason,
                    "runners_up": list(d.runners_up),
                }
                for d in self.foreign_keys
            ],
            "notes": list(self.notes),
        }

    def format(self) -> str:
        """A human-readable summary (printed by ``repro.io.ingest --report``)."""
        lines: list[str] = []
        for table, (key, reason) in self.keys.items():
            lines.append(f"{table}: key ({', '.join(key)}) — {reason}")
            for name, decision in self.columns.get(table, {}).items():
                lines.append(f"  {name}: {decision.type.value} — {decision.reason}")
        accepted = self.accepted_foreign_keys
        lines.append(f"foreign keys ({len(accepted)} accepted):")
        for d in self.foreign_keys:
            flag = "+" if d.accepted else "-"
            lines.append(f"  {flag} {d.name} (score {d.score:.2f}) — {d.reason}")
            for other in d.runners_up:
                lines.append(f"      runner-up: {other}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


# ------------------------------------------------------------------- types


def infer_column_type(values: Sequence[Any]) -> ColumnDecision:
    """Infer the :class:`AttributeType` of one column from its values.

    Tie rules (all recorded in the decision's reason):

    * no non-null evidence → ``CATEGORICAL`` by default;
    * every non-null value a number → ``NUMERIC``;
    * numbers *and* strings mixed → ``CATEGORICAL`` (strings win: a column
      that is not uniformly numeric is treated as labels);
    * strings → ``TEXT`` when mostly distinct (ratio ≥ 0.8) and free-form
      (half the values contain whitespace, or the average length ≥ 15),
      ``CATEGORICAL`` otherwise.
    """
    present = [v for v in values if v is not None]
    if not present:
        return ColumnDecision(
            AttributeType.CATEGORICAL, "no non-null values; defaulted to categorical"
        )
    numbers = sum(1 for v in present if is_number(v))
    if numbers == len(present):
        return ColumnDecision(
            AttributeType.NUMERIC, f"all {len(present)} non-null values are numeric"
        )
    if numbers:
        return ColumnDecision(
            AttributeType.CATEGORICAL,
            f"type tie: {numbers} numeric and {len(present) - numbers} string values; "
            "treated as categorical labels (override with types.<column> = 'numeric')",
        )
    texts = [str(v) for v in present]
    distinct_ratio = len(set(texts)) / len(texts)
    spaced = sum(1 for t in texts if any(ch.isspace() for ch in t)) / len(texts)
    mean_length = sum(len(t) for t in texts) / len(texts)
    if distinct_ratio >= TEXT_DISTINCT_RATIO and (spaced >= 0.5 or mean_length >= 15):
        return ColumnDecision(
            AttributeType.TEXT,
            f"free-form text: {distinct_ratio:.0%} distinct, "
            f"{spaced:.0%} multi-word, mean length {mean_length:.1f}",
        )
    return ColumnDecision(
        AttributeType.CATEGORICAL,
        f"repeating labels: {len(set(texts))} distinct values over {len(texts)} rows",
    )


# -------------------------------------------------------------------- keys


def infer_key(table: RawTable) -> tuple[tuple[str, ...], str]:
    """Infer a primary key: leftmost unique column, else leftmost unique pair.

    Returns ``(key_attributes, reason)``.  An empty table gets its first
    column (vacuously unique).  Raises :class:`InferenceError` when neither
    a single column nor a pair is a key — the message points at the
    ``relations.<table>.key`` override.
    """
    if not table.rows:
        return (table.columns[0],), "empty table; defaulted to the first column"
    columns = {name: table.column_values(name) for name in table.columns}
    for name in table.columns:
        values = columns[name]
        if None in values:
            continue
        if len(set(values)) == len(values):
            return (name,), f"leftmost column with {len(values)} distinct non-null values"
    for left, right in combinations(table.columns, 2):
        pairs = list(zip(columns[left], columns[right]))
        if any(a is None or b is None for a, b in pairs):
            continue
        if len(set(pairs)) == len(pairs):
            return (left, right), "leftmost column pair with all-distinct non-null values"
    raise InferenceError(
        f"table {table.name!r}: no column (or column pair) is unique and non-null, "
        "so no primary key can be inferred; declare one in the override spec via "
        f'{{"relations": {{"{table.name}": {{"key": [...]}}}}}} or deduplicate the data'
    )


# ------------------------------------------------------------ foreign keys


def name_similarity(left: str, right: str) -> float:
    """Case-insensitive Ratcliff/Obershelp similarity of two names."""
    return SequenceMatcher(None, left.lower(), right.lower()).ratio()


def candidate_score(source_attr: str, target_relation: str, target_attr: str) -> float:
    """The name-similarity score of one inclusion-dependency candidate."""
    return RELATION_NAME_WEIGHT * name_similarity(
        source_attr, target_relation
    ) + KEY_NAME_WEIGHT * name_similarity(source_attr, target_attr)


@dataclass
class _Candidate:
    source: str
    source_attr: str
    target: str
    target_attr: str
    score: float


def discover_foreign_keys(
    tables: Sequence[RawTable],
    keys: Mapping[str, tuple[str, ...]],
    *,
    min_score: float = DEFAULT_MIN_FK_SCORE,
    report: InferenceReport | None = None,
) -> list[ForeignKey]:
    """Discover single-column foreign keys via inclusion + name similarity.

    Tables are visited in their given order and columns in position order,
    so the resulting foreign-key list order is a deterministic function of
    the table order — the property the exact round-trip guarantee rests on.
    Composite keys cannot be discovered (add them via the override spec); a
    note is recorded for every composite-key table skipped as a target.
    """
    report = report if report is not None else InferenceReport()
    value_sets: dict[tuple[str, str], set] = {}
    classes: dict[tuple[str, str], set[str]] = {}
    for table in tables:
        for column in table.columns:
            present = [v for v in table.column_values(column) if v is not None]
            value_sets[(table.name, column)] = set(present)
            classes[(table.name, column)] = {value_class(v) for v in present}

    targets: list[tuple[str, str]] = []  # (relation, single key column)
    for table in tables:
        key = keys[table.name]
        if len(key) == 1:
            targets.append((table.name, key[0]))
        else:
            report.notes.append(
                f"{table.name}: composite key ({', '.join(key)}) cannot be a "
                "discovered foreign-key target; add such references via the "
                'override spec ("foreign_keys": {"add": [...]})'
            )

    chosen: dict[tuple[str, str], _Candidate] = {}
    for table in tables:
        for column in table.columns:
            source_values = value_sets[(table.name, column)]
            if not source_values:
                continue
            candidates: list[_Candidate] = []
            for target, target_attr in targets:
                if target == table.name and target_attr == column:
                    continue  # a column trivially includes itself
                if classes[(table.name, column)] != classes[(target, target_attr)]:
                    continue  # numbers join numbers, strings join strings
                if not source_values <= value_sets[(target, target_attr)]:
                    continue
                candidates.append(
                    _Candidate(
                        table.name, column, target, target_attr,
                        candidate_score(column, target, target_attr),
                    )
                )
            if not candidates:
                continue
            best = max(candidates, key=lambda c: c.score)
            runners_up = tuple(
                f"{c.target}[{c.target_attr}] (score {c.score:.2f})"
                for c in candidates
                if c is not best and best.score - c.score < AMBIGUITY_MARGIN
            )
            if best.score < min_score:
                report.foreign_keys.append(
                    ForeignKeyDecision(
                        best.source, best.source_attr, best.target, best.target_attr,
                        best.score, False,
                        f"inclusion holds but the name-similarity score is below "
                        f"min_fk_score={min_score}; force it via the override spec "
                        "if the reference is real",
                    )
                )
                continue
            chosen[(table.name, column)] = best
            reason = "inclusion dependency with the best name-similarity score"
            if runners_up:
                reason += "; close runner-up targets exist — verify or override"
            report.foreign_keys.append(
                ForeignKeyDecision(
                    best.source, best.source_attr, best.target, best.target_attr,
                    best.score, True, reason, runners_up,
                )
            )

    _resolve_mutual_keys(chosen, keys, {t.name: i for i, t in enumerate(tables)}, report)
    return [
        ForeignKey(c.source, (c.source_attr,), c.target, (c.target_attr,))
        for c in chosen.values()
    ]


def _resolve_mutual_keys(
    chosen: dict[tuple[str, str], _Candidate],
    keys: Mapping[str, tuple[str, ...]],
    table_order: Mapping[str, int],
    report: InferenceReport,
) -> None:
    """Keep only the better direction of a mutual key↔key inclusion.

    When two tables are in 1:1 correspondence (every key value of each
    occurs in the other), inclusion holds both ways but real data has one
    *referencing* side.  The lower-scoring direction is dropped; an exact
    tie keeps the direction whose source table appears later in the input
    (references usually point backwards to earlier-created tables).
    """
    for (source, column), candidate in list(chosen.items()):
        if (source, column) not in chosen:  # already dropped by a prior pass
            continue
        reverse = chosen.get((candidate.target, candidate.target_attr))
        if reverse is None or (reverse.target, reverse.target_attr) != (source, column):
            continue
        if keys.get(source) != (column,):
            continue  # only key↔key correspondences are symmetric
        if candidate.score == reverse.score:
            # exact tie: keep the later table's outgoing reference
            loser = min(candidate, reverse, key=lambda c: table_order[c.source])
        else:
            loser = min(candidate, reverse, key=lambda c: c.score)
        winner = reverse if loser is candidate else candidate
        del chosen[(loser.source, loser.source_attr)]
        for decision in report.foreign_keys:
            if decision.accepted and (decision.source, decision.source_attr) == (
                loser.source, loser.source_attr,
            ):
                decision.accepted = False
                decision.reason = (
                    f"mutual inclusion with {winner.source}[{winner.source_attr}]->"
                    f"{winner.target}[{winner.target_attr}] (score {winner.score:.2f} "
                    f"vs {loser.score:.2f}); kept the better-named direction only"
                )


# ------------------------------------------------------------------ schema


def infer_schema(
    tables: Sequence[RawTable],
    *,
    min_fk_score: float = DEFAULT_MIN_FK_SCORE,
    type_overrides: Mapping[str, Mapping[str, AttributeType]] | None = None,
    key_overrides: Mapping[str, Sequence[str]] | None = None,
    transform: Callable[[Schema], Schema] | None = None,
) -> tuple[Schema, InferenceReport]:
    """Infer a full :class:`Schema` (types, keys, foreign keys) from raw tables.

    ``type_overrides`` / ``key_overrides`` pin individual decisions (the
    override spec of :mod:`repro.io.overrides` feeds them in); overridden
    types are never re-typed to ``IDENTIFIER`` afterwards.  ``transform``
    — when given — rewrites the schema *between* foreign-key discovery and
    identifier re-typing (the pipeline passes the override spec's
    foreign-key add/remove step), so a column forced into a foreign key
    becomes an identifier and a column whose inferred foreign key is
    removed keeps its data-inferred type.  Returns the schema together
    with the :class:`InferenceReport` explaining it.
    """
    type_overrides = type_overrides or {}
    key_overrides = key_overrides or {}
    report = InferenceReport()

    types: dict[tuple[str, str], AttributeType] = {}
    pinned: set[tuple[str, str]] = set()
    keys: dict[str, tuple[str, ...]] = {}
    for table in tables:
        report.columns[table.name] = {}
        for column in table.columns:
            override = type_overrides.get(table.name, {}).get(column)
            if override is not None:
                decision = ColumnDecision(override, "overridden by the override spec")
                pinned.add((table.name, column))
            else:
                decision = infer_column_type(table.column_values(column))
            report.columns[table.name][column] = decision
            types[(table.name, column)] = decision.type
        if table.name in key_overrides:
            keys[table.name] = tuple(key_overrides[table.name])
            report.keys[table.name] = (keys[table.name], "overridden by the override spec")
        else:
            keys[table.name], reason = infer_key(table)
            report.keys[table.name] = (keys[table.name], reason)

    foreign_keys = discover_foreign_keys(
        tables, keys, min_score=min_fk_score, report=report
    )
    schema = _build_schema(tables, types, keys)
    schema = Schema(schema.relations, foreign_keys)
    if transform is not None:
        schema = transform(schema)

    # Key and foreign-key columns (of the *final* FK set) are identifiers:
    # their values are handles, not quantities, so they must not receive a
    # Gaussian kernel downstream.
    identifier_columns: set[tuple[str, str]] = set()
    for table in tables:
        for attr in keys[table.name]:
            identifier_columns.add((table.name, attr))
    for fk in schema.foreign_keys:
        for attr in fk.source_attrs:
            identifier_columns.add((fk.source, attr))
        for attr in fk.target_attrs:
            identifier_columns.add((fk.target, attr))
    for spot in identifier_columns - pinned:
        if types[spot] is not AttributeType.IDENTIFIER:
            types[spot] = AttributeType.IDENTIFIER
            table_name, column = spot
            decision = report.columns[table_name][column]
            decision.type = AttributeType.IDENTIFIER
            decision.reason += "; re-typed identifier (key or foreign-key column)"

    retyped = _build_schema(tables, types, keys)
    return Schema(retyped.relations, schema.foreign_keys), report


def _build_schema(
    tables: Sequence[RawTable],
    types: Mapping[tuple[str, str], AttributeType],
    keys: Mapping[str, tuple[str, ...]],
) -> Schema:
    return Schema(
        RelationSchema(
            table.name,
            [Attribute(column, types[(table.name, column)]) for column in table.columns],
            keys[table.name],
        )
        for table in tables
    )

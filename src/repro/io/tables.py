"""Raw tabular data: the untyped intermediate form of every import.

Layer: ``io`` (relational ingestion; sits on top of ``db``).

Both source readers (:mod:`repro.io.readers`) produce :class:`RawTable`
objects — a name, an ordered column list, and rows of Python values where
``None`` is the null ``⊥``.  Schema inference (:mod:`repro.io.infer`)
consumes raw tables and never touches the source files again, so CSV
directories and SQLite files go through exactly the same inference and
database-building code.

Cell parsing (CSV sources only — SQLite values arrive typed) is strict
about what counts as a number: optional sign, digits, one optional decimal
point or exponent.  Underscore separators, ``nan``/``inf`` spellings, hex
literals, and numbers with leading zeros stay strings, because
identifier-like columns ("1_004", "0x2F", the zip code "04109") must not
silently become numbers — ``int("04109")`` would collapse it with
``"4109"`` and lose the leading zero forever.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.io.errors import MalformedSourceError

Value = Any
"""Cell values are ``None`` (null), ``int``, ``float`` or ``str``."""

DEFAULT_NULL_VALUES = ("", "\\N", "NULL", "null")
"""Cell spellings read as the null value ``⊥`` by the CSV reader."""

_INT_RE = re.compile(r"[+-]?\d+\Z")
_FLOAT_RE = re.compile(r"[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?\Z")
_LEADING_ZERO_RE = re.compile(r"[+-]?0\d")


@dataclass
class RawTable:
    """One untyped table read from a source file.

    ``rows`` hold parsed Python values (``None`` for null); ``origin``
    remembers the source file for error messages and reports.
    """

    name: str
    columns: tuple[str, ...]
    rows: list[tuple[Value, ...]] = field(default_factory=list)
    origin: str = ""

    def __post_init__(self) -> None:
        self.columns = tuple(self.columns)
        if not self.name:
            raise MalformedSourceError("table name must be non-empty")
        if not self.columns:
            raise MalformedSourceError(
                f"table {self.name!r} ({self.origin or 'in-memory'}): has no columns; "
                "a relation needs at least one attribute"
            )
        blank = [i for i, c in enumerate(self.columns) if not str(c).strip()]
        if blank:
            raise MalformedSourceError(
                f"table {self.name!r} ({self.origin or 'in-memory'}): header has a blank "
                f"column name at position {blank[0] + 1}; give every column a name"
            )
        seen: set[str] = set()
        for column in self.columns:
            if column in seen:
                raise MalformedSourceError(
                    f"table {self.name!r} ({self.origin or 'in-memory'}): duplicate column "
                    f"name {column!r} in the header; rename one of the duplicates"
                )
            seen.add(column)

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def column_index(self, name: str) -> int:
        try:
            return self.columns.index(name)
        except ValueError:
            raise MalformedSourceError(
                f"table {self.name!r} has no column {name!r}; "
                f"columns are {', '.join(self.columns)}"
            ) from None

    def column_values(self, name: str) -> list[Value]:
        """All values (including nulls) of one column, in row order."""
        index = self.column_index(name)
        return [row[index] for row in self.rows]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RawTable({self.name!r}, {self.num_columns} columns, {self.num_rows} rows)"


def parse_cell(text: str, null_values: Sequence[str] = DEFAULT_NULL_VALUES) -> Value:
    """Parse one CSV cell into ``None`` / ``int`` / ``float`` / ``str``.

    Integer-looking cells become ``int``, decimal/exponent-looking cells
    become ``float`` (so ``"100"`` and ``"100.0"`` stay distinguishable —
    important for exact round trips), everything else stays a string —
    including numbers whose integer part has a leading zero, which only
    identifiers spell that way (``"04109"`` must not collapse with
    ``"4109"``).
    """
    if isinstance(null_values, str):
        # a bare string satisfies Sequence[str] but would turn the
        # membership test below into substring matching ("U" in "NULL")
        raise TypeError(
            "null_values must be a sequence of strings, e.g. (\"NULL\",), "
            f"not the string {null_values!r}"
        )
    if text in null_values:
        return None
    if _LEADING_ZERO_RE.match(text):
        return text
    if _INT_RE.match(text):
        return int(text)
    if _FLOAT_RE.match(text):
        return float(text)
    return text


def is_number(value: Value) -> bool:
    """True for int/float values (bools are deliberately *not* numbers)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def value_class(value: Value) -> str:
    """The coarse comparison class of a value: ``number`` or ``string``.

    Foreign-key candidates must join columns of the same class; comparing
    ``1`` with ``"1"`` never links real references.
    """
    return "number" if is_number(value) else "string"


def quote_sqlite_identifier(name: str) -> str:
    """A SQLite-quoted identifier, shared by the exporter and the reader.

    One definition keeps the export/import pair symmetric — the round-trip
    guarantee depends on both sides quoting table and column names the
    same way.
    """
    return '"' + name.replace('"', '""') + '"'

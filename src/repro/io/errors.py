"""Ingestion-layer error types.

Layer: ``io`` (relational ingestion; sits on top of ``db``).

Every error raised by the ingestion layer derives from
:class:`IngestionError`, and every message is written to be *actionable*:
it names the offending table/column/row and states what to fix (often a
pointer to the declarative override spec, :mod:`repro.io.overrides`).
"""

from __future__ import annotations


class IngestionError(Exception):
    """Base class of all ingestion-layer failures."""


class MalformedSourceError(IngestionError):
    """A source file could not be parsed into a rectangular table.

    Raised for ragged CSV rows, duplicate or blank header names, empty
    files, unreadable SQLite containers, and similar structural defects.
    The message always identifies the file and (where applicable) the
    1-based row number.
    """


class InferenceError(IngestionError):
    """Schema inference could not make a required decision.

    Raised e.g. when no candidate primary key exists for a table.  The
    message names the table and the override-spec entry that resolves the
    situation.
    """


class OverrideError(IngestionError):
    """A declarative override spec is invalid or conflicts with the data."""

"""Streaming adapter: replay an ingested table as a change feed.

Layer: ``io`` (relational ingestion; bridges ``db`` to ``service``).

An ingested corpus is a static snapshot, but the serving layer
(:mod:`repro.service`) consumes ordered :class:`InsertBatch` streams.
:func:`stream_table` splits one relation's facts into a *base* database
(everything that was "already there") and a :class:`ChangeFeed` of the
held-out tail in original row order — external data usually arrives
time-ordered, so the last rows make the natural stream.  Batch ids embed
the fact-id range they deliver, so regenerating the stream from the same
ingest yields identical ids: the idempotence anchor the service
deduplicates on under at-least-once delivery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.database import Database, Fact
from repro.service.feed import ChangeFeed


@dataclass(frozen=True)
class TableStream:
    """An ingested table split into a base database and an insert feed."""

    base: Database
    """A copy of the ingested database *without* the streamed facts."""

    feed: ChangeFeed
    """The held-out facts as ordered insert batches (original row order)."""

    streamed: tuple[Fact, ...]
    """The held-out facts, in arrival order."""


def stream_table(
    db: Database,
    relation: str,
    *,
    fraction: float = 0.2,
    count: int | None = None,
    batch_size: int = 32,
    name: str | None = None,
    check: bool = True,
) -> TableStream:
    """Hold out the tail of ``relation`` and replay it as insert batches.

    The last ``count`` facts (or ``round(fraction * n)`` when ``count`` is
    None) of the relation — clamped so at least one fact is streamed and at
    least one stays in the base — are deleted from a copy of ``db`` and
    appended to a fresh :class:`ChangeFeed` in ``batch_size`` groups.
    Train a model on ``base``, hand it to an
    :class:`~repro.service.EmbeddingService` over ``base``, and apply the
    feed to drive the online service with external data.

    With ``check`` (the default) the base database is verified to have no
    dangling references into the held-out facts; streaming a relation that
    other relations reference raises with a pointer at the usual fix
    (stream a leaf relation, e.g. the prediction relation).
    """
    facts = db.facts(relation)
    total = len(facts)
    if total < 2:
        raise ValueError(
            f"relation {relation!r} has {total} fact(s); streaming needs at least "
            "two (one to keep in the base, one to stream)"
        )
    if count is None:
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be strictly between 0 and 1")
        count = round(total * fraction)
    count = min(max(count, 1), total - 1)
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")

    base = db.copy()
    streamed = tuple(base.fact(fact.fact_id) for fact in facts[total - count:])
    for fact in streamed:
        base.delete(fact)
    if check:
        problems = base.check_foreign_keys()
        if problems:
            raise ValueError(
                f"streaming the tail of {relation!r} leaves {len(problems)} dangling "
                f"reference(s) in the base database (e.g. {problems[0]}); stream a "
                "relation that nothing references, such as the prediction relation"
            )

    feed = ChangeFeed(name or f"ingest-{relation}")
    for start in range(0, count, batch_size):
        group = streamed[start : start + batch_size]
        feed.append(
            group,
            batch_id=f"{feed.name}:{len(feed):06d}:"
            f"{group[0].fact_id}-{group[-1].fact_id}",
        )
    return TableStream(base=base, feed=feed, streamed=streamed)

"""The declarative override spec: correcting inference without code.

Layer: ``io`` (relational ingestion; sits on top of ``db``).

Inference is a heuristic; real corpora occasionally need a human to pin a
decision.  An :class:`OverrideSpec` is a plain dict (loadable from JSON,
or YAML when ``pyyaml`` is installed) with this shape::

    {
      "relation_order": ["COUNTRY", "CITY", ...],      # CSV table order
      "null_values": ["", "\\\\N", "NULL"],              # CSV null spellings
      "min_fk_score": 0.3,                             # FK acceptance bar
      "relations": {
        "CITY": {
          "key": ["city_id"],                          # pin the primary key
          "types": {"elevation": "numeric"}            # pin attribute types
        }
      },
      "foreign_keys": {
        "add":    [{"source": "CITY", "source_attrs": ["state"],
                    "target": "STATE", "target_attrs": ["id"]}],
        "remove": ["CITY[mayor]->PERSON[id]"]          # by FK name
      }
    }

Every field is optional.  Validation is two-phase: :func:`load_overrides`
checks the spec's own shape (unknown fields, wrong value types, duplicate
or conflicting entries), and :meth:`OverrideSpec.validate_against` checks
it against the discovered tables (unknown relations/attributes, removal
patterns that match nothing are reported after inference).  All failures
raise :class:`~repro.io.errors.OverrideError` naming the offending entry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.db.schema import AttributeType, ForeignKey, Schema, SchemaError
from repro.io.errors import OverrideError
from repro.io.tables import RawTable

_TOP_LEVEL_FIELDS = {
    "relation_order", "null_values", "min_fk_score", "relations", "foreign_keys",
}
_RELATION_FIELDS = {"key", "types"}
_FK_FIELDS = {"add", "remove"}
_FK_ENTRY_FIELDS = {"source", "source_attrs", "target", "target_attrs"}


@dataclass
class OverrideSpec:
    """A validated override spec (see the module docstring for the format)."""

    relation_order: tuple[str, ...] | None = None
    null_values: tuple[str, ...] | None = None
    min_fk_score: float | None = None
    key_overrides: dict[str, tuple[str, ...]] = field(default_factory=dict)
    type_overrides: dict[str, dict[str, AttributeType]] = field(default_factory=dict)
    fk_additions: tuple[ForeignKey, ...] = ()
    fk_removals: tuple[str, ...] = ()

    def validate_against(self, tables: Sequence[RawTable]) -> None:
        """Check every table/attribute the spec names against the raw tables."""
        by_name = {table.name: table for table in tables}
        for relation, key in self.key_overrides.items():
            table = self._table(by_name, relation, "relations")
            for attr in key:
                self._attribute(table, attr, f'relations.{relation}.key')
        for relation, types in self.type_overrides.items():
            table = self._table(by_name, relation, "relations")
            for attr in types:
                self._attribute(table, attr, f'relations.{relation}.types')
        for fk in self.fk_additions:
            source = self._table(by_name, fk.source, "foreign_keys.add")
            target = self._table(by_name, fk.target, "foreign_keys.add")
            for attr in fk.source_attrs:
                self._attribute(source, attr, "foreign_keys.add")
            for attr in fk.target_attrs:
                self._attribute(target, attr, "foreign_keys.add")

    @staticmethod
    def _table(by_name: Mapping[str, RawTable], name: str, context: str) -> RawTable:
        if name not in by_name:
            raise OverrideError(
                f"override spec ({context}): unknown relation {name!r}; "
                f"discovered relations are {', '.join(sorted(by_name))}"
            )
        return by_name[name]

    @staticmethod
    def _attribute(table: RawTable, name: str, context: str) -> None:
        if name not in table.columns:
            raise OverrideError(
                f"override spec ({context}): relation {table.name!r} has no "
                f"attribute {name!r}; its columns are {', '.join(table.columns)}"
            )

    # ------------------------------------------------------ FK application

    def apply_foreign_keys(self, schema: Schema) -> Schema:
        """Apply ``add``/``remove`` entries to an inferred schema.

        Removals are matched by foreign-key name
        (``SOURCE[attrs]->TARGET[attrs]``); a pattern matching nothing is a
        conflict and raises.  Additions are validated by the schema itself
        (the target attributes must form the target's key) — a violation is
        re-raised with a pointer at the ``relations.<target>.key`` override.
        """
        if not self.fk_additions and not self.fk_removals:
            return schema
        remaining = list(schema.foreign_keys)
        for pattern in self.fk_removals:
            matches = [fk for fk in remaining if fk.name == pattern]
            if not matches:
                known = ", ".join(fk.name for fk in remaining) or "none"
                raise OverrideError(
                    f"override spec (foreign_keys.remove): {pattern!r} matches no "
                    f"inferred foreign key; inferred foreign keys are: {known}"
                )
            remaining = [fk for fk in remaining if fk.name != pattern]
        for addition in self.fk_additions:
            if any(
                fk.source == addition.source and fk.source_attrs == addition.source_attrs
                for fk in remaining
            ):
                raise OverrideError(
                    f"override spec (foreign_keys.add): {addition.name} conflicts with "
                    f"an existing foreign key on {addition.source}"
                    f"[{', '.join(addition.source_attrs)}]; remove the inferred one "
                    'first via "foreign_keys": {"remove": [...]}'
                )
        rebuilt = Schema(schema.relations, remaining)
        for addition in self.fk_additions:
            try:
                rebuilt.add_foreign_key(addition)
            except SchemaError as error:
                raise OverrideError(
                    f"override spec (foreign_keys.add): {addition.name} is invalid "
                    f"({error}); if the target attributes are right, pin the target's "
                    f'key via {{"relations": {{"{addition.target}": {{"key": '
                    f"{list(addition.target_attrs)}}}}}}}"
                ) from error
        return rebuilt


def load_overrides(spec: Mapping[str, Any] | str | Path | None) -> OverrideSpec:
    """Build an :class:`OverrideSpec` from a dict or a JSON/YAML file path.

    ``None`` yields an empty spec.  A str/Path is read from disk: ``.json``
    via the standard library, ``.yaml``/``.yml`` via ``pyyaml`` when
    available (a clear error asks for JSON otherwise).
    """
    if spec is None:
        return OverrideSpec()
    if isinstance(spec, (str, Path)):
        spec = _read_spec_file(Path(spec))
    if not isinstance(spec, Mapping):
        raise OverrideError(
            f"override spec must be a mapping, got {type(spec).__name__}"
        )
    unknown = set(spec) - _TOP_LEVEL_FIELDS
    if unknown:
        raise OverrideError(
            f"override spec: unknown field(s) {', '.join(sorted(unknown))}; "
            f"valid fields are {', '.join(sorted(_TOP_LEVEL_FIELDS))}"
        )
    result = OverrideSpec(
        relation_order=_string_tuple(spec.get("relation_order"), "relation_order"),
        null_values=_string_tuple(spec.get("null_values"), "null_values"),
        min_fk_score=_score(spec.get("min_fk_score")),
    )
    for relation, entry in (spec.get("relations") or {}).items():
        if not isinstance(entry, Mapping):
            raise OverrideError(
                f"override spec (relations.{relation}): expected a mapping with "
                f"{', '.join(sorted(_RELATION_FIELDS))}"
            )
        unknown = set(entry) - _RELATION_FIELDS
        if unknown:
            raise OverrideError(
                f"override spec (relations.{relation}): unknown field(s) "
                f"{', '.join(sorted(unknown))}; valid fields are "
                f"{', '.join(sorted(_RELATION_FIELDS))}"
            )
        if "key" in entry:
            key = _string_tuple(entry["key"], f"relations.{relation}.key")
            if not key:
                raise OverrideError(
                    f"override spec (relations.{relation}.key): key must name at "
                    "least one attribute"
                )
            result.key_overrides[relation] = key
        for attr, type_name in (entry.get("types") or {}).items():
            try:
                attr_type = AttributeType(type_name)
            except ValueError:
                valid = ", ".join(t.value for t in AttributeType)
                raise OverrideError(
                    f"override spec (relations.{relation}.types.{attr}): unknown "
                    f"type {type_name!r}; valid types are {valid}"
                ) from None
            result.type_overrides.setdefault(relation, {})[attr] = attr_type
    fk_spec = spec.get("foreign_keys") or {}
    unknown = set(fk_spec) - _FK_FIELDS
    if unknown:
        raise OverrideError(
            f"override spec (foreign_keys): unknown field(s) "
            f"{', '.join(sorted(unknown))}; valid fields are add, remove"
        )
    additions = []
    sources_seen: set[tuple[str, tuple[str, ...]]] = set()
    for index, entry in enumerate(fk_spec.get("add") or []):
        if not isinstance(entry, Mapping) or set(entry) != _FK_ENTRY_FIELDS:
            raise OverrideError(
                f"override spec (foreign_keys.add[{index}]): each entry needs exactly "
                f"the fields {', '.join(sorted(_FK_ENTRY_FIELDS))}"
            )
        try:
            addition = ForeignKey(
                entry["source"], tuple(entry["source_attrs"]),
                entry["target"], tuple(entry["target_attrs"]),
            )
        except SchemaError as error:
            raise OverrideError(
                f"override spec (foreign_keys.add[{index}]): {error}"
            ) from error
        source_key = (addition.source, addition.source_attrs)
        if source_key in sources_seen:
            raise OverrideError(
                f"override spec (foreign_keys.add[{index}]): duplicate addition on "
                f"{addition.source}[{', '.join(addition.source_attrs)}]; a source "
                "column can reference only one target"
            )
        sources_seen.add(source_key)
        additions.append(addition)
    result.fk_additions = tuple(additions)
    result.fk_removals = _string_tuple(fk_spec.get("remove"), "foreign_keys.remove") or ()
    return result


def _read_spec_file(path: Path) -> Mapping[str, Any]:
    if not path.is_file():
        raise OverrideError(f"override spec file {path} does not exist")
    text = path.read_text()
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:  # pragma: no cover - depends on the environment
            raise OverrideError(
                f"override spec {path}: reading YAML needs the optional pyyaml "
                "dependency; install it or provide the spec as JSON"
            ) from None
        loaded = yaml.safe_load(text)
    else:
        try:
            loaded = json.loads(text)
        except json.JSONDecodeError as error:
            raise OverrideError(
                f"override spec {path}: not valid JSON ({error}); YAML specs must "
                "use a .yaml/.yml suffix"
            ) from error
    if loaded is None:
        return {}
    if not isinstance(loaded, Mapping):
        raise OverrideError(f"override spec {path}: top level must be a mapping")
    return loaded


def _string_tuple(value: Any, context: str) -> tuple[str, ...] | None:
    if value is None:
        return None
    if isinstance(value, str) or not isinstance(value, Sequence):
        raise OverrideError(
            f"override spec ({context}): expected a list of strings, got {value!r}"
        )
    items = tuple(str(item) for item in value)
    return items


def _score(value: Any) -> float | None:
    if value is None:
        return None
    try:
        score = float(value)
    except (TypeError, ValueError):
        raise OverrideError(
            f"override spec (min_fk_score): expected a number, got {value!r}"
        ) from None
    if not 0.0 <= score <= 1.0:
        raise OverrideError("override spec (min_fk_score): must be between 0 and 1")
    return score

"""Source readers: CSV directories and SQLite files → :class:`RawTable` lists.

Layer: ``io`` (relational ingestion; sits on top of ``db``).

Contract: each reader returns a list of :class:`~repro.io.tables.RawTable`
in a *deterministic table order*, because table order is observable
downstream — foreign keys are discovered source-relation by source-relation,
and the foreign-key list order determines the walk-scheme enumeration order
of the embedding algorithms (and therefore their RNG consumption).

* CSV directories carry no inherent order, so tables come back sorted by
  file name; pass ``relation_order`` (directly or via the override spec) to
  reproduce a specific schema's order.
* SQLite files *do* carry an order — ``sqlite_master`` keeps tables in
  creation order — and the reader preserves it, which is what makes a
  SQLite round trip of a bundled dataset exact without any hints.

All structural defects raise :class:`~repro.io.errors.MalformedSourceError`
with the file and row that caused them.
"""

from __future__ import annotations

import csv
import sqlite3
from pathlib import Path
from typing import Sequence

from repro.io.errors import MalformedSourceError
from repro.io.tables import (
    DEFAULT_NULL_VALUES,
    RawTable,
    parse_cell,
    quote_sqlite_identifier,
)

SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")
"""File suffixes recognised as SQLite containers by :func:`repro.io.ingest.ingest_path`."""


def read_csv_dir(
    directory: str | Path,
    *,
    null_values: Sequence[str] = DEFAULT_NULL_VALUES,
    relation_order: Sequence[str] | None = None,
    delimiter: str = ",",
    encoding: str = "utf-8-sig",
) -> list[RawTable]:
    """Read every ``*.csv`` file of a directory into raw tables.

    The table name is the file stem.  Each file must have a header row and
    rectangular data rows; cells are parsed with
    :func:`~repro.io.tables.parse_cell` (``null_values`` spellings become
    ``None``).  Tables are returned sorted by name unless
    ``relation_order`` — a permutation of the discovered table names —
    pins a specific order.  The default encoding is ``utf-8-sig``, which
    reads plain UTF-8 unchanged but strips the byte-order mark that
    Excel-style exports prepend (a BOM would otherwise leak into the
    first column's name).
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise MalformedSourceError(
            f"{directory}: not a directory; point the CSV importer at a directory "
            "containing one .csv file per relation"
        )
    paths: dict[str, Path] = {}
    for path in sorted(directory.iterdir()):
        # match the extension case-insensitively: Windows/Excel exports
        # frequently ship TEAMS.CSV, and silently skipping it would ingest
        # an incomplete database
        if not path.is_file() or path.suffix.lower() != ".csv":
            continue
        if path.stem in paths:
            raise MalformedSourceError(
                f"{directory}: {paths[path.stem].name} and {path.name} would both "
                f"become relation {path.stem!r}; rename one of them"
            )
        paths[path.stem] = path
    if not paths:
        raise MalformedSourceError(
            f"{directory}: contains no .csv files; nothing to ingest"
        )
    order = resolve_relation_order(sorted(paths), relation_order, str(directory))
    return [
        _read_csv_file(paths[name], null_values=null_values, delimiter=delimiter, encoding=encoding)
        for name in order
    ]


def resolve_relation_order(
    discovered: Sequence[str], requested: Sequence[str] | None, origin: str
) -> list[str]:
    """Validate a requested table order against the discovered table names.

    ``requested`` must be an exact permutation of ``discovered`` (no
    duplicates, no unknown names, nothing missing) — a typo'd order would
    otherwise silently reorder tables, and table order determines the
    foreign-key list order and hence downstream RNG consumption.  Returns
    ``discovered`` unchanged when no order is requested.
    """
    if requested is None:
        return list(discovered)
    requested = list(requested)
    missing = sorted(set(discovered) - set(requested))
    unknown = sorted(set(requested) - set(discovered))
    if missing or unknown:
        parts = []
        if missing:
            parts.append(f"tables not mentioned: {', '.join(missing)}")
        if unknown:
            parts.append(f"names with no matching file: {', '.join(unknown)}")
        raise MalformedSourceError(
            f"{origin}: relation_order must be a permutation of the discovered "
            f"table names ({'; '.join(parts)})"
        )
    if len(requested) != len(set(requested)):
        raise MalformedSourceError(f"{origin}: relation_order contains duplicate names")
    return requested


def _read_csv_file(
    path: Path,
    *,
    null_values: Sequence[str],
    delimiter: str,
    encoding: str,
) -> RawTable:
    with open(path, newline="", encoding=encoding) as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise MalformedSourceError(
                f"{path}: file is empty; every table file needs a header row "
                "naming its columns"
            ) from None
        table = RawTable(path.stem, tuple(h.strip() for h in header), origin=str(path))
        for line, row in enumerate(reader, start=2):
            if not row:  # a completely blank line is tolerated
                continue
            if len(row) != len(table.columns):
                raise MalformedSourceError(
                    f"{path}, row {line}: has {len(row)} values but the header "
                    f"declares {len(table.columns)} columns; the file may use a "
                    "different delimiter or contain unquoted separators — fix the "
                    "row or pass the right delimiter"
                )
            table.rows.append(tuple(parse_cell(cell, null_values) for cell in row))
    return table


def read_sqlite(path: str | Path) -> list[RawTable]:
    """Read every user table of a SQLite file into raw tables.

    Tables are returned in creation order (``sqlite_master`` order) and
    rows in ``rowid`` order, i.e. insertion order — the order a dump
    produced by :func:`repro.io.export.export_sqlite` wrote them in.
    Values arrive with SQLite's own types (int/float/str, ``NULL`` →
    ``None``); BLOB columns are rejected.
    """
    path = Path(path)
    if not path.is_file():
        raise MalformedSourceError(f"{path}: no such file; nothing to ingest")
    try:
        connection = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
    except sqlite3.Error as error:  # pragma: no cover - OS-dependent
        raise MalformedSourceError(f"{path}: cannot open as SQLite ({error})") from error
    try:
        try:
            names = [
                row[0]
                for row in connection.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table' "
                    "AND name NOT LIKE 'sqlite_%' ORDER BY rowid"
                )
            ]
        except sqlite3.DatabaseError as error:
            raise MalformedSourceError(
                f"{path}: not a SQLite database ({error}); the SQLite importer "
                "needs a database file, not a text dump"
            ) from error
        if not names:
            raise MalformedSourceError(f"{path}: contains no tables; nothing to ingest")
        return [_read_sqlite_table(connection, name, str(path)) for name in names]
    finally:
        connection.close()


def _read_sqlite_table(connection: sqlite3.Connection, name: str, origin: str) -> RawTable:
    quoted = quote_sqlite_identifier(name)
    columns = [row[1] for row in connection.execute(f"PRAGMA table_info({quoted})")]
    table = RawTable(name, tuple(columns), origin=origin)
    try:
        cursor = connection.execute(f"SELECT * FROM {quoted} ORDER BY rowid")
    except sqlite3.OperationalError:
        # WITHOUT ROWID tables: fall back to the table's natural order
        cursor = connection.execute(f"SELECT * FROM {quoted}")
    for number, row in enumerate(cursor, start=1):
        for value in row:
            if isinstance(value, (bytes, memoryview)):
                raise MalformedSourceError(
                    f"{origin}, table {name!r}, row {number}: contains a BLOB value; "
                    "the ingestion layer handles text and numbers only — export the "
                    "column as text or drop it"
                )
        table.rows.append(tuple(row))
    return table

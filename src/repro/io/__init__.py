"""Relational ingestion layer: external CSV/SQLite corpora → typed databases.

Layer: ``io`` — the top of the dependency stack; uses ``db`` (schema and
database construction), ``kernels`` (type → kernel mapping), ``core``
(CLI embedding), ``datasets`` (registry integration) and ``service`` (the
streaming adapter).  Nothing inside the library imports ``io``.

The pipeline::

    files ──read──► RawTable ──infer──► Schema ──build──► Database
             readers.py       infer.py   + overrides.py    build.py

* :func:`ingest_csv_dir` / :func:`ingest_sqlite` / :func:`ingest_path` —
  one-call ingestion with per-column type inference, primary-key
  detection, and foreign-key discovery (inclusion dependencies scored by
  name similarity), returning an :class:`IngestResult`;
* :func:`load_overrides` / :class:`OverrideSpec` — the declarative
  correction layer for when inference needs a human decision;
* :func:`export_csv_dir` / :func:`export_sqlite` — schema-less dumps of
  any :class:`~repro.db.database.Database` (the exact inverses of the
  importers; round trips reproduce embeddings bit-for-bit);
* :func:`stream_table` — replay an ingested table through a
  :class:`~repro.service.ChangeFeed` so external data drives the online
  embedding service;
* :func:`register_ingested` — make an external corpus available to every
  experiment driver via ``load_dataset(name)``;
* ``python -m repro ingest`` — the file → database → embeddings → saved
  model command line (:mod:`repro.cli.ingest`; the historical
  ``python -m repro.io.ingest`` forwards there as a deprecation shim).

See ``docs/INGESTION.md`` for the full guide.
"""

from repro.io.errors import (
    InferenceError,
    IngestionError,
    MalformedSourceError,
    OverrideError,
)
from repro.io.export import export_csv_dir, export_sqlite
from repro.io.infer import (
    InferenceReport,
    discover_foreign_keys,
    infer_column_type,
    infer_key,
    infer_schema,
)
from repro.io.overrides import OverrideSpec, load_overrides
from repro.io.pipeline import (
    IngestResult,
    ingest_csv_dir,
    ingest_path,
    ingest_sqlite,
    ingest_tables,
    register_ingested,
)
from repro.io.readers import read_csv_dir, read_sqlite
from repro.io.stream import TableStream, stream_table
from repro.io.tables import DEFAULT_NULL_VALUES, RawTable

__all__ = [
    # errors
    "IngestionError",
    "MalformedSourceError",
    "InferenceError",
    "OverrideError",
    # raw tables and readers
    "RawTable",
    "DEFAULT_NULL_VALUES",
    "read_csv_dir",
    "read_sqlite",
    # inference
    "InferenceReport",
    "infer_column_type",
    "infer_key",
    "infer_schema",
    "discover_foreign_keys",
    # overrides
    "OverrideSpec",
    "load_overrides",
    # ingestion
    "IngestResult",
    "ingest_tables",
    "ingest_csv_dir",
    "ingest_sqlite",
    "ingest_path",
    "register_ingested",
    # export
    "export_csv_dir",
    "export_sqlite",
    # streaming adapter
    "TableStream",
    "stream_table",
]

"""The ingestion CLI: files → database → embeddings → saved model.

Layer: ``io`` (relational ingestion; CLI shell over :mod:`repro.io.pipeline`).

::

    python -m repro.io.ingest data/ --out artifacts/ --relation TARGET \\
        --attribute target [--overrides spec.json] [--report]

ingests a CSV directory or SQLite file (schema, keys and foreign keys
inferred, correctable via an override spec), writes ``schema.json``,
``report.json`` and a fact-id-preserving ``database.json``, then — when
``--relation`` is given — trains FoRWaRD on that relation (hiding
``--attribute``, the paper's protocol) and saves ``embeddings.npz`` plus a
restartable model directory.  Exit code 0 on success, 2 on any ingestion
or embedding failure (with an actionable message on stderr).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.db.serialization import save_database_json, schema_to_dict
from repro.io.errors import IngestionError
from repro.io.pipeline import ingest_path


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.io.ingest",
        description=(
            "Ingest a CSV directory or SQLite file into a typed database "
            "(schema, keys and foreign keys inferred), optionally train FoRWaRD "
            "embeddings on one relation, and save all artifacts."
        ),
    )
    parser.add_argument("source", help="directory of .csv files, or a SQLite file")
    parser.add_argument("--out", required=True, help="output directory for artifacts")
    parser.add_argument(
        "--relation",
        help="relation to embed with FoRWaRD (omit to only ingest and save the database)",
    )
    parser.add_argument(
        "--attribute",
        help="prediction attribute to hide during embedding (paper protocol); "
        "requires --relation",
    )
    parser.add_argument("--overrides", help="override spec file (JSON, or YAML with pyyaml)")
    parser.add_argument(
        "--delimiter", help="CSV cell delimiter (default: comma)"
    )
    parser.add_argument(
        "--encoding",
        help="CSV file encoding (default: utf-8-sig, which strips Excel's BOM)",
    )
    parser.add_argument(
        "--allow-dangling", action="store_true",
        help="tolerate dangling foreign-key references instead of failing",
    )
    parser.add_argument(
        "--report", action="store_true", help="print the full inference report"
    )
    embedding = parser.add_argument_group("embedding hyper-parameters")
    embedding.add_argument("--dimension", type=int, default=32)
    embedding.add_argument("--epochs", type=int, default=5)
    embedding.add_argument("--samples", type=int, default=2000, dest="n_samples")
    embedding.add_argument("--walk-length", type=int, default=2, dest="max_walk_length")
    embedding.add_argument("--batch-size", type=int, default=4096)
    embedding.add_argument("--learning-rate", type=float, default=0.01)
    embedding.add_argument("--seed", type=int, default=0)
    return parser


def run(argv: Sequence[str] | None = None) -> int:
    """The CLI: ingest, optionally embed, save artifacts.  Returns exit code."""
    args = _build_parser().parse_args(argv)
    if args.attribute and not args.relation:
        print("error: --attribute requires --relation", file=sys.stderr)
        return 2
    try:
        result = ingest_path(
            args.source,
            overrides=args.overrides,
            delimiter=args.delimiter,
            encoding=args.encoding,
            allow_dangling=args.allow_dangling,
        )
    except IngestionError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(result.summary())
    if args.report:
        print(result.report.format())

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    (out / "schema.json").write_text(json.dumps(schema_to_dict(result.schema), indent=2))
    (out / "report.json").write_text(json.dumps(result.report.to_dict(), indent=2))
    save_database_json(result.database, out / "database.json", include_fact_ids=True)
    print(f"wrote {out / 'schema.json'}, {out / 'report.json'}, {out / 'database.json'}")

    if not args.relation:
        return 0
    if not result.schema.has_relation(args.relation):
        known = ", ".join(result.schema.relation_names)
        print(
            f"error: relation {args.relation!r} was not ingested; "
            f"ingested relations are: {known}",
            file=sys.stderr,
        )
        return 2

    from repro.core import ForwardConfig, ForwardEmbedder
    from repro.core.persistence import save_embedding, save_forward_model

    db = result.database
    if args.attribute:
        rel_schema = result.schema.relation(args.relation)
        if not rel_schema.has_attribute(args.attribute):
            print(
                f"error: relation {args.relation!r} has no attribute "
                f"{args.attribute!r}; its attributes are: "
                f"{', '.join(rel_schema.attribute_names)}",
                file=sys.stderr,
            )
            return 2
        if args.attribute in rel_schema.key:
            print(
                f"error: {args.attribute!r} is part of the key of "
                f"{args.relation!r} and cannot be hidden for embedding; "
                "pick a non-key prediction attribute",
                file=sys.stderr,
            )
            return 2
        db = db.mask_attribute(args.relation, args.attribute)
    try:
        config = ForwardConfig(
            dimension=args.dimension,
            n_samples=args.n_samples,
            batch_size=args.batch_size,
            max_walk_length=args.max_walk_length,
            epochs=args.epochs,
            learning_rate=args.learning_rate,
        )
        model = ForwardEmbedder(db, args.relation, config, rng=args.seed).fit()
    except ValueError as error:
        print(f"error: embedding failed: {error}", file=sys.stderr)
        return 2
    save_embedding(model.embedding(), out / "embeddings.npz")
    save_forward_model(model, out / "model")
    print(
        f"embedded {len(model.fact_ids)} {args.relation} facts "
        f"(d={config.dimension}, {len(model.targets)} walk targets, "
        f"final loss {model.loss_history[-1]:.4f}); "
        f"wrote {out / 'embeddings.npz'} and {out / 'model'}/"
    )
    return 0


if __name__ == "__main__":
    sys.exit(run())

"""Deprecated shim: the ingestion CLI moved to ``python -m repro ingest``.

Layer: ``io`` (relational ingestion; legacy CLI entry point).

``python -m repro.io.ingest`` and the importable :func:`run` keep working —
they forward verbatim to :mod:`repro.cli.ingest`, which produces identical
artifacts and output — but emit a :class:`DeprecationWarning` pointing at
the unified command::

    python -m repro ingest data/ --out artifacts/ --relation TARGET \\
        --attribute target [--method "forward(dimension=32)"] [--report]
"""

from __future__ import annotations

import sys
import warnings
from typing import Sequence


def _warn() -> None:
    warnings.warn(
        "python -m repro.io.ingest is deprecated; use `python -m repro ingest` "
        "(same flags, plus --method/--config)",
        DeprecationWarning,
        stacklevel=3,
    )


def run(argv: Sequence[str] | None = None) -> int:
    """Forward to :func:`repro.cli.ingest.run` (deprecated entry point)."""
    _warn()
    from repro.cli.ingest import run as run_ingest

    return run_ingest(argv)


if __name__ == "__main__":
    sys.exit(run())

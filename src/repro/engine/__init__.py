"""Compiled walk engine: vectorised destination distributions on CSR arrays.

This package compiles a :class:`~repro.db.database.Database` into flat
integer arrays (:mod:`repro.engine.compiled`) and computes the walk
destination distributions of Section V-A for all facts of a relation at once
as products of sparse row-stochastic matrices (:mod:`repro.engine.engine`),
plus vectorised training-batch sampling (:mod:`repro.engine.sampling`).

The reference per-fact BFS lives in :mod:`repro.walks.random_walks` and
remains the executable specification; the engine is the production hot path
and is verified against the reference by the equivalence test-suite
(``tests/engine/``).
"""

from repro.engine.compiled import CompiledDatabase, CompiledRelation, ValueColumn
from repro.engine.engine import WalkEngine
from repro.engine.persistence import load_compiled, save_compiled
from repro.engine.sampling import sample_codes, sample_distinct_pairs

__all__ = [
    "CompiledDatabase",
    "CompiledRelation",
    "ValueColumn",
    "WalkEngine",
    "load_compiled",
    "save_compiled",
    "sample_codes",
    "sample_distinct_pairs",
]

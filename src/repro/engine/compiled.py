"""Compilation of a :class:`~repro.db.database.Database` into flat arrays.

The object-per-fact representation of :mod:`repro.db` is convenient for
constraint checking and incremental maintenance, but it makes the random-walk
hot path (Section V-A) traverse boxed :class:`Fact` objects one at a time.
This module compiles a database into integer arrays once, so the walk
machinery can run as vectorised array programs:

* every relation gets a dense row numbering of its facts (``fact_ids`` /
  ``row_of``);
* every foreign key gets a forward pointer array ``fk_target_rows[fk]`` —
  for each source row the row of the referenced target fact, or ``-1`` for a
  dangling/null reference — from which forward and backward transition
  matrices in CSR form are derived;
* every ``(relation, attribute)`` column is dictionary-encoded into integer
  codes over a per-column vocabulary (``-1`` encodes ⊥).

The compiled form supports the full CRUD cycle incrementally:

* :meth:`CompiledDatabase.add_fact` appends an inserted fact, repairing
  dangling foreign-key pointers in both directions;
* :meth:`CompiledDatabase.remove_fact` *tombstones* a deleted fact's row —
  the row keeps its number (so every other row's numbering, and therefore
  every cached matrix shape, stays valid) but is masked out of all
  transitions: its outgoing pointers and every pointer referencing it are
  repaired to ``-1``.  Tombstones are compacted lazily once they dominate a
  relation (:meth:`compact`), amortising the rebuild over many deletions;
* :meth:`CompiledDatabase.update_fact` re-encodes an updated fact's column
  values in place and re-resolves foreign-key pointers touching it.

:meth:`CompiledDatabase.refresh` syncs with the backing database by
replaying its bounded changelog (``Database.changes_since``), so a refresh
costs O(changes) — and O(1) when nothing changed — instead of a full
database scan.  Alongside the global ``version`` (bumped by every mutation)
the compiled form keeps *per-relation* and *per-foreign-key* dirty counters
so downstream caches keyed on them survive mutations that cannot have
affected them.
"""

from __future__ import annotations

import time
from typing import Any, Iterable

import numpy as np

from repro.db.database import Database, Fact
from repro.db.schema import RelationSchema
from repro.obs import NULL_TELEMETRY, Telemetry

Value = Any


class ValueColumn:
    """Dictionary-encoded values of one ``(relation, attribute)`` column.

    ``codes[row]`` is the index of the row's value in ``vocab``, or ``-1``
    when the value is ⊥ (None).  The vocabulary grows append-only so codes
    remain stable under incremental extension.
    """

    __slots__ = ("codes", "vocab", "code_of")

    def __init__(self) -> None:
        self.codes: list[int] = []
        self.vocab: list[Value] = []
        self.code_of: dict[Value, int] = {}

    def code_for(self, value: Value) -> int:
        """The code of ``value`` (⊥ is ``-1``), growing the vocabulary."""
        if value is None:
            return -1
        code = self.code_of.get(value)
        if code is None:
            code = len(self.vocab)
            self.code_of[value] = code
            self.vocab.append(value)
        return code

    def append(self, value: Value) -> None:
        self.codes.append(self.code_for(value))

    def set(self, row: int, value: Value) -> bool:
        """Re-encode one row's value in place; returns True when it changed."""
        code = self.code_for(value)
        if self.codes[row] == code:
            return False
        self.codes[row] = code
        return True

    def codes_array(self) -> np.ndarray:
        return np.asarray(self.codes, dtype=np.int64)

    def vocab_array(self) -> np.ndarray:
        out = np.empty(len(self.vocab), dtype=object)
        out[:] = self.vocab
        return out

    def __len__(self) -> int:
        return len(self.codes)


class CompiledRelation:
    """The facts of one relation, numbered densely and column-encoded.

    Deleted facts are *tombstoned*: their row keeps its number (``num_rows``
    never shrinks outside compaction) but ``alive[row]`` turns false, the
    ``fact_ids`` slot is cleared to ``-1`` and the ``row_of`` entry is
    dropped, so tombstoned rows are unreachable by fact id.
    """

    __slots__ = ("schema", "fact_ids", "row_of", "columns", "alive", "num_dead")

    def __init__(self, schema: RelationSchema):
        self.schema = schema
        self.fact_ids: list[int] = []
        self.row_of: dict[int, int] = {}
        self.columns: dict[str, ValueColumn] = {
            name: ValueColumn() for name in schema.attribute_names
        }
        self.alive: list[bool] = []
        self.num_dead = 0

    @property
    def num_rows(self) -> int:
        """Total rows, tombstones included (the compiled row-space size)."""
        return len(self.fact_ids)

    @property
    def num_alive(self) -> int:
        return len(self.fact_ids) - self.num_dead

    def append(self, fact: Fact) -> int:
        row = len(self.fact_ids)
        self.row_of[fact.fact_id] = row
        self.fact_ids.append(fact.fact_id)
        self.alive.append(True)
        for name, value in zip(self.schema.attribute_names, fact.values):
            self.columns[name].append(value)
        return row

    def tombstone(self, fact_id: int) -> int | None:
        """Mark the fact's row dead; returns the row, or None if unknown."""
        row = self.row_of.pop(fact_id, None)
        if row is None:
            return None
        self.alive[row] = False
        self.fact_ids[row] = -1
        self.num_dead += 1
        return row

    def alive_array(self) -> np.ndarray:
        return np.asarray(self.alive, dtype=bool)

    def fact_ids_array(self) -> np.ndarray:
        return np.asarray(self.fact_ids, dtype=np.int64)


class CompiledDatabase:
    """Flat-array view of a database, kept in sync by incremental mutation.

    The backing :class:`Database` stays the source of truth; the compiled
    arrays are a performance structure.  ``version`` increases on every
    mutation so downstream caches (distribution matrices) can invalidate
    cheaply; ``rel_versions``/``fk_versions`` increase only when the named
    relation / foreign key was actually touched, so per-step transition
    matrices of untouched foreign keys survive unrelated mutations.
    """

    #: Tombstone fraction beyond which a relation triggers lazy compaction.
    COMPACT_FRACTION = 0.5
    #: Minimum tombstones before compaction is considered at all.
    COMPACT_MIN_DEAD = 64

    def __init__(self, db: Database, *, telemetry: Telemetry | None = None):
        self.db = db
        self.schema = db.schema
        self.relations: dict[str, CompiledRelation] = {}
        self.fk_target_rows: dict[str, list[int]] = {}
        self.version = 0
        self.rel_versions: dict[str, int] = {
            name: 0 for name in db.schema.relation_names
        }
        self.fk_versions: dict[str, int] = {
            fk.name: 0 for fk in db.schema.foreign_keys
        }
        # Structural counters: like the dirty counters above, but *pure
        # appends leave them untouched*.  A cached matrix whose structural
        # signature still matches only grew new rows at the bottom — its old
        # rows are bit-identical — so downstream caches can extend in place
        # instead of recomputing (see WalkEngine).  What bumps them:
        #   rel_struct_versions[r]  — tombstone/update/compaction of r (an
        #       append never changes existing rows of r);
        #   fk_fwd_struct[fk]       — an existing forward pointer changed
        #       (delete/update/compact, or a dangling reference repaired by
        #       a late-arriving target);
        #   fk_bwd_struct[fk]       — additionally, *any* append with a
        #       resolved pointer: the backward matrix renormalises the
        #       referenced row by its new in-degree.
        self.rel_struct_versions: dict[str, int] = {
            name: 0 for name in db.schema.relation_names
        }
        self.fk_fwd_struct: dict[str, int] = {
            fk.name: 0 for fk in db.schema.foreign_keys
        }
        self.fk_bwd_struct: dict[str, int] = {
            fk.name: 0 for fk in db.schema.foreign_keys
        }
        self._fk_array_cache: dict[str, tuple[int, np.ndarray]] = {}
        self._synced_db_version: int | None = None
        self.set_telemetry(telemetry)
        self._compile()

    def set_telemetry(self, telemetry: Telemetry | None) -> None:
        """Attach (or detach, with None) a telemetry bundle.

        Instruments are bound once here so the mutation paths pay one
        attribute access plus a no-op call when observability is off.
        """
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        metrics = self.telemetry.metrics
        self._h_compile = metrics.histogram("engine.compile.seconds")
        self._c_compiles = metrics.counter("engine.compiles")
        self._c_replayed = metrics.counter("engine.refresh.replayed_ops")
        self._c_recompiles = metrics.counter("engine.refresh.recompiles")
        self._c_tombstones = metrics.counter("engine.tombstones")
        self._c_compactions = metrics.counter("engine.compactions")

    # ------------------------------------------------------------- building

    def _compile(self) -> None:
        started = time.perf_counter()
        self.relations = {rel.name: CompiledRelation(rel) for rel in self.schema}
        for rel_name in self.schema.relation_names:
            compiled_rel = self.relations[rel_name]
            for fact in self.db.facts(rel_name):
                compiled_rel.append(fact)
        self.fk_target_rows = {}
        for fk in self.schema.foreign_keys:
            target_rel = self.relations[fk.target]
            pointers: list[int] = []
            for fact_id in self.relations[fk.source].fact_ids:
                target = self.db.referenced_fact(self.db.fact(fact_id), fk)
                if target is None:
                    pointers.append(-1)
                else:
                    pointers.append(target_rel.row_of[target.fact_id])
            self.fk_target_rows[fk.name] = pointers
        for name in self.rel_versions:
            self.rel_versions[name] += 1
            self.rel_struct_versions[name] += 1
        for name in self.fk_versions:
            self.fk_versions[name] += 1
            self.fk_fwd_struct[name] += 1
            self.fk_bwd_struct[name] += 1
        self._synced_db_version = getattr(self.db, "version", None)
        self._h_compile.observe(time.perf_counter() - started)
        self._c_compiles.inc()

    def _touch_relation(self, rel_name: str) -> None:
        """Dirty a relation's row-space and every foreign key touching it."""
        self.rel_versions[rel_name] += 1
        for fk in self.schema.foreign_keys_from(rel_name):
            self.fk_versions[fk.name] += 1
        for fk in self.schema.foreign_keys_to(rel_name):
            self.fk_versions[fk.name] += 1

    def _touch_relation_struct(self, rel_name: str) -> None:
        """Structurally dirty a relation: existing rows/pointers changed."""
        self.rel_struct_versions[rel_name] += 1
        for fk in self.schema.foreign_keys_from(rel_name):
            self.fk_fwd_struct[fk.name] += 1
            self.fk_bwd_struct[fk.name] += 1
        for fk in self.schema.foreign_keys_to(rel_name):
            self.fk_fwd_struct[fk.name] += 1
            self.fk_bwd_struct[fk.name] += 1

    # --------------------------------------------------------------- lookup

    @property
    def num_facts(self) -> int:
        """Live (non-tombstoned) facts across all relations."""
        return sum(rel.num_alive for rel in self.relations.values())

    def has_fact(self, fact: Fact | int) -> bool:
        if isinstance(fact, Fact):
            return fact.fact_id in self.relations[fact.relation].row_of
        return any(fact in rel.row_of for rel in self.relations.values())

    def relation(self, name: str) -> CompiledRelation:
        return self.relations[name]

    def fk_pointer_array(self, fk_name: str) -> np.ndarray:
        hit = self._fk_array_cache.get(fk_name)
        dirty = self.fk_versions[fk_name]
        if hit is not None and hit[0] == dirty:
            return hit[1]
        array = np.asarray(self.fk_target_rows[fk_name], dtype=np.int64)
        self._fk_array_cache[fk_name] = (dirty, array)
        return array

    # ------------------------------------------------------------ extension

    def add_fact(self, fact: Fact) -> int:
        """Append one fact already inserted into the backing database.

        Returns the fact's row in its relation.  Foreign-key pointers are
        updated in both directions: links from the new fact are resolved via
        the database's FK index, and previously dangling references *to* the
        new fact are repaired.
        """
        relation = self.relations[fact.relation]
        existing = relation.row_of.get(fact.fact_id)
        if existing is not None:
            return existing
        row = relation.append(fact)
        for fk in self.schema.foreign_keys_from(fact.relation):
            target = self.db.referenced_fact(fact, fk)
            if target is None:
                pointer = -1
            else:
                pointer = self.relations[fk.target].row_of.get(target.fact_id, -1)
            self.fk_target_rows[fk.name].append(pointer)
            if pointer >= 0:
                # the referenced row's in-degree grew: backward transition
                # rows renormalise, so backward products cannot extend
                self.fk_bwd_struct[fk.name] += 1
        for fk in self.schema.foreign_keys_to(fact.relation):
            pointers = self.fk_target_rows[fk.name]
            source_rel = self.relations[fk.source]
            for source in self.db.referencing_facts(fact, fk):
                source_row = source_rel.row_of.get(source.fact_id)
                if source_row is not None and pointers[source_row] != row:
                    # a previously dangling reference now resolves: an
                    # *existing* row of the forward matrix changed
                    pointers[source_row] = row
                    self.fk_fwd_struct[fk.name] += 1
                    self.fk_bwd_struct[fk.name] += 1
        self._touch_relation(fact.relation)
        self.version += 1
        return row

    def add_facts(self, facts: Iterable[Fact]) -> None:
        for fact in facts:
            self.add_fact(fact)

    # -------------------------------------------------------------- removal

    def remove_fact(self, fact: Fact | int) -> bool:
        """Tombstone one fact deleted from the backing database.

        The row is masked out of every transition: its outgoing foreign-key
        pointers and every pointer referencing it are repaired to ``-1``
        (mirroring :meth:`add_fact`, which repairs them in the other
        direction).  Idempotent — removing an unknown or already-removed
        fact returns False.  Once tombstones dominate a relation the arrays
        are compacted lazily (one amortised rebuild instead of one per
        deletion).
        """
        return self.remove_facts([fact]) == 1

    def remove_facts(self, facts: Iterable[Fact | int]) -> int:
        """Tombstone a batch of deleted facts; returns how many were live.

        The incoming-pointer repair is batched: each foreign key pointing
        at an affected relation is scanned once for the whole batch, so a
        churn batch deleting ``D`` facts costs one pass per foreign key
        instead of ``D``.
        """
        doomed: dict[str, set[int]] = {}
        removed = 0
        for fact in facts:
            if isinstance(fact, Fact):
                fact_id, rel_name = fact.fact_id, fact.relation
            else:
                fact_id = int(fact)
                rel_name = next(
                    (n for n, rel in self.relations.items() if fact_id in rel.row_of),
                    None,
                )
                if rel_name is None:
                    continue
            row = self.relations[rel_name].tombstone(fact_id)
            if row is None:
                continue
            removed += 1
            self._c_tombstones.inc()
            doomed.setdefault(rel_name, set()).add(row)
            for fk in self.schema.foreign_keys_from(rel_name):
                self.fk_target_rows[fk.name][row] = -1
        if not removed:
            return 0
        for rel_name, rows in doomed.items():
            for fk in self.schema.foreign_keys_to(rel_name):
                pointers = self.fk_target_rows[fk.name]
                dead = np.fromiter(rows, dtype=np.int64)
                stale = np.nonzero(
                    np.isin(np.asarray(pointers, dtype=np.int64), dead)
                )[0]
                for source_row in stale:
                    pointers[int(source_row)] = -1
            self._touch_relation(rel_name)
            self._touch_relation_struct(rel_name)
        self.version += 1
        for rel_name in doomed:
            self._maybe_compact(self.relations[rel_name])
        return removed

    def _maybe_compact(self, relation: CompiledRelation) -> None:
        if (
            relation.num_dead >= self.COMPACT_MIN_DEAD
            and relation.num_dead > self.COMPACT_FRACTION * relation.num_rows
        ):
            self.compact()

    def compact(self) -> bool:
        """Rebuild the arrays without tombstoned rows; returns True if any.

        Row numbers change, so every per-relation and per-foreign-key dirty
        counter is bumped (``_compile`` does) and downstream matrices
        rebuild.  Called lazily from :meth:`remove_fact`; safe to call
        explicitly (e.g. before persisting a snapshot).
        """
        if not any(rel.num_dead for rel in self.relations.values()):
            return False
        self._c_compactions.inc()
        with self.telemetry.span("engine.compact"):
            self._compile()
        self.version += 1
        return True

    # --------------------------------------------------------------- update

    def update_fact(self, fact: Fact) -> bool:
        """Sync one updated fact: re-encode values, re-resolve FK pointers.

        ``fact`` carries the post-update values (same ``fact_id``).  Both
        pointer directions are repaired against the database's current FK
        indexes: the row's own references are re-resolved, and rows that
        referenced it (or now should) are fixed up.  Idempotent — a fact
        already in sync returns False.
        """
        relation = self.relations[fact.relation]
        row = relation.row_of.get(fact.fact_id)
        if row is None:
            # never compiled (or tombstoned): treat as an insert if it exists
            if fact.fact_id in self.db._facts_by_id:  # noqa: SLF001
                self.add_fact(self.db.fact(fact.fact_id))
                return True
            return False
        values_changed = False
        for name, value in zip(relation.schema.attribute_names, fact.values):
            values_changed |= relation.columns[name].set(row, value)
        db_fact = self.db._facts_by_id.get(fact.fact_id, fact)  # noqa: SLF001
        fk_changed = False
        for fk in self.schema.foreign_keys_from(fact.relation):
            target = self.db.referenced_fact(db_fact, fk)
            pointer = (
                -1
                if target is None
                else self.relations[fk.target].row_of.get(target.fact_id, -1)
            )
            pointers = self.fk_target_rows[fk.name]
            if pointers[row] != pointer:
                pointers[row] = pointer
                self.fk_versions[fk.name] += 1
                self.fk_fwd_struct[fk.name] += 1
                self.fk_bwd_struct[fk.name] += 1
                fk_changed = True
        for fk in self.schema.foreign_keys_to(fact.relation):
            pointers = self.fk_target_rows[fk.name]
            old_rows = {
                int(i)
                for i in np.nonzero(np.asarray(pointers, dtype=np.int64) == row)[0]
            }
            source_rel = self.relations[fk.source]
            new_rows = set()
            for source in self.db.referencing_facts(db_fact, fk):
                source_row = source_rel.row_of.get(source.fact_id)
                if source_row is not None:
                    new_rows.add(source_row)
            if old_rows == new_rows:
                continue
            fk_changed = True
            self.fk_versions[fk.name] += 1
            self.fk_fwd_struct[fk.name] += 1
            self.fk_bwd_struct[fk.name] += 1
            for stale in old_rows - new_rows:
                # the source may reference a different fact now (key change)
                source_id = source_rel.fact_ids[stale]
                source_fact = self.db._facts_by_id.get(source_id)  # noqa: SLF001
                target = (
                    self.db.referenced_fact(source_fact, fk)
                    if source_fact is not None
                    else None
                )
                pointers[stale] = (
                    -1
                    if target is None
                    else self.relations[fk.target].row_of.get(target.fact_id, -1)
                )
            for fresh in new_rows - old_rows:
                pointers[fresh] = row
        if values_changed:
            self.rel_versions[fact.relation] += 1
            self.rel_struct_versions[fact.relation] += 1
        if values_changed or fk_changed:
            self.version += 1
            return True
        return False

    def update_facts(self, facts: Iterable[Fact]) -> None:
        for fact in facts:
            self.update_fact(fact)

    # ----------------------------------------------------------------- sync

    def refresh(self) -> bool:
        """Bring the compiled arrays in sync with the backing database.

        O(1) when the database's mutation counter is unchanged.  Otherwise
        the database's changelog is replayed — inserts append, deletions
        tombstone, updates re-encode in place — so the cost is proportional
        to the number of changes, not the database size.  Only when the
        changelog window has been truncated (or the compiled state was
        restored from a snapshot with no known sync point) does it fall back
        to a scan/recompile.  Returns True when anything changed.
        """
        target = self.db.version
        if self._synced_db_version == target:
            return False
        if self._synced_db_version is None:
            # snapshot-restored state: unknown sync point, diff by scanning
            changed = self._scan_refresh()
            self._synced_db_version = self.db.version
            return changed
        events = self.db.changes_since(self._synced_db_version)
        if events is None:
            # the window fell out of the bounded changelog: recompile
            self._c_recompiles.inc()
            self._compile()
            self.version += 1
            return True
        self._c_replayed.inc(len(events))
        changed = False
        for _event_version, op, fact in events:
            if op == "insert":
                if fact.fact_id not in self.db._facts_by_id:  # noqa: SLF001
                    continue  # deleted again later in the window
                before = self.version
                self.add_fact(fact)
                changed |= self.version != before
            elif op == "delete":
                changed |= self.remove_fact(fact)
            else:
                current = self.db._facts_by_id.get(fact.fact_id)  # noqa: SLF001
                if current is None or current.values != fact.values:
                    continue  # superseded by a later update (or a deletion)
                changed |= self.update_fact(current)
        self._synced_db_version = self.db.version
        return changed

    def _scan_refresh(self) -> bool:
        """Full-scan sync for states with no known changelog position.

        Appends missing facts, recompiles when any compiled fact was
        deleted, and re-encodes facts whose compiled values no longer match
        the database (in-place updates that happened outside the changelog
        window — e.g. between a snapshot save and its restore).
        """
        missing = [fact for fact in self.db if not self.has_fact(fact)]
        if len(self.db) - len(missing) != self.num_facts:
            self._compile()
            self.version += 1
            return True
        stale: list[Fact] = []
        for relation in self.relations.values():
            attribute_names = relation.schema.attribute_names
            columns = [relation.columns[name] for name in attribute_names]
            for fact_id, row in relation.row_of.items():
                fact = self.db._facts_by_id[fact_id]  # noqa: SLF001
                for column, value in zip(columns, fact.values):
                    code = column.codes[row]
                    stored = None if code < 0 else column.vocab[code]
                    if stored != value:
                        stale.append(fact)
                        break
        self.update_facts(stale)
        if missing:
            self.add_facts(missing)
        return bool(missing) or bool(stale)

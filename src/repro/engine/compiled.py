"""Compilation of a :class:`~repro.db.database.Database` into flat arrays.

The object-per-fact representation of :mod:`repro.db` is convenient for
constraint checking and incremental maintenance, but it makes the random-walk
hot path (Section V-A) traverse boxed :class:`Fact` objects one at a time.
This module compiles a database into integer arrays once, so the walk
machinery can run as vectorised array programs:

* every relation gets a dense row numbering of its facts (``fact_ids`` /
  ``row_of``);
* every foreign key gets a forward pointer array ``fk_target_rows[fk]`` —
  for each source row the row of the referenced target fact, or ``-1`` for a
  dangling/null reference — from which forward and backward transition
  matrices in CSR form are derived;
* every ``(relation, attribute)`` column is dictionary-encoded into integer
  codes over a per-column vocabulary (``-1`` encodes ⊥).

The compiled form supports *incremental extension*: :meth:`CompiledDatabase.
add_fact` appends a fact inserted into the backing database without
recompiling, mirroring ``Database.insert`` / ``DatabaseGraph.add_fact`` so
the dynamic scenarios (Section V-E) stay cheap.  Deletions are not tracked
incrementally; :meth:`CompiledDatabase.refresh` detects them and recompiles.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from repro.db.database import Database, Fact
from repro.db.schema import RelationSchema

Value = Any


class ValueColumn:
    """Dictionary-encoded values of one ``(relation, attribute)`` column.

    ``codes[row]`` is the index of the row's value in ``vocab``, or ``-1``
    when the value is ⊥ (None).  The vocabulary grows append-only so codes
    remain stable under incremental extension.
    """

    __slots__ = ("codes", "vocab", "code_of")

    def __init__(self) -> None:
        self.codes: list[int] = []
        self.vocab: list[Value] = []
        self.code_of: dict[Value, int] = {}

    def append(self, value: Value) -> None:
        if value is None:
            self.codes.append(-1)
            return
        code = self.code_of.get(value)
        if code is None:
            code = len(self.vocab)
            self.code_of[value] = code
            self.vocab.append(value)
        self.codes.append(code)

    def codes_array(self) -> np.ndarray:
        return np.asarray(self.codes, dtype=np.int64)

    def vocab_array(self) -> np.ndarray:
        out = np.empty(len(self.vocab), dtype=object)
        out[:] = self.vocab
        return out

    def __len__(self) -> int:
        return len(self.codes)


class CompiledRelation:
    """The facts of one relation, numbered densely and column-encoded."""

    __slots__ = ("schema", "fact_ids", "row_of", "columns")

    def __init__(self, schema: RelationSchema):
        self.schema = schema
        self.fact_ids: list[int] = []
        self.row_of: dict[int, int] = {}
        self.columns: dict[str, ValueColumn] = {
            name: ValueColumn() for name in schema.attribute_names
        }

    @property
    def num_rows(self) -> int:
        return len(self.fact_ids)

    def append(self, fact: Fact) -> int:
        row = len(self.fact_ids)
        self.row_of[fact.fact_id] = row
        self.fact_ids.append(fact.fact_id)
        for name, value in zip(self.schema.attribute_names, fact.values):
            self.columns[name].append(value)
        return row

    def fact_ids_array(self) -> np.ndarray:
        return np.asarray(self.fact_ids, dtype=np.int64)


class CompiledDatabase:
    """Flat-array view of a database, kept in sync by incremental appends.

    The backing :class:`Database` stays the source of truth; the compiled
    arrays are a performance structure.  ``version`` increases on every
    mutation so downstream caches (transition matrices, distribution
    matrices) can invalidate cheaply.
    """

    def __init__(self, db: Database):
        self.db = db
        self.schema = db.schema
        self.relations: dict[str, CompiledRelation] = {}
        self.fk_target_rows: dict[str, list[int]] = {}
        self.version = 0
        self._fk_array_cache: dict[str, tuple[int, np.ndarray]] = {}
        self._compile()

    # ------------------------------------------------------------- building

    def _compile(self) -> None:
        self.relations = {rel.name: CompiledRelation(rel) for rel in self.schema}
        for rel_name in self.schema.relation_names:
            compiled_rel = self.relations[rel_name]
            for fact in self.db.facts(rel_name):
                compiled_rel.append(fact)
        self.fk_target_rows = {}
        for fk in self.schema.foreign_keys:
            target_rel = self.relations[fk.target]
            pointers: list[int] = []
            for fact_id in self.relations[fk.source].fact_ids:
                target = self.db.referenced_fact(self.db.fact(fact_id), fk)
                if target is None:
                    pointers.append(-1)
                else:
                    pointers.append(target_rel.row_of[target.fact_id])
            self.fk_target_rows[fk.name] = pointers

    # --------------------------------------------------------------- lookup

    @property
    def num_facts(self) -> int:
        return sum(rel.num_rows for rel in self.relations.values())

    def has_fact(self, fact: Fact | int) -> bool:
        if isinstance(fact, Fact):
            return fact.fact_id in self.relations[fact.relation].row_of
        return any(fact in rel.row_of for rel in self.relations.values())

    def relation(self, name: str) -> CompiledRelation:
        return self.relations[name]

    def fk_pointer_array(self, fk_name: str) -> np.ndarray:
        hit = self._fk_array_cache.get(fk_name)
        if hit is not None and hit[0] == self.version:
            return hit[1]
        array = np.asarray(self.fk_target_rows[fk_name], dtype=np.int64)
        self._fk_array_cache[fk_name] = (self.version, array)
        return array

    # ------------------------------------------------------------ extension

    def add_fact(self, fact: Fact) -> int:
        """Append one fact already inserted into the backing database.

        Returns the fact's row in its relation.  Foreign-key pointers are
        updated in both directions: links from the new fact are resolved via
        the database's FK index, and previously dangling references *to* the
        new fact are repaired.
        """
        relation = self.relations[fact.relation]
        existing = relation.row_of.get(fact.fact_id)
        if existing is not None:
            return existing
        row = relation.append(fact)
        for fk in self.schema.foreign_keys_from(fact.relation):
            target = self.db.referenced_fact(fact, fk)
            if target is None:
                pointer = -1
            else:
                pointer = self.relations[fk.target].row_of.get(target.fact_id, -1)
            self.fk_target_rows[fk.name].append(pointer)
        for fk in self.schema.foreign_keys_to(fact.relation):
            pointers = self.fk_target_rows[fk.name]
            source_rel = self.relations[fk.source]
            for source in self.db.referencing_facts(fact, fk):
                source_row = source_rel.row_of.get(source.fact_id)
                if source_row is not None:
                    pointers[source_row] = row
        self.version += 1
        return row

    def add_facts(self, facts: Iterable[Fact]) -> None:
        for fact in facts:
            self.add_fact(fact)

    def refresh(self) -> bool:
        """Bring the compiled arrays in sync with the backing database.

        Facts inserted since compilation are appended incrementally; if any
        compiled fact was deleted the whole database is recompiled.  Returns
        True when anything changed.
        """
        missing = [fact for fact in self.db if not self.has_fact(fact)]
        if len(self.db) - len(missing) != self.num_facts:
            self._compile()
            self.version += 1
            return True
        if missing:
            self.add_facts(missing)
            return True
        return False

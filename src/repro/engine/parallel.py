"""Opt-in worker pool for the per-fact least-squares solves.

Layer: ``engine`` (process-level parallelism helpers).

The batched extension pipeline (:meth:`ForwardDynamicExtender.extend_batch`)
assembles one independent linear system per new fact; solving them is
embarrassingly parallel.  :func:`solve_systems` fans the solves out over a
``multiprocessing`` pool when ``workers > 1`` and falls back to an in-process
loop otherwise (and whenever a pool cannot be created, e.g. in restricted
sandboxes) — the fallback is silent because the results are identical either
way.

Determinism contract
--------------------
Worker results are **byte-identical** to the serial path: every system is
fully assembled (with all RNG draws consumed) *before* the pool is involved,
each system is solved by the same :func:`~repro.utils.linalg.solve_least_squares`
on bit-identical arrays, and results are reassembled by index, so neither the
worker count nor OS scheduling can influence a single output bit.

Systems are shipped to the pool in the engine's ``.npz`` snapshot format
(:mod:`repro.engine.persistence` uses the same container): one in-memory npz
archive holding every system, broadcast once per pool via the initializer
instead of per-task pickling.
"""

from __future__ import annotations

import io
from multiprocessing import get_context
from typing import Sequence

import numpy as np

from repro.utils.linalg import solve_least_squares

__all__ = ["pack_systems", "unpack_systems", "solve_systems"]


def pack_systems(systems: Sequence[tuple[np.ndarray, np.ndarray]]) -> bytes:
    """Serialize ``(matrix, rhs)`` systems into one in-memory npz archive."""
    arrays: dict[str, np.ndarray] = {"count": np.array(len(systems), dtype=np.int64)}
    for i, (matrix, rhs) in enumerate(systems):
        arrays[f"matrix_{i}"] = np.ascontiguousarray(matrix, dtype=np.float64)
        arrays[f"rhs_{i}"] = np.ascontiguousarray(rhs, dtype=np.float64)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def unpack_systems(payload: bytes) -> list[tuple[np.ndarray, np.ndarray]]:
    """Inverse of :func:`pack_systems` (round-trips bit-identically)."""
    with np.load(io.BytesIO(payload)) as data:
        count = int(data["count"])
        return [(data[f"matrix_{i}"], data[f"rhs_{i}"]) for i in range(count)]


# Broadcast state of the current pool's workers, set by the initializer.
_WORKER_SYSTEMS: list[tuple[np.ndarray, np.ndarray]] | None = None


def _init_worker(payload: bytes) -> None:
    global _WORKER_SYSTEMS
    _WORKER_SYSTEMS = unpack_systems(payload)


def _solve_at(index: int) -> tuple[int, np.ndarray]:
    assert _WORKER_SYSTEMS is not None
    matrix, rhs = _WORKER_SYSTEMS[index]
    return index, solve_least_squares(matrix, rhs)


def solve_systems(
    systems: Sequence[tuple[np.ndarray, np.ndarray]], workers: int = 0
) -> list[np.ndarray]:
    """Solve every ``(matrix, rhs)`` system; byte-identical for any ``workers``.

    ``workers <= 1`` (the default) solves in-process.  With more workers the
    systems are packed once, broadcast to a pool, solved by index and
    reassembled in order.  Pool creation failures degrade to the serial path.
    """
    systems = list(systems)
    if workers <= 1 or len(systems) <= 1:
        return [solve_least_squares(matrix, rhs) for matrix, rhs in systems]
    payload = pack_systems(systems)
    try:
        context = get_context("fork")
        with context.Pool(
            processes=min(int(workers), len(systems)),
            initializer=_init_worker,
            initargs=(payload,),
        ) as pool:
            solved = pool.map(_solve_at, range(len(systems)))
    except (OSError, ValueError, ImportError):  # pragma: no cover - env dependent
        return [solve_least_squares(matrix, rhs) for matrix, rhs in systems]
    vectors: list[np.ndarray] = [np.empty(0)] * len(systems)
    for index, vector in solved:
        vectors[index] = vector
    return vectors

"""Batched destination-distribution propagation on compiled arrays.

The reference implementation (:mod:`repro.walks.random_walks`) computes the
destination distribution ``W(f, s)`` of Section V-A by a per-fact BFS over
boxed :class:`Fact` objects.  :class:`WalkEngine` instead compiles every walk
step into a row-stochastic sparse transition matrix and computes the
distributions of **all facts of a relation at once** as a product of sparse
matrices:

* a FORWARD step through foreign key ``fk`` is the 0/1 matrix ``T`` with
  ``T[i, j] = 1`` iff source row ``i`` references target row ``j``;
* a BACKWARD step is its transpose with each row divided by the in-degree,
  i.e. uniform choice among the referencing facts.

``destination_matrix(s)`` is then ``I · T_1 · ... · T_l`` with rows
renormalised at the end (walk prefixes that dead-end drop their mass, exactly
like the reference BFS), and ``attribute_matrix(s, A)`` additionally
aggregates destination mass over the dictionary-encoded values of ``A`` and
renormalises over non-⊥ values (the paper's posterior convention).

All products are cached per scheme under a *dirty signature* — the per-
relation and per-foreign-key mutation counters the scheme actually reads —
so consumers that share an engine — FoRWaRD training, the dynamic extender,
the experiment drivers — never recompute a distribution the engine has
already seen, and a single-fact insert/delete/update during streaming only
invalidates the schemes whose relations or foreign keys it touched.
Single-fact queries slice a cached matrix row when one is current; otherwise
they run an index-backed BFS (O(walk support), so one-by-one dynamic
insertion stays O(walk) instead of O(database)), and only a second
*distinct* fact querying the same scheme promotes to the batched matrix.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np
from scipy import sparse

from repro.db.database import Database, Fact
from repro.engine.compiled import CompiledDatabase
from repro.obs import ENGINE_CACHE_KINDS, NULL_TELEMETRY, Telemetry
from repro.walks.schemes import Direction, WalkScheme, WalkStep

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (walks -> engine)
    from repro.walks.random_walks import AttributeDistribution, DestinationDistribution


def _extend_rows(
    matrix: sparse.csr_matrix, new_block: sparse.csr_matrix, n_cols: int
) -> sparse.csr_matrix:
    """Append ``new_block`` below ``matrix``, widened to ``n_cols`` columns.

    Used by the append-extension fast path: when a cached distribution
    matrix's structural signature still matches, its rows are bit-identical
    to what a recompute would produce, so only the appended rows are
    computed and stacked on.  Widening reuses the cached index arrays
    (column meaning is append-only under an unchanged structural
    signature), so extension costs O(new rows), not O(matrix).
    """
    if matrix.shape[1] != n_cols:
        matrix = sparse.csr_matrix(
            (matrix.data, matrix.indices, matrix.indptr),
            shape=(matrix.shape[0], n_cols),
        )
    if new_block.shape[0] == 0:
        return matrix
    return sparse.vstack([matrix, new_block], format="csr")


def _normalize_rows(matrix: sparse.csr_matrix) -> sparse.csr_matrix:
    """Divide every non-empty row by its sum; empty rows stay empty."""
    matrix = matrix.tocsr()
    if matrix.data.size and not np.all(matrix.data > 0):
        # stored zeros (possible only through extreme underflow) would put
        # zero-probability entries into the support; prune them first
        matrix.eliminate_zeros()
    row_counts = np.diff(matrix.indptr)
    sums = np.zeros(row_counts.size, dtype=np.float64)
    non_empty = row_counts > 0
    if matrix.data.size:
        # reduceat over non-empty rows only: their start offsets are strictly
        # increasing, so each segment ends exactly at the next row's start
        sums[non_empty] = np.add.reduceat(matrix.data, matrix.indptr[:-1][non_empty])
    scale = np.divide(1.0, sums, out=np.zeros_like(sums), where=sums > 0)
    matrix.data = matrix.data * np.repeat(scale, row_counts)
    return matrix


class WalkEngine:
    """Vectorised walk-distribution computation over a compiled database."""

    def __init__(
        self,
        db: Database,
        compiled: CompiledDatabase | None = None,
        *,
        telemetry: Telemetry | None = None,
    ):
        self.db = db
        self.compiled = (
            compiled
            if compiled is not None
            else CompiledDatabase(db, telemetry=telemetry)
        )
        if self.compiled.db is not db:
            raise ValueError("compiled database is backed by a different Database")
        # adopt the compiled database's bundle when none was given, so an
        # engine wrapped around a pre-instrumented compilation keeps counting
        self.set_telemetry(
            telemetry if telemetry is not None else self.compiled.telemetry
        )
        # cache value -> (dirty signature at build time, payload); signatures
        # are per-foreign-key / per-relation, not the global version, so a
        # mutation only invalidates the matrices it could have affected.
        # Mass/dest/attr entries additionally carry a *structural* signature
        # and the start-relation row count at build time: when the full
        # signature is stale but the structural one still matches, the start
        # relation only gained appended rows, so the cached matrix is
        # extended in place (new rows computed, old bits untouched) instead
        # of recomputed — see the ``_extendable``/``_extend_rows`` helpers.
        self._step_cache: dict[tuple[str, Direction], tuple[int, sparse.csr_matrix]] = {}
        self._mass_cache: dict[
            WalkScheme, tuple[tuple, tuple, int, sparse.csr_matrix]
        ] = {}
        self._dest_cache: dict[
            WalkScheme, tuple[tuple, tuple, int, sparse.csr_matrix]
        ] = {}
        self._attr_cache: dict[
            tuple[WalkScheme, str],
            tuple[tuple, tuple, int, sparse.csr_matrix, np.ndarray],
        ] = {}
        self._column_cache: dict[
            tuple[str, str], tuple[int, sparse.csr_matrix, np.ndarray, np.ndarray]
        ] = {}
        # single-row BFS results for the current version, and the first fact
        # to query each scheme — a *different* fact querying the same scheme
        # promotes to the full batched matrix (valid per version only)
        self._row_cache: dict[tuple[int, WalkScheme], tuple[np.ndarray, np.ndarray]] = {}
        self._row_queries: dict[WalkScheme, int] = {}
        self._row_cache_version = self.compiled.version

    def set_telemetry(self, telemetry: Telemetry | None) -> None:
        """Attach (or detach, with None) a telemetry bundle.

        Binds one hit and one miss counter per cache kind
        (``engine.cache.<kind>.{hits,misses}``) plus the refresh-latency
        histogram, and propagates the bundle to the compiled database.  The
        disabled default binds shared no-op instruments, so each cache probe
        pays one dict lookup and a no-op call.
        """
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        metrics = self.telemetry.metrics
        self._cache_hits = {
            kind: metrics.counter(f"engine.cache.{kind}.hits")
            for kind in ENGINE_CACHE_KINDS
        }
        self._cache_misses = {
            kind: metrics.counter(f"engine.cache.{kind}.misses")
            for kind in ENGINE_CACHE_KINDS
        }
        self._cache_extends = {
            kind: metrics.counter(f"engine.cache.{kind}.extends")
            for kind in ("mass", "dest", "attr")
        }
        self._h_refresh = metrics.histogram("engine.refresh.seconds")
        self.compiled.set_telemetry(self.telemetry)

    # ---------------------------------------------------------- persistence

    def save(self, path) -> None:
        """Snapshot the compiled arrays to a single ``.npz`` file.

        A restarted process warm-starts with :meth:`load` instead of paying
        recompilation; distributions computed from the restored arrays are
        bit-identical to this engine's.
        """
        from repro.engine.persistence import save_compiled

        save_compiled(self.compiled, path)

    @classmethod
    def load(cls, db: Database, path, verify: bool = True) -> "WalkEngine":
        """An engine restored from a snapshot written by :meth:`save`."""
        from repro.engine.persistence import load_compiled

        return cls(db, load_compiled(db, path, verify=verify))

    # ----------------------------------------------------------------- sync

    @property
    def version(self) -> int:
        return self.compiled.version

    def refresh(self) -> bool:
        """Sync with the backing database by replaying its changelog."""
        if not self.telemetry.enabled:
            return self.compiled.refresh()
        started = time.perf_counter()
        changed = self.compiled.refresh()
        self._h_refresh.observe(time.perf_counter() - started)
        return changed

    def add_facts(self, facts: Iterable[Fact]) -> None:
        """Append facts inserted into the database since compilation."""
        self.compiled.add_facts(facts)

    def remove_facts(self, facts: Iterable[Fact | int]) -> None:
        """Tombstone facts deleted from the database (lazy compaction)."""
        self.compiled.remove_facts(facts)

    def update_facts(self, facts: Iterable[Fact]) -> None:
        """Re-encode updated facts in place (post-update values)."""
        self.compiled.update_facts(facts)

    # ----------------------------------------------------------- transitions

    def step_matrix(self, step: WalkStep) -> sparse.csr_matrix:
        """The row-stochastic transition matrix of one walk step.

        Cached per foreign-key dirty counter, not per global version: a
        mutation that touches neither endpoint relation of ``fk`` leaves the
        cached matrix valid, so single-fact churn during streaming only
        rebuilds the matrices of the foreign keys it actually affected.
        Tombstoned rows are masked by construction — their pointers (in both
        directions) are repaired to ``-1`` at removal time.
        """
        fk = step.foreign_key
        key = (fk.name, step.direction)
        fk_dirty = self.compiled.fk_versions[fk.name]
        hit = self._step_cache.get(key)
        if hit is not None and hit[0] == fk_dirty:
            self._cache_hits["step"].inc()
            return hit[1]
        self._cache_misses["step"].inc()
        pointers = self.compiled.fk_pointer_array(fk.name)
        n_source = self.compiled.relations[fk.source].num_rows
        n_target = self.compiled.relations[fk.target].num_rows
        has_link = pointers >= 0
        linked = np.nonzero(has_link)[0]
        targets = pointers[linked]
        # Both directions are built directly in canonical CSR form (rows
        # sorted, no duplicates), skipping scipy's COO round-trip.
        if step.direction is Direction.FORWARD:
            indptr = np.concatenate(([0], np.cumsum(has_link)))
            matrix = sparse.csr_matrix(
                (np.ones(linked.size), targets, indptr), shape=(n_source, n_target)
            )
        else:
            counts = np.bincount(targets, minlength=n_target)
            order = np.argsort(targets, kind="stable")
            indptr = np.concatenate(([0], np.cumsum(counts)))
            data = 1.0 / counts[targets[order]]
            matrix = sparse.csr_matrix(
                (data, linked[order], indptr), shape=(n_target, n_source)
            )
        self._step_cache[key] = (fk_dirty, matrix)
        return matrix

    # -------------------------------------------------------- distributions

    def _scheme_signature(self, scheme: WalkScheme) -> tuple:
        """The dirty counters a scheme's distributions depend on.

        A scheme reads the start relation's row space and every step's
        transition matrix; each intermediate/end relation is an endpoint of
        an adjacent step's foreign key, whose counter is bumped whenever the
        relation is touched.  Mutations elsewhere leave the signature — and
        therefore every cached matrix keyed on it — intact, so single-fact
        churn during streaming only rebuilds the schemes it actually
        affected.
        """
        compiled = self.compiled
        return (
            compiled.rel_versions[scheme.start_relation],
            *(compiled.fk_versions[step.foreign_key.name] for step in scheme.steps),
        )

    def _scheme_struct_signature(self, scheme: WalkScheme) -> tuple:
        """The *structural* counters a scheme's distributions depend on.

        Pure appends leave these untouched (see
        :class:`~repro.engine.compiled.CompiledDatabase`), so a cached
        matrix whose structural signature still matches differs from a fresh
        recompute only by rows appended at the bottom — the extension fast
        path.  A forward step reads ``fk_fwd_struct`` (its rows change only
        when an existing pointer changes); a backward step reads
        ``fk_bwd_struct`` (additionally bumped by any resolved append, which
        renormalises the referenced row's in-degree).
        """
        compiled = self.compiled
        parts = [compiled.rel_struct_versions[scheme.start_relation]]
        for step in scheme.steps:
            name = step.foreign_key.name
            parts.append(
                compiled.fk_fwd_struct[name]
                if step.direction is Direction.FORWARD
                else compiled.fk_bwd_struct[name]
            )
        return tuple(parts)

    def attribute_struct_signature(self, scheme: WalkScheme) -> tuple:
        """Signature under which *existing* attribute rows are immutable.

        While this value is unchanged, every row a consumer has already read
        from :meth:`attribute_matrix` keeps its exact bits (new facts only
        append rows and vocabulary entries).  Callers caching per-row derived
        state — e.g. the dynamic extender's old-fact distributions — can key
        on it instead of :attr:`version` to survive pure insertions.
        """
        return (
            self._scheme_struct_signature(scheme),
            self.compiled.rel_struct_versions[scheme.end_relation],
        )

    @staticmethod
    def _extendable(hit: tuple | None, struct: tuple, n_start: int) -> bool:
        """Whether a stale cache entry can be extended instead of rebuilt."""
        return hit is not None and hit[1] == struct and n_start >= hit[2]

    def destination_matrix(self, scheme: WalkScheme) -> sparse.csr_matrix:
        """Row ``i`` is the destination distribution of start-relation row ``i``.

        Shape is ``(n_start, n_end)`` in compiled row numbering; rows of
        facts with no complete walk are empty (tombstoned rows always are).
        """
        signature = self._scheme_signature(scheme)
        hit = self._dest_cache.get(scheme)
        if hit is not None and hit[0] == signature:
            self._cache_hits["dest"].inc()
            return hit[3]
        struct = self._scheme_struct_signature(scheme)
        n_start = self.compiled.relations[scheme.start_relation].num_rows
        mass = self._mass_matrix(scheme)
        if self._extendable(hit, struct, n_start):
            self._cache_extends["dest"].inc()
            new_block = _normalize_rows(mass[hit[2] :])
            matrix = _extend_rows(hit[3], new_block, mass.shape[1])
        else:
            self._cache_misses["dest"].inc()
            matrix = _normalize_rows(mass.copy())
        self._dest_cache[scheme] = (signature, struct, n_start, matrix)
        return matrix

    def _mass_matrix(self, scheme: WalkScheme) -> sparse.csr_matrix:
        """Unnormalised walk mass, with prefix products shared across schemes.

        Scheme enumeration (Figure 4) grows schemes step by step, so sibling
        schemes share all but their last step; caching the unnormalised mass
        per scheme makes every scheme cost a single sparse product on top of
        its prefix.  When only appends happened since the cached product was
        built (structural signature unchanged), the new rows are computed as
        ``S_1[new] · S_2 · … · S_l`` — O(batch), not O(relation) — and
        stacked below the cached block, which stays bit-identical.  The
        returned matrix is cached — callers must copy before mutating.
        """
        signature = self._scheme_signature(scheme)
        hit = self._mass_cache.get(scheme)
        if hit is not None and hit[0] == signature:
            self._cache_hits["mass"].inc()
            return hit[3]
        struct = self._scheme_struct_signature(scheme)
        start_rel = self.compiled.relations[scheme.start_relation]
        n_start = start_rel.num_rows
        n_end = self.compiled.relations[scheme.end_relation].num_rows
        if self._extendable(hit, struct, n_start):
            self._cache_extends["mass"].inc()
            block = self._mass_rows_block(scheme, hit[2], n_start, n_end)
            mass = _extend_rows(hit[3], block, n_end)
        else:
            self._cache_misses["mass"].inc()
            if not scheme.steps:
                if start_rel.num_dead:
                    # tombstoned rows must carry no mass, even onto themselves
                    mass = sparse.diags(
                        start_rel.alive_array().astype(np.float64), format="csr"
                    )
                else:
                    mass = sparse.identity(start_rel.num_rows, format="csr")
            elif len(scheme.steps) == 1:
                mass = self.step_matrix(scheme.steps[0])
            else:
                prefix = WalkScheme(scheme.start_relation, scheme.steps[:-1])
                mass = self._mass_matrix(prefix) @ self.step_matrix(scheme.steps[-1])
        self._mass_cache[scheme] = (signature, struct, n_start, mass)
        return mass

    def _mass_rows_block(
        self, scheme: WalkScheme, lo: int, hi: int, n_end: int
    ) -> sparse.csr_matrix:
        """Walk mass of start rows ``lo..hi`` only (the appended tail).

        Row ``i`` of a CSR product depends only on row ``i`` of the left
        factor, so propagating just the appended rows through the current
        step matrices yields bits identical to the corresponding rows of a
        full recompute.
        """
        if hi <= lo:
            return sparse.csr_matrix((0, n_end))
        rows = np.arange(lo, hi)
        if not scheme.steps:
            # appended rows are alive (a tombstone would have bumped the
            # structural signature): unit point masses on themselves
            return sparse.csr_matrix(
                (np.ones(rows.size), rows, np.arange(rows.size + 1)),
                shape=(rows.size, n_end),
            )
        block: sparse.csr_matrix | None = None
        for step in scheme.steps:
            matrix = self.step_matrix(step)
            block = matrix[rows] if block is None else block @ matrix
        return block

    def destination_row(self, fact: Fact, scheme: WalkScheme) -> tuple[np.ndarray, np.ndarray]:
        """``(end-relation rows, probabilities)`` of ``d_{f,s}``; empty if none.

        A single fact never pays for whole-relation matrices up front: as
        long as only one fact queries a scheme at the current compiled
        version, its distribution comes from an index-backed BFS — O(walk
        support), exactly like the reference, and cached per (fact, scheme) —
        so a one-by-one insertion stream stays cheap even though every
        arrival bumps the version.  As soon as a *second* fact queries the
        same scheme, the full batched matrix is built once and amortised.
        """
        if fact.relation != scheme.start_relation:
            raise ValueError(
                f"fact is from relation {fact.relation!r} but scheme starts at "
                f"{scheme.start_relation!r}"
            )
        if fact.fact_id not in self.compiled.relations[scheme.start_relation].row_of:
            # the fact was inserted without add_facts/refresh; catch up
            self.refresh()
        hit = self._dest_cache.get(scheme)
        if hit is None or hit[0] != self._scheme_signature(scheme):
            if self._row_cache_version != self.version:
                self._row_cache.clear()
                self._row_queries.clear()
                self._row_cache_version = self.version
            row_key = (fact.fact_id, scheme)
            cached_row = self._row_cache.get(row_key)
            if cached_row is not None:
                self._cache_hits["row"].inc()
                return cached_row
            first_querier = self._row_queries.setdefault(scheme, fact.fact_id)
            if first_querier == fact.fact_id:
                self._cache_misses["row"].inc()
                result = self._bfs_row(fact, scheme)
                if self._row_cache_version == self.version:  # unchanged by a refresh
                    self._row_cache[row_key] = result
                return result
            # a second distinct fact wants this scheme: batch it
        matrix = self.destination_matrix(scheme)
        row = self.compiled.relations[scheme.start_relation].row_of[fact.fact_id]
        lo, hi = matrix.indptr[row], matrix.indptr[row + 1]
        return matrix.indices[lo:hi].astype(np.int64), matrix.data[lo:hi].copy()

    def _row_no_promote(
        self, fact: Fact, scheme: WalkScheme
    ) -> tuple[np.ndarray, np.ndarray]:
        """``destination_row`` that never builds whole-relation matrices.

        Serves from a fresh batched matrix when one already exists, otherwise
        from the per-(fact, scheme) row cache or a fresh index-backed BFS —
        without counting as a scheme querier.  The fused single-fact pipeline
        (:meth:`attribute_rows`) uses this: a streaming arrival queries every
        walk target exactly once, so promoting to (and then re-extending) a
        whole-relation matrix per batch would cost far more than the
        O(walk support) propagation it replaces.
        """
        if fact.fact_id not in self.compiled.relations[scheme.start_relation].row_of:
            # the fact was inserted without add_facts/refresh; catch up
            self.refresh()
        hit = self._dest_cache.get(scheme)
        if hit is not None and hit[0] == self._scheme_signature(scheme):
            self._cache_hits["dest"].inc()
            matrix = hit[3]
            row = self.compiled.relations[scheme.start_relation].row_of[fact.fact_id]
            lo, hi = matrix.indptr[row], matrix.indptr[row + 1]
            return matrix.indices[lo:hi].astype(np.int64), matrix.data[lo:hi].copy()
        if self._row_cache_version != self.version:
            self._row_cache.clear()
            self._row_queries.clear()
            self._row_cache_version = self.version
        row_key = (fact.fact_id, scheme)
        cached_row = self._row_cache.get(row_key)
        if cached_row is not None:
            self._cache_hits["row"].inc()
            return cached_row
        self._cache_misses["row"].inc()
        result = self._bfs_row(fact, scheme)
        if self._row_cache_version == self.version:  # unchanged by a refresh
            self._row_cache[row_key] = result
        return result

    def attribute_rows(
        self, fact: Fact, queries: Sequence[tuple[WalkScheme, str]]
    ) -> list[tuple[np.ndarray, np.ndarray] | None]:
        """``(values, probabilities)`` per (scheme, attribute) query for one fact.

        The fused single-fact pipeline: one destination propagation per
        *distinct* scheme — via :meth:`_row_no_promote`, so a batch of
        arrivals never triggers whole-relation matrix builds — and one shared
        column decode per (end relation, attribute).  Entries are None where
        the distribution does not exist, exactly like :meth:`attribute_row`.
        """
        results: list[tuple[np.ndarray, np.ndarray] | None] = []
        destinations: dict[WalkScheme, tuple[np.ndarray, np.ndarray]] = {}
        for scheme, attribute in queries:
            if fact.relation != scheme.start_relation:
                raise ValueError(
                    f"fact is from relation {fact.relation!r} but scheme starts "
                    f"at {scheme.start_relation!r}"
                )
            pair = destinations.get(scheme)
            if pair is None:
                pair = self._row_no_promote(fact, scheme)
                destinations[scheme] = pair
            rows, probabilities = pair
            if rows.size == 0:
                results.append(None)
                continue
            _indicator, vocab, codes = self._column(scheme.end_relation, attribute)
            row_codes = codes[rows]
            non_null = row_codes >= 0
            if not np.any(non_null):
                results.append(None)
                continue
            # aggregate over the walk support, not the whole vocabulary: the
            # support is a handful of codes while vocabularies can be huge
            used, inverse = np.unique(row_codes[non_null], return_inverse=True)
            mass = np.bincount(inverse, weights=probabilities[non_null])
            keep = mass > 0
            probs = mass[keep]
            results.append((vocab[used[keep]], probs / probs.sum()))
        return results

    def _bfs_row(self, fact: Fact, scheme: WalkScheme) -> tuple[np.ndarray, np.ndarray]:
        """Single-source propagation through the database's own FK indexes."""
        from repro.walks.random_walks import destination_distribution

        distribution = destination_distribution(self.db, fact, scheme)
        if distribution.is_empty:
            return np.zeros(0, dtype=np.int64), np.zeros(0)
        end_rel = self.compiled.relations[scheme.end_relation]
        try:
            rows = np.array(
                [end_rel.row_of[f.fact_id] for f in distribution.facts], dtype=np.int64
            )
        except KeyError:
            # destinations include facts the compiled arrays have not seen yet
            self.refresh()
            end_rel = self.compiled.relations[scheme.end_relation]
            rows = np.array(
                [end_rel.row_of[f.fact_id] for f in distribution.facts], dtype=np.int64
            )
        return rows, np.asarray(distribution.probabilities, dtype=np.float64)

    def _column(
        self, relation: str, attribute: str
    ) -> tuple[sparse.csr_matrix, np.ndarray, np.ndarray]:
        """(one-hot indicator over non-⊥ codes, vocabulary, codes) of a column."""
        key = (relation, attribute)
        rel_dirty = self.compiled.rel_versions[relation]
        hit = self._column_cache.get(key)
        if hit is not None and hit[0] == rel_dirty:
            self._cache_hits["column"].inc()
            return hit[1], hit[2], hit[3]
        self._cache_misses["column"].inc()
        compiled_rel = self.compiled.relations[relation]
        column = compiled_rel.columns[attribute]
        codes = column.codes_array()
        if compiled_rel.num_dead:
            # tombstoned rows read as ⊥ so they never contribute a value
            codes = np.where(compiled_rel.alive_array(), codes, -1)
        non_null = np.nonzero(codes >= 0)[0]
        indicator = sparse.csr_matrix(
            (np.ones(non_null.size), (non_null, codes[non_null])),
            shape=(codes.size, len(column.vocab)),
        )
        vocab = column.vocab_array()
        self._column_cache[key] = (rel_dirty, indicator, vocab, codes)
        return indicator, vocab, codes

    def attribute_matrix(
        self, scheme: WalkScheme, attribute: str
    ) -> tuple[sparse.csr_matrix, np.ndarray]:
        """``(matrix, vocabulary)``: row ``i`` is the distribution of
        ``d_{f_i,s}[A]`` over value codes, already conditioned on non-⊥.

        Empty rows mean the attribute distribution does not exist for that
        fact (no complete walk, or every destination has ⊥ in ``A``).
        """
        key = (scheme, attribute)
        signature = (
            self._scheme_signature(scheme),
            self.compiled.rel_versions[scheme.end_relation],
        )
        hit = self._attr_cache.get(key)
        if hit is not None and hit[0] == signature:
            self._cache_hits["attr"].inc()
            return hit[3], hit[4]
        struct = self.attribute_struct_signature(scheme)
        n_start = self.compiled.relations[scheme.start_relation].num_rows
        destinations = self.destination_matrix(scheme)
        indicator, vocab, _codes = self._column(scheme.end_relation, attribute)
        if self._extendable(hit, struct, n_start):
            # only appends since the cached block: old rows' value mass is
            # untouched (codes are append-only and old destinations cannot
            # reach appended rows), so aggregate just the appended tail
            self._cache_extends["attr"].inc()
            new_block = _normalize_rows(destinations[hit[2] :] @ indicator)
            matrix = _extend_rows(hit[3], new_block, len(vocab))
        else:
            self._cache_misses["attr"].inc()
            matrix = _normalize_rows(destinations @ indicator)
        self._attr_cache[key] = (signature, struct, n_start, matrix, vocab)
        return matrix, vocab

    def attribute_row(
        self, fact: Fact, scheme: WalkScheme, attribute: str
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """``(values, probabilities)`` of ``d_{f,s}[A]``, or None if absent."""
        if fact.relation != scheme.start_relation:
            raise ValueError(
                f"fact is from relation {fact.relation!r} but scheme starts at "
                f"{scheme.start_relation!r}"
            )
        hit = self._attr_cache.get((scheme, attribute))
        signature = (
            self._scheme_signature(scheme),
            self.compiled.rel_versions[scheme.end_relation],
        )
        if hit is not None and hit[0] == signature:
            matrix, vocab = hit[3], hit[4]
            row = self.compiled.relations[scheme.start_relation].row_of.get(fact.fact_id)
            if row is not None:
                lo, hi = matrix.indptr[row], matrix.indptr[row + 1]
                if lo == hi:
                    return None
                return vocab[matrix.indices[lo:hi]], matrix.data[lo:hi].copy()
            # unknown fact: fall through to the row path, which self-syncs
        rows, probabilities = self.destination_row(fact, scheme)
        if rows.size == 0:
            return None
        _indicator, vocab, codes = self._column(scheme.end_relation, attribute)
        row_codes = codes[rows]
        non_null = row_codes >= 0
        if not np.any(non_null):
            return None
        mass = np.bincount(
            row_codes[non_null], weights=probabilities[non_null], minlength=len(vocab)
        )
        used = np.nonzero(mass > 0)[0]
        probs = mass[used]
        return vocab[used], probs / probs.sum()

    # ------------------------------------------- reference-compatible views

    def destination_distribution(self, fact: Fact, scheme: WalkScheme) -> "DestinationDistribution":
        """The exact ``W(f, s)`` as a reference-compatible dataclass."""
        from repro.walks.random_walks import DestinationDistribution

        rows, probabilities = self.destination_row(fact, scheme)
        if rows.size == 0:
            return DestinationDistribution(scheme, (), np.zeros(0))
        end_ids = self.compiled.relations[scheme.end_relation].fact_ids
        facts = tuple(self.db.fact(end_ids[row]) for row in rows)
        return DestinationDistribution(scheme, facts, probabilities)

    def attribute_distribution(
        self, fact: Fact, scheme: WalkScheme, attribute: str
    ) -> "AttributeDistribution | None":
        """The distribution of ``d_{f,s}[A]``, or None when it does not exist."""
        from repro.walks.random_walks import AttributeDistribution

        result = self.attribute_row(fact, scheme, attribute)
        if result is None:
            return None
        values, probabilities = result
        return AttributeDistribution(scheme, attribute, tuple(values), probabilities)

"""Snapshot persistence of the compiled walk engine.

Compiling a database into flat arrays is a one-time cost per process, but a
long-lived embedding service that restarts should not pay it again before
serving its first query.  :func:`save_compiled` writes everything
:class:`~repro.engine.compiled.CompiledDatabase` derived from the database —
per-relation fact numberings, dictionary-encoded value columns, and
foreign-key pointer arrays — into a single ``.npz`` file;
:func:`load_compiled` restores it against a live :class:`Database` without
recompiling, so all downstream matrices (and therefore all distributions)
are bit-identical to the pre-restart engine's.

The snapshot stores *compiled state*, not the data itself: loading validates
the snapshot against the backing database and refuses to restore against a
database it does not describe.  Facts inserted after the snapshot was taken
are appended incrementally on load via the normal ``refresh`` path.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.db.database import Database
from repro.engine.compiled import CompiledDatabase, CompiledRelation, ValueColumn

FORMAT_VERSION = 1


def save_compiled(compiled: CompiledDatabase, path: str | Path) -> Path:
    """Write a compiled database's arrays to a single ``.npz`` file.

    Tombstoned rows are compacted away first (the snapshot format stores
    dense, all-alive arrays), which leaves the in-memory compiled state
    compacted too — distributions are unchanged, row numbers may not be.
    """
    compiled.compact()
    path = Path(path)
    relation_names = list(compiled.relations.keys())
    columns = [
        (rel_name, attr_name)
        for rel_name in relation_names
        for attr_name in compiled.relations[rel_name].columns
    ]
    fk_names = list(compiled.fk_target_rows.keys())
    manifest = {
        "format": FORMAT_VERSION,
        "relations": relation_names,
        "columns": [list(pair) for pair in columns],
        "foreign_keys": fk_names,
    }
    arrays: dict[str, np.ndarray] = {"manifest": np.array(json.dumps(manifest))}
    for i, rel_name in enumerate(relation_names):
        arrays[f"rel{i}_fact_ids"] = compiled.relations[rel_name].fact_ids_array()
    for j, (rel_name, attr_name) in enumerate(columns):
        column = compiled.relations[rel_name].columns[attr_name]
        arrays[f"col{j}_codes"] = column.codes_array()
        arrays[f"col{j}_vocab"] = column.vocab_array()
    for k, fk_name in enumerate(fk_names):
        arrays[f"fk{k}_pointers"] = np.asarray(compiled.fk_target_rows[fk_name], dtype=np.int64)
    np.savez_compressed(path, **arrays)
    return path


def load_compiled(db: Database, path: str | Path, verify: bool = True) -> CompiledDatabase:
    """Restore a compiled database from a snapshot, bound to ``db``.

    The snapshot must describe (a prefix of) ``db``: relation, column and
    foreign-key layouts must match the schema, every stored fact must still
    exist in ``db``, and — when ``verify`` is true (the default) — the stored
    value codes must decode to the facts' current values.  Facts inserted
    into ``db`` after the snapshot was taken are appended incrementally, so a
    warm-started engine is immediately in sync.
    """
    data = np.load(Path(path), allow_pickle=True)
    manifest = json.loads(str(data["manifest"]))
    if manifest.get("format") != FORMAT_VERSION:
        raise ValueError(f"unsupported engine snapshot format {manifest.get('format')!r}")

    schema_relations = list(db.schema.relation_names)
    if manifest["relations"] != schema_relations:
        raise ValueError(
            "engine snapshot does not match the database schema: relations "
            f"{manifest['relations']} vs {schema_relations}"
        )
    expected_fks = [fk.name for fk in db.schema.foreign_keys]
    if manifest["foreign_keys"] != expected_fks:
        raise ValueError(
            "engine snapshot does not match the database schema: foreign keys "
            f"{manifest['foreign_keys']} vs {expected_fks}"
        )
    stored_columns: dict[str, list[str]] = {name: [] for name in schema_relations}
    for rel_name, attr_name in manifest["columns"]:
        stored_columns[rel_name].append(attr_name)
    for rel_name in schema_relations:
        expected_attrs = list(db.schema.relation(rel_name).attribute_names)
        if sorted(stored_columns[rel_name]) != sorted(expected_attrs):
            raise ValueError(
                f"engine snapshot does not match the database schema: relation "
                f"{rel_name!r} has columns {sorted(stored_columns[rel_name])} in the "
                f"snapshot vs attributes {sorted(expected_attrs)} in the schema"
            )

    compiled = CompiledDatabase.__new__(CompiledDatabase)
    compiled.db = db
    compiled.schema = db.schema
    compiled.version = 0
    compiled.rel_versions = {name: 0 for name in db.schema.relation_names}
    compiled.fk_versions = {fk.name: 0 for fk in db.schema.foreign_keys}
    compiled.rel_struct_versions = {name: 0 for name in db.schema.relation_names}
    compiled.fk_fwd_struct = {fk.name: 0 for fk in db.schema.foreign_keys}
    compiled.fk_bwd_struct = {fk.name: 0 for fk in db.schema.foreign_keys}
    compiled._fk_array_cache = {}
    # the snapshot does not record the database's mutation counter, so the
    # restored state has no known sync point; the first refresh scans
    compiled._synced_db_version = None
    compiled.set_telemetry(None)

    compiled.relations = {}
    for i, rel_name in enumerate(manifest["relations"]):
        relation = CompiledRelation(db.schema.relation(rel_name))
        fact_ids = data[f"rel{i}_fact_ids"]
        relation.fact_ids = [int(fid) for fid in fact_ids]
        relation.row_of = {fid: row for row, fid in enumerate(relation.fact_ids)}
        relation.alive = [True] * len(relation.fact_ids)
        relation.num_dead = 0
        compiled.relations[rel_name] = relation

    for j, (rel_name, attr_name) in enumerate(manifest["columns"]):
        relation = compiled.relations[rel_name]
        column = ValueColumn()
        column.codes = [int(c) for c in data[f"col{j}_codes"]]
        column.vocab = list(data[f"col{j}_vocab"])
        column.code_of = {value: code for code, value in enumerate(column.vocab)}
        if len(column.codes) != relation.num_rows:
            raise ValueError(
                f"engine snapshot column {rel_name}.{attr_name} has "
                f"{len(column.codes)} codes for {relation.num_rows} rows"
            )
        relation.columns[attr_name] = column

    compiled.fk_target_rows = {
        fk_name: [int(p) for p in data[f"fk{k}_pointers"]]
        for k, fk_name in enumerate(manifest["foreign_keys"])
    }
    for fk in db.schema.foreign_keys:
        pointers = compiled.fk_target_rows[fk.name]
        if len(pointers) != compiled.relations[fk.source].num_rows:
            raise ValueError(
                f"engine snapshot foreign key {fk.name} has {len(pointers)} pointers "
                f"for {compiled.relations[fk.source].num_rows} source rows"
            )

    _validate_against_db(compiled, db, verify_values=verify)
    compiled.refresh()  # append facts inserted after the snapshot was taken
    return compiled


def _validate_against_db(
    compiled: CompiledDatabase, db: Database, verify_values: bool
) -> None:
    for rel_name, relation in compiled.relations.items():
        for fact_id in relation.fact_ids:
            if fact_id not in db._facts_by_id:  # noqa: SLF001 - intra-package check
                raise ValueError(
                    f"engine snapshot fact {fact_id} of relation {rel_name!r} "
                    "is not in the database; the snapshot describes different data"
                )
        if not verify_values:
            continue
        attribute_names = relation.schema.attribute_names
        for row, fact_id in enumerate(relation.fact_ids):
            fact = db.fact(fact_id)
            if fact.relation != rel_name:
                raise ValueError(
                    f"fact {fact_id} is in relation {fact.relation!r}, "
                    f"snapshot says {rel_name!r}"
                )
            for name, value in zip(attribute_names, fact.values):
                column = relation.columns[name]
                code = column.codes[row]
                stored = None if code < 0 else column.vocab[code]
                if stored != value:
                    raise ValueError(
                        f"engine snapshot value mismatch at {rel_name}.{name} "
                        f"for fact {fact_id}: snapshot {stored!r} vs database {value!r}"
                    )

"""Vectorised sampling from row-stochastic sparse matrices.

FoRWaRD's stochastic objective (Equation (5)) draws, per walk target, many
tuples ``(f, f', g[A], g'[A])``.  The reference implementation samples one
categorical value at a time with ``rng.choice``; here entire batches are
drawn with one cumulative-sum + ``searchsorted`` pass over the CSR data of
an attribute-distribution matrix.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse


def sample_codes(
    matrix: sparse.csr_matrix, rows: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Sample one column index per requested row of a row-stochastic matrix.

    ``rows`` may contain repeats; every listed row must be non-empty.  The
    draw inverts each row's CDF: a global cumulative sum over ``matrix.data``
    turns per-row inversion into a single vectorised ``searchsorted``.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        return np.zeros(0, dtype=np.int64)
    starts = matrix.indptr[rows]
    ends = matrix.indptr[rows + 1]
    if np.any(starts == ends):
        raise ValueError("cannot sample from an empty distribution row")
    cumulative = np.cumsum(matrix.data)
    base = np.where(starts > 0, cumulative[starts - 1], 0.0)
    totals = cumulative[ends - 1] - base
    targets = base + rng.random(rows.size) * totals
    positions = np.searchsorted(cumulative, targets, side="right")
    positions = np.clip(positions, starts, ends - 1)
    return matrix.indices[positions].astype(np.int64)


def sample_distinct_pairs(
    population: np.ndarray, count: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """``count`` pairs drawn uniformly from ``population`` with left ≠ right.

    Matches the reference rejection loop: both sides are uniform over the
    population and clashes are redrawn on the right side only.
    """
    population = np.asarray(population)
    if population.size < 2:
        raise ValueError("need at least two distinct population entries")
    left = rng.choice(population, size=count)
    right = rng.choice(population, size=count)
    clash = left == right
    while np.any(clash):
        right[clash] = rng.choice(population, size=int(clash.sum()))
        clash = left == right
    return left, right

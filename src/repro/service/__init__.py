"""Online embedding serving layer.

The experiment drivers exercise the paper's central claim — embeddings stay
consistent under database updates without retraining — as offline batch
jobs.  This package turns that machinery into a long-lived *service*:

* :mod:`repro.service.store` — :class:`EmbeddingStore`, a versioned,
  snapshotable store of tuple embeddings with batched queries (fetch by
  fact, k-nearest-neighbour, per-relation slices);
* :mod:`repro.service.feed` — :class:`ChangeFeed` (a.k.a. ``UpdateLog``),
  an ordered stream of insert batches with idempotent batch ids, plus the
  :func:`partition_feed` adapter that replays a dataset's dynamic split;
* :mod:`repro.service.service` — :class:`EmbeddingService`, the
  orchestrator that owns one shared :class:`~repro.engine.WalkEngine`,
  applies feed batches through the dynamic extender and commits one store
  version per batch;
* :mod:`repro.service.replay` — the streaming scenario driver and CLI
  (``python -m repro.service.replay``).
"""

from repro.service.feed import ChangeFeed, InsertBatch, UpdateLog, partition_feed
from repro.service.service import ApplyOutcome, EmbeddingService, ServiceStats
from repro.service.store import EmbeddingStore, StoreSnapshot

__all__ = [
    "ApplyOutcome",
    "ChangeFeed",
    "EmbeddingService",
    "EmbeddingStore",
    "InsertBatch",
    "ServiceStats",
    "StoreSnapshot",
    "UpdateLog",
    "partition_feed",
]

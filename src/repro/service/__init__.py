"""Online embedding serving layer.

The experiment drivers exercise the paper's central claim — embeddings stay
consistent under database updates without retraining — as offline batch
jobs.  This package turns that machinery into a long-lived *service*:

* :mod:`repro.service.store` — :class:`EmbeddingStore`, a versioned,
  snapshotable store of tuple embeddings with batched queries (fetch by
  fact, k-nearest-neighbour, per-relation slices);
* :mod:`repro.service.feed` — :class:`ChangeFeed` (a.k.a. ``UpdateLog``),
  an ordered stream of typed change batches (insert / delete / update ops)
  with idempotent batch ids, plus the :func:`partition_feed` adapter that
  replays a dataset's dynamic split and :func:`churn_feed`, which turns the
  same split into a full-CRUD churn workload;
* :mod:`repro.service.service` — :class:`EmbeddingService`, the
  orchestrator that drives any :class:`~repro.api.protocol.Embedder`
  supporting ``partial_fit`` (a :class:`~repro.core.forward.ForwardModel`
  is wrapped on the spot), applies feed batches and commits one store
  version per batch;
* :mod:`repro.service.replay` — the streaming scenario driver behind
  ``python -m repro replay`` (the historical ``python -m
  repro.service.replay`` entry point forwards there as a deprecation
  shim);
* :mod:`repro.service.ladder` — the throughput-ladder perf-regression
  harness: the same replay at increasing dataset scales, with asserted
  throughput floors and exactness bars per rung.
"""

from repro.service.feed import (
    ChangeBatch,
    ChangeFeed,
    ChangeOp,
    InsertBatch,
    UpdateLog,
    churn_feed,
    partition_feed,
)
from repro.service.ladder import (
    check_ladder,
    is_ladder_payload,
    render_ladder,
    run_throughput_ladder,
)
from repro.service.service import ApplyOutcome, EmbeddingService, ServiceStats
from repro.service.store import EmbeddingStore, StoreSnapshot

__all__ = [
    "ApplyOutcome",
    "ChangeBatch",
    "ChangeFeed",
    "ChangeOp",
    "EmbeddingService",
    "EmbeddingStore",
    "InsertBatch",
    "ServiceStats",
    "StoreSnapshot",
    "UpdateLog",
    "check_ladder",
    "churn_feed",
    "is_ladder_payload",
    "partition_feed",
    "render_ladder",
    "run_throughput_ladder",
]

"""A versioned, snapshotable store of tuple embeddings.

The serving layer separates *computing* embeddings (the dynamic extender,
driven by the change feed) from *querying* them.  Queries run against a
:class:`StoreSnapshot` — an immutable, monotonically versioned view whose
arrays never change after creation — so readers are never torn by a
concurrent apply: they keep the snapshot they resolved and see a fully
consistent embedding matrix, while the service commits new versions behind
them.

Commits are copy-on-write: :meth:`EmbeddingStore.commit` builds the next
version's arrays from the head snapshot plus the batch of updated vectors
and leaves every earlier snapshot untouched.  Deletions *tombstone* rows —
the row stays in the arrays (so sibling rows keep their numbers and the
copy stays cheap) but is masked out of every query: lookups, fetches, kNN
and relation slices never see a deleted tuple.  Once tombstones dominate,
the next commit compacts them away in one amortised rebuild.  Each commit
records the feed batch id that produced it, which makes replays idempotent
at the store level too: committing an already-applied batch id returns the
snapshot that batch originally produced instead of minting a new version.

Persistence is ``.npz``-backed through :mod:`repro.core.persistence`: a
saved store directory holds the head snapshot's live embedding matrix plus
a JSON sidecar with the version counter, per-fact relations and the applied
batch-id log, so a restarted service resumes at the persisted version
(tombstones are compacted away by the round trip).

kNN queries go through the :mod:`repro.index` protocol.  Every snapshot
answers exact search — bit-identical to the pre-protocol in-snapshot scan
— from its own arrays via :class:`~repro.index.exact.ExactIndex`.  A store
built with ``index="ivf"`` additionally maintains one writer-side
:class:`~repro.index.ivf.IVFIndex` whose state advances per commit exactly
like the tombstone state does: each commit's row deltas are absorbed
incrementally, compaction triggers a full retrain (rows renumber), and the
resulting immutable view is attached to the new snapshot, so readers pick
an index per query (``nearest(..., index="ivf", nprobe=...)``) with exact
as the default.  The index choice is persisted with the store.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np

from repro.core.base import TupleEmbedding
from repro.core.persistence import load_embedding, save_embedding
from repro.db.database import Fact
from repro.index import ExactIndex, IndexSource, make_index
from repro.obs import NULL_TELEMETRY, Telemetry


class StoreSnapshot:
    """One immutable version of the store: fact ids, relations and vectors.

    ``alive`` masks tombstoned (deleted) rows; only live rows are reachable
    through ``row_of``, counted by ``num_facts`` and returned by queries.
    """

    __slots__ = (
        "version", "batch_id", "fact_ids", "relations", "vectors", "alive",
        "row_of", "source", "_exact", "_ann_view",
        "_telemetry", "_h_fetch", "_h_knn", "_h_slice",
    )

    def __init__(
        self,
        version: int,
        batch_id: str | None,
        fact_ids: np.ndarray,
        relations: tuple[str, ...],
        vectors: np.ndarray,
        alive: np.ndarray | None = None,
    ):
        self.version = int(version)
        self.batch_id = batch_id
        self.fact_ids = np.asarray(fact_ids, dtype=np.int64)
        self.relations = tuple(relations)
        self.vectors = np.asarray(vectors, dtype=np.float64)
        if self.vectors.shape[0] != self.fact_ids.size or len(self.relations) != self.fact_ids.size:
            raise ValueError("fact_ids, relations and vectors must align")
        if alive is None:
            alive = np.ones(self.fact_ids.size, dtype=bool)
        self.alive = np.asarray(alive, dtype=bool)
        if self.alive.size != self.fact_ids.size:
            raise ValueError("alive mask must align with fact_ids")
        self.fact_ids.setflags(write=False)
        self.vectors.setflags(write=False)
        self.alive.setflags(write=False)
        self.row_of = {
            int(fid): row
            for row, fid in enumerate(self.fact_ids)
            if self.alive[row]
        }
        relations_array = np.empty(len(self.relations), dtype=object)
        relations_array[:] = self.relations
        relations_array.setflags(write=False)
        self.source = IndexSource(self.vectors, relations_array, self.alive)
        self._exact: ExactIndex | None = None
        self._ann_view = None
        self.set_telemetry(None)

    def set_telemetry(self, telemetry: Telemetry | None) -> None:
        """Bind the query-latency histograms (no-ops when disabled)."""
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        metrics = self._telemetry.metrics
        self._h_fetch = metrics.histogram("store.fetch.seconds")
        self._h_knn = metrics.histogram("store.knn.seconds")
        self._h_slice = metrics.histogram("store.slice.seconds")
        if self._exact is not None:
            self._exact.set_telemetry(self._telemetry)
        if self._ann_view is not None:
            self._ann_view.set_telemetry(self._telemetry)

    # -------------------------------------------------------------- basics

    @property
    def num_facts(self) -> int:
        """Live (queryable) facts; tombstoned rows are not counted."""
        return int(np.count_nonzero(self.alive))

    @property
    def num_rows(self) -> int:
        """Physical rows, tombstones included."""
        return self.fact_ids.size

    @property
    def num_dead(self) -> int:
        return self.num_rows - self.num_facts

    @property
    def dimension(self) -> int:
        return self.vectors.shape[1]

    def __contains__(self, fact: Fact | int) -> bool:
        return _key(fact) in self.row_of

    def __len__(self) -> int:
        return self.num_facts

    # ------------------------------------------------------------- queries

    def vector(self, fact: Fact | int) -> np.ndarray:
        """The embedding of one live fact (a copy; snapshots are immutable)."""
        return self.vectors[self.row_of[_key(fact)]].copy()

    def fetch(self, facts: Iterable[Fact | int]) -> np.ndarray:
        """Batched fetch-by-fact: the ``(len(facts), dimension)`` matrix.

        Raises ``KeyError`` for unknown *and* deleted facts alike.
        """
        started = time.perf_counter()
        rows = [self.row_of[_key(f)] for f in facts]
        if not rows:
            result = np.zeros((0, self.dimension))
        else:
            result = self.vectors[np.asarray(rows, dtype=np.int64)].copy()
        self._h_fetch.observe(time.perf_counter() - started)
        return result

    def relation_slice(self, relation: str) -> tuple[np.ndarray, np.ndarray]:
        """``(fact_ids, vectors)`` of every *live* stored fact of one relation."""
        started = time.perf_counter()
        mask = (self.source.relations == relation) & self.alive
        result = self.fact_ids[mask].copy(), self.vectors[mask].copy()
        self._h_slice.observe(time.perf_counter() - started)
        return result

    def normalized(self) -> np.ndarray:
        """The row-normalised embedding matrix (cached per snapshot)."""
        return self.source.normalized()

    # ------------------------------------------------------------- indexes

    @property
    def index_kinds(self) -> tuple[str, ...]:
        """Index kinds this snapshot can answer (``"exact"`` always)."""
        if self._ann_view is not None:
            return ("exact", self._ann_view.kind)
        return ("exact",)

    def attach_index(self, view) -> None:
        """Bind the ANN view frozen for this version (writer-side, pre-publish)."""
        self._ann_view = view

    def index_view(self, kind: str | None = None):
        """The search view answering ``kind`` queries (``"exact"`` default).

        The exact view is built lazily — every snapshot can answer it from
        its own arrays — while ANN views are frozen by the store's writer
        at commit time.  Unknown (or unmaintained) kinds raise ValueError.
        """
        if kind is None or kind == "exact":
            view = self._exact
            if view is None:
                view = ExactIndex(self.source, telemetry=self._telemetry)
                self._exact = view
            return view
        if self._ann_view is not None and kind == self._ann_view.kind:
            return self._ann_view
        raise ValueError(
            f"unknown index {kind!r}; this snapshot answers {self.index_kinds}"
        )

    def nearest(
        self,
        query: Fact | int | np.ndarray,
        k: int = 5,
        relation: str | None = None,
        *,
        index: str | None = None,
        nprobe: int | None = None,
    ) -> list[tuple[int, float]]:
        """The ``k`` live facts most cosine-similar to ``query``, best first.

        ``query`` may be a stored fact (excluded from its own result) or a
        raw vector; ``relation`` restricts the candidate pool; tombstoned
        rows are never candidates.  ``index`` picks which index answers —
        ``"exact"`` (default) scans every live row and reproduces the
        pre-protocol results bit for bit, ``"ivf"`` (when the store
        maintains one) probes ``nprobe`` partitions and trades recall for
        speed.  The batched analogue of :func:`repro.core.similarity.
        most_similar`.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        started = time.perf_counter()
        if isinstance(query, np.ndarray):
            query_vector = np.asarray(query, dtype=np.float64)
            exclude: tuple[int, ...] = ()
        else:
            query_row = self.row_of[_key(query)]
            query_vector = self.vectors[query_row]
            exclude = (query_row,)
        view = self.index_view(index)
        neighbors = view.search(
            query_vector, int(k), exclude_rows=exclude, relation=relation,
            nprobe=nprobe,
        )
        result = [(int(self.fact_ids[row]), score) for row, score in neighbors]
        self._h_knn.observe(time.perf_counter() - started)
        return result

    def embedding(self) -> TupleEmbedding:
        """This snapshot's live facts as a :class:`TupleEmbedding` (mutable copy)."""
        if not self.row_of:
            return TupleEmbedding(self.dimension)
        rows = np.fromiter(
            self.row_of.values(), dtype=np.int64, count=len(self.row_of)
        )
        return TupleEmbedding.from_rows(
            self.dimension, tuple(self.row_of.keys()), self.vectors[rows]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StoreSnapshot(version={self.version}, facts={self.num_facts}, "
            f"batch_id={self.batch_id!r})"
        )


def _key(fact: Fact | int) -> int:
    return fact.fact_id if isinstance(fact, Fact) else int(fact)


class EmbeddingStore:
    """Monotonically versioned store of tuple embeddings.

    ``commit`` produces a new :class:`StoreSnapshot`; every snapshot remains
    readable (and immutable) until the store is pruned.  Updates keyed by
    :class:`Fact` carry their relation; plain ``int`` keys are only valid
    for facts the store has already seen.  ``deletes`` tombstone facts out
    of every subsequent query; tombstones are compacted automatically once
    they dominate the arrays.

    **Concurrency contract.**  The store supports one writer and any number
    of readers: ``commit``/``prune`` must come from a single thread, while
    ``snapshot``/``pin``/``release``/``head`` and every snapshot query are
    safe from any thread concurrently with a commit.  Snapshots are
    immutable (read-only arrays), so a reader holding one is never torn;
    the version map itself is guarded by an internal lock.  :meth:`pin`
    refcounts a version so neither :meth:`prune` nor a compacting commit
    can make it unresolvable while a reader (or the serve tier's
    :class:`~repro.serve.router.SnapshotRouter`) still holds it, and
    ``retention_window`` is a floor on how many trailing versions prune
    keeps resolvable for time-travel reads.
    """

    #: Tombstone fraction beyond which a commit compacts the arrays.
    COMPACT_FRACTION = 0.5
    #: Minimum tombstones before compaction is considered at all.
    COMPACT_MIN_DEAD = 64

    def __init__(
        self,
        dimension: int,
        *,
        telemetry: Telemetry | None = None,
        index: str = "exact",
        index_params: Mapping | None = None,
    ):
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        self.dimension = int(dimension)
        self._index_params = dict(index_params or {})
        self._ann = make_index(index, self.dimension, **self._index_params)
        empty = StoreSnapshot(
            0, None, np.zeros(0, dtype=np.int64), (), np.zeros((0, self.dimension))
        )
        if self._ann is not None:
            self._ann.rebuild(empty.source)
            empty.attach_index(self._ann.snapshot(empty.source))
        self._snapshots: dict[int, StoreSnapshot] = {0: empty}
        self._head = empty
        self._applied: dict[str, int] = {}  # batch id -> version it produced
        self._lock = threading.RLock()  # guards the version map, not arrays
        self._pins: dict[int, int] = {}  # version -> reader refcount
        self.retention_window = 1
        """Minimum number of trailing versions :meth:`prune` keeps resolvable
        (beyond any pinned ones).  The serve tier's router raises this so
        recently committed versions stay addressable for time-travel reads."""
        self.metadata: dict = {}
        """JSON-safe side data persisted with the store (e.g. the service's
        arrival log); survives :meth:`save`/:meth:`load`."""
        self.set_telemetry(telemetry)

    def set_telemetry(self, telemetry: Telemetry | None) -> None:
        """Attach (or detach, with None) a telemetry bundle.

        Binds the commit instruments and pushes the query-latency histograms
        into every snapshot already minted (readers hold snapshots, so a
        late attach must reach them too).
        """
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        metrics = self._telemetry.metrics
        self._h_commit = metrics.histogram("store.commit.seconds")
        self._g_pinned = metrics.gauge("store.pinned_versions")
        self._c_cow_bytes = metrics.counter("store.cow.bytes")
        self._c_compactions = metrics.counter("store.compactions")
        self._g_tombstone_ratio = metrics.gauge("store.tombstone_ratio")
        self._g_version = metrics.gauge("store.version")
        if self._ann is not None:
            self._ann.set_telemetry(self._telemetry)
        with self._lock:
            snapshots = list(self._snapshots.values())
        for snapshot in snapshots:
            snapshot.set_telemetry(self._telemetry)

    # -------------------------------------------------------------- lookup

    @property
    def head(self) -> StoreSnapshot:
        return self._head

    @property
    def index_kind(self) -> str:
        """The maintained ANN index kind, or ``"exact"`` when none is."""
        return "exact" if self._ann is None else self._ann.kind

    @property
    def index(self):
        """The writer-side index maintainer (None for exact-only stores)."""
        return self._ann

    @property
    def version(self) -> int:
        return self._head.version

    def snapshot(self, version: int) -> StoreSnapshot:
        with self._lock:
            return self._snapshots[version]

    def versions(self) -> tuple[int, ...]:
        with self._lock:
            return tuple(self._snapshots.keys())

    def has_batch(self, batch_id: str) -> bool:
        """Whether a feed batch id has already been committed (idempotence)."""
        with self._lock:
            return batch_id in self._applied

    @property
    def applied_batch_ids(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._applied.keys())

    # ------------------------------------------------------------- pinning

    def pin(self, version: int | None = None) -> StoreSnapshot:
        """Pin a version (head when ``None``) against pruning; returns it.

        Pins are refcounted: every ``pin`` must be matched by one
        :meth:`release`.  A pinned version stays resolvable by number —
        :meth:`prune` skips it — so a reader (or a router lease) can keep
        re-fetching it while the writer commits and compacts past it.
        """
        with self._lock:
            snapshot = self._head if version is None else self._snapshots[version]
            self._pins[snapshot.version] = self._pins.get(snapshot.version, 0) + 1
            self._g_pinned.set(len(self._pins))
            return snapshot

    def release(self, version: int) -> None:
        """Drop one pin refcount of ``version`` (KeyError if not pinned)."""
        with self._lock:
            count = self._pins[version]
            if count <= 1:
                del self._pins[version]
            else:
                self._pins[version] = count - 1
            self._g_pinned.set(len(self._pins))

    def pinned_versions(self) -> tuple[int, ...]:
        with self._lock:
            return tuple(sorted(self._pins))

    # -------------------------------------------------------------- commit

    def commit(
        self,
        updates: Mapping[Fact | int, np.ndarray] | Iterable[tuple[Fact | int, np.ndarray]] = (),
        batch_id: str | None = None,
        *,
        deletes: Iterable[Fact | int] = (),
    ) -> StoreSnapshot:
        """Copy-on-write commit of new/updated vectors and deletions.

        ``deletes`` tombstone the named facts (unknown or already-deleted
        facts are ignored — at-least-once feeds re-deliver); deletions win
        over updates of the same fact within one commit.  Returns the new
        head snapshot — or, when ``batch_id`` was already committed, the
        snapshot that commit produced (the store applies each batch exactly
        once).
        """
        with self._lock:
            if batch_id is not None and batch_id in self._applied:
                # the producing snapshot may have been pruned (or predate a
                # restart); the head is then the closest still-resolvable view
                return self._snapshots.get(self._applied[batch_id], self._head)
            head = self._head
        started = time.perf_counter()
        items = updates.items() if isinstance(updates, Mapping) else updates
        vectors = head.vectors.copy()
        alive = head.alive.copy()
        appended_ids: list[int] = []
        appended_relations: list[str] = []
        appended_vectors: list[np.ndarray] = []
        appended_row_of: dict[int, int] = {}
        updated_rows: set[int] = set()
        deleted_rows: list[int] = []
        for fact, vector in items:
            vector = np.asarray(vector, dtype=np.float64)
            if vector.shape != (self.dimension,):
                raise ValueError(
                    f"expected a vector of dimension {self.dimension}, got {vector.shape}"
                )
            fid = _key(fact)
            row = head.row_of.get(fid)
            if row is not None:
                vectors[row] = vector
                updated_rows.add(row)
            elif fid in appended_row_of:
                appended_vectors[appended_row_of[fid]] = vector
            elif isinstance(fact, Fact):
                appended_row_of[fid] = len(appended_ids)
                appended_ids.append(fid)
                appended_relations.append(fact.relation)
                appended_vectors.append(vector)
            else:
                raise KeyError(
                    f"fact id {fid} is not in the store; pass a Fact so the "
                    "store learns its relation"
                )
        if appended_ids:
            fact_ids = np.concatenate([head.fact_ids, np.asarray(appended_ids, dtype=np.int64)])
            relations = head.relations + tuple(appended_relations)
            vectors = np.vstack([vectors, np.vstack(appended_vectors)])
            alive = np.concatenate([alive, np.ones(len(appended_ids), dtype=bool)])
        else:
            fact_ids = head.fact_ids
            relations = head.relations
        for fact in deletes:
            fid = _key(fact)
            row = head.row_of.get(fid)
            if row is not None:
                alive[row] = False
                deleted_rows.append(row)
            elif fid in appended_row_of:
                row = head.num_rows + appended_row_of[fid]
                alive[row] = False
                deleted_rows.append(row)
        num_dead = int(alive.size - np.count_nonzero(alive))
        compacted = False
        if num_dead >= self.COMPACT_MIN_DEAD and num_dead > self.COMPACT_FRACTION * alive.size:
            fact_ids = fact_ids[alive]
            relations = tuple(np.asarray(relations, dtype=object)[alive])
            vectors = vectors[alive]
            alive = None  # all-alive after compaction
            compacted = True
            self._c_compactions.inc()
        snapshot = StoreSnapshot(
            head.version + 1, batch_id, fact_ids, relations, vectors, alive
        )
        if self._ann is not None:
            # advance the ANN state exactly like the tombstone state: deltas
            # while row numbers are stable, full retrain when they are not
            if compacted:
                self._ann.rebuild(snapshot.source)
            else:
                if appended_ids:
                    first = head.num_rows
                    appended_rows = np.arange(
                        first, first + len(appended_ids), dtype=np.int64
                    )
                    self._ann.add(appended_rows, snapshot.vectors[first:])
                if updated_rows:
                    rows = sorted(updated_rows)
                    self._ann.update(rows, snapshot.vectors[rows])
                if deleted_rows:
                    self._ann.remove(deleted_rows)
            snapshot.attach_index(self._ann.snapshot(snapshot.source))
        snapshot.set_telemetry(self._telemetry)
        with self._lock:
            self._snapshots[snapshot.version] = snapshot
            self._head = snapshot
            if batch_id is not None:
                self._applied[batch_id] = snapshot.version
        self._c_cow_bytes.inc(int(snapshot.vectors.nbytes))
        self._g_tombstone_ratio.set(
            snapshot.num_dead / snapshot.num_rows if snapshot.num_rows else 0.0
        )
        self._g_version.set(snapshot.version)
        self._h_commit.observe(time.perf_counter() - started)
        return snapshot

    def prune(self, keep_last: int = 1) -> int:
        """Drop old unpinned snapshots; returns how many were dropped.

        Keeps the last ``max(keep_last, retention_window)`` versions plus
        every pinned one, so a reader that pinned a version — directly or
        through a router lease — can keep resolving it by number while the
        writer commits (and compacts tombstones) arbitrarily far past it.
        Readers holding an already-resolved, unpinned snapshot keep using
        it (the arrays are theirs); it just can no longer be re-resolved.
        """
        if keep_last < 1:
            raise ValueError("keep_last must be at least 1")
        with self._lock:
            keep_last = max(keep_last, int(self.retention_window))
            versions = sorted(self._snapshots)
            to_drop = [
                version
                for version in versions[:-keep_last]
                if version not in self._pins
            ]
            for version in to_drop:
                del self._snapshots[version]
            return len(to_drop)

    # --------------------------------------------------------- persistence

    def save(self, directory: str | Path) -> Path:
        """Persist the head snapshot and the store metadata to a directory."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        head = self._head
        save_embedding(head.embedding(), directory / "embedding.npz")
        metadata = {
            "dimension": self.dimension,
            "version": head.version,
            "batch_id": head.batch_id,
            "applied": self._applied,
            "relations": {
                int(fid): head.relations[row] for fid, row in head.row_of.items()
            },
            "index": {"kind": self.index_kind, "params": self._index_params},
            "metadata": self.metadata,
        }
        (directory / "store.json").write_text(json.dumps(metadata, indent=2))
        return directory

    @classmethod
    def load(cls, directory: str | Path, *, index: str | None = None) -> "EmbeddingStore":
        """Restore a store saved by :meth:`save` (history restarts at the head).

        The persisted index choice is restored (and its ANN state rebuilt
        over the loaded rows) unless ``index`` overrides it — e.g. a
        replica attaching with ``--index ivf`` to a store saved exact.
        """
        directory = Path(directory)
        metadata = json.loads((directory / "store.json").read_text())
        embedding = load_embedding(directory / "embedding.npz")
        relations = {int(fid): rel for fid, rel in metadata["relations"].items()}
        # row order is preserved through the round trip: it encodes arrival
        # order, which the service needs to rebuild its replay state
        fact_ids = np.asarray(embedding.fact_ids, dtype=np.int64)
        vectors = embedding.matrix(fact_ids) if fact_ids.size else np.zeros(
            (0, metadata["dimension"])
        )
        spec = metadata.get("index") or {}
        kind = index if index is not None else spec.get("kind", "exact")
        params = spec.get("params") or {}
        if index is not None and index != spec.get("kind"):
            params = {}  # persisted params only apply to the persisted kind
        store = cls(metadata["dimension"], index=kind, index_params=params)
        snapshot = StoreSnapshot(
            metadata["version"],
            metadata["batch_id"],
            fact_ids,
            tuple(relations[int(fid)] for fid in fact_ids),
            vectors,
        )
        if store._ann is not None:
            store._ann.rebuild(snapshot.source)
            snapshot.attach_index(store._ann.snapshot(snapshot.source))
        store._snapshots = {snapshot.version: snapshot}
        store._head = snapshot
        store._applied = dict(metadata["applied"])
        store.metadata = dict(metadata.get("metadata", {}))
        return store

"""The change feed: an ordered stream of insert batches.

A :class:`ChangeFeed` (alias :class:`UpdateLog`) is an append-only log of
:class:`InsertBatch` entries.  Consumers read by *sequence number* and may
see the same batch more than once (at-least-once delivery — a consumer that
crashes mid-apply re-reads from its last acknowledged sequence), so every
batch carries a deterministic, idempotent ``batch_id`` that lets the
service and the store deduplicate re-deliveries exactly once.

:func:`partition_feed` adapts the repo's dynamic-experiment machinery to
the feed: the cascade batches of a
:class:`~repro.dynamic.partition.Partition` are replayed in arrival order
(the inverse of deletion order, referenced facts before referencing ones —
the same order :mod:`repro.dynamic.replay` uses), optionally grouped into
larger insert batches the way a real ingest pipeline coalesces arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.db.database import Fact
from repro.dynamic.partition import Partition


@dataclass(frozen=True)
class InsertBatch:
    """One ordered batch of facts to insert, with an idempotent identity."""

    sequence: int
    batch_id: str
    facts: tuple[Fact, ...]

    def __len__(self) -> int:
        return len(self.facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self.facts)


class ChangeFeed:
    """Append-only, totally ordered log of insert batches."""

    def __init__(self, name: str = "feed"):
        self.name = name
        self._batches: list[InsertBatch] = []
        self._ids: set[str] = set()

    def append(self, facts: Iterable[Fact], batch_id: str | None = None) -> InsertBatch:
        """Append one batch; a deterministic id is derived when none is given."""
        facts = tuple(facts)
        sequence = len(self._batches)
        if batch_id is None:
            batch_id = f"{self.name}:{sequence:06d}"
        if batch_id in self._ids:
            raise ValueError(f"batch id {batch_id!r} already in the feed")
        batch = InsertBatch(sequence, batch_id, facts)
        self._batches.append(batch)
        self._ids.add(batch_id)
        return batch

    def __len__(self) -> int:
        return len(self._batches)

    def __iter__(self) -> Iterator[InsertBatch]:
        return iter(self._batches)

    def __getitem__(self, sequence: int) -> InsertBatch:
        return self._batches[sequence]

    @property
    def last_sequence(self) -> int:
        """Sequence number of the newest batch (-1 when the feed is empty)."""
        return len(self._batches) - 1

    @property
    def num_facts(self) -> int:
        return sum(len(batch) for batch in self._batches)

    def read(self, after: int = -1) -> Iterator[InsertBatch]:
        """All batches with ``sequence > after``, in order.

        Reading never consumes: a consumer that re-reads from an earlier
        sequence sees the same batches again (at-least-once delivery); the
        batch ids make the duplicates detectable.
        """
        for batch in self._batches[after + 1 :]:
            yield batch


UpdateLog = ChangeFeed
"""The feed doubles as the durable update log of the serving layer."""


def partition_feed(
    partition: Partition,
    group_size: int = 1,
    name: str | None = None,
) -> ChangeFeed:
    """A partition's removed facts as an insert feed, in arrival order.

    Each cascade batch is emitted referenced-facts-first (the inverse of its
    deletion order); ``group_size`` coalesces that many consecutive cascade
    batches into one :class:`InsertBatch`.  Batch ids embed the prediction
    fact ids they deliver, so regenerating the feed from an identical
    partition yields identical ids — the idempotence anchor for replays.
    """
    if group_size < 1:
        raise ValueError("group_size must be at least 1")
    feed = ChangeFeed(name or f"replay-{partition.prediction_relation}")
    arrival: list[list[Fact]] = [
        list(reversed(batch)) for batch in reversed(partition.new_batches)
    ]
    for start in range(0, len(arrival), group_size):
        group = arrival[start : start + group_size]
        facts = [fact for cascade in group for fact in cascade]
        anchor_ids = "+".join(
            str(cascade[-1].fact_id) for cascade in group if cascade
        )
        feed.append(facts, batch_id=f"{feed.name}:{len(feed):06d}:{anchor_ids}")
    return feed

"""The change feed: an ordered stream of typed change batches.

A :class:`ChangeFeed` (alias :class:`UpdateLog`) is an append-only log of
:class:`ChangeBatch` entries, each an ordered sequence of typed
:class:`ChangeOp`\\ s — ``insert``, ``delete`` or ``update``.  Consumers
read by *sequence number* and may see the same batch more than once
(at-least-once delivery — a consumer that crashes mid-apply re-reads from
its last acknowledged sequence), so every batch carries a deterministic,
idempotent ``batch_id`` that lets the service and the store deduplicate
re-deliveries exactly once.  The ops themselves are idempotent under
re-application too: re-inserting a present fact, re-deleting an absent one
and re-applying an update that already took are all no-ops, so even a
consumer without batch-id dedup converges.

Two adapters build feeds from the repo's experiment machinery:

* :func:`partition_feed` replays the cascade batches of a
  :class:`~repro.dynamic.partition.Partition` as pure insert batches in
  arrival order (the inverse of deletion order, referenced facts before
  referencing ones — the same order :mod:`repro.dynamic.replay` uses),
  optionally grouped the way a real ingest pipeline coalesces arrivals;
* :func:`churn_feed` turns the same partition into a *churn* workload:
  each insert group is followed (deterministically, from a seed) by
  deletions of previously streamed facts and in-place attribute updates of
  surviving ones — the full-CRUD streaming scenario.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.db.database import Fact, Value
from repro.dynamic.partition import Partition
from repro.utils.rng import ensure_rng

#: The op kinds a feed can carry, in the order the service applies them.
OP_KINDS = ("insert", "delete", "update")


@dataclass(frozen=True)
class ChangeOp:
    """One typed change: insert a fact, delete it, or update its values.

    ``fact`` is the inserted fact, the fact to delete (identified by its
    ``fact_id``), or — for updates — a fact with the *post-update* values
    under the original ``fact_id``.
    """

    kind: str
    fact: Fact

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}; expected one of {OP_KINDS}")


@dataclass(frozen=True)
class ChangeBatch:
    """One ordered batch of change ops, with an idempotent identity."""

    sequence: int
    batch_id: str
    ops: tuple[ChangeOp, ...]

    @property
    def facts(self) -> tuple[Fact, ...]:
        """The facts of every op, in order (all of them inserts for a pure
        insert batch — the historical :class:`InsertBatch` reading)."""
        return tuple(op.fact for op in self.ops)

    def _of_kind(self, kind: str) -> tuple[Fact, ...]:
        return tuple(op.fact for op in self.ops if op.kind == kind)

    @property
    def inserts(self) -> tuple[Fact, ...]:
        return self._of_kind("insert")

    @property
    def deletes(self) -> tuple[Fact, ...]:
        return self._of_kind("delete")

    @property
    def updates(self) -> tuple[Fact, ...]:
        return self._of_kind("update")

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self.facts)


InsertBatch = ChangeBatch
"""Historical name from when the feed carried inserts only."""


def _ops_digest(ops: Sequence[ChangeOp]) -> str:
    """A short deterministic digest of a batch's (kind, fact id) signature."""
    payload = ";".join(f"{op.kind[0]}{op.fact.fact_id}" for op in ops)
    return hashlib.sha1(payload.encode()).hexdigest()[:8]


class ChangeFeed:
    """Append-only, totally ordered log of change batches."""

    def __init__(self, name: str = "feed"):
        self.name = name
        self._batches: list[ChangeBatch] = []
        self._ids: set[str] = set()

    def _publish(self, ops: tuple[ChangeOp, ...], batch_id: str | None) -> ChangeBatch:
        sequence = len(self._batches)
        if batch_id is None:
            batch_id = f"{self.name}:{sequence:06d}"
            if any(op.kind != "insert" for op in ops):
                # mixed batches embed an op digest so a feed regenerated from
                # the same churn schedule re-derives identical ids
                batch_id += f":{_ops_digest(ops)}"
        if batch_id in self._ids:
            raise ValueError(f"batch id {batch_id!r} already in the feed")
        batch = ChangeBatch(sequence, batch_id, ops)
        self._batches.append(batch)
        self._ids.add(batch_id)
        return batch

    def append(self, facts: Iterable[Fact], batch_id: str | None = None) -> ChangeBatch:
        """Append one insert batch; a deterministic id is derived when none
        is given (the historical, insert-only calling convention)."""
        return self._publish(tuple(ChangeOp("insert", f) for f in facts), batch_id)

    def append_deletes(self, facts: Iterable[Fact], batch_id: str | None = None) -> ChangeBatch:
        """Append one batch deleting the given facts (idempotent on replay)."""
        return self._publish(tuple(ChangeOp("delete", f) for f in facts), batch_id)

    def append_updates(self, facts: Iterable[Fact], batch_id: str | None = None) -> ChangeBatch:
        """Append one batch of in-place updates (facts carry the new values)."""
        return self._publish(tuple(ChangeOp("update", f) for f in facts), batch_id)

    def append_ops(
        self,
        ops: Iterable[ChangeOp | tuple[str, Fact]],
        batch_id: str | None = None,
    ) -> ChangeBatch:
        """Append one mixed batch of typed ops, applied in the given order."""
        normalized = tuple(
            op if isinstance(op, ChangeOp) else ChangeOp(*op) for op in ops
        )
        return self._publish(normalized, batch_id)

    def __len__(self) -> int:
        return len(self._batches)

    def __iter__(self) -> Iterator[ChangeBatch]:
        return iter(self._batches)

    def __getitem__(self, sequence: int) -> ChangeBatch:
        return self._batches[sequence]

    @property
    def last_sequence(self) -> int:
        """Sequence number of the newest batch (-1 when the feed is empty)."""
        return len(self._batches) - 1

    @property
    def num_facts(self) -> int:
        return sum(len(batch) for batch in self._batches)

    @property
    def num_ops(self) -> dict[str, int]:
        """Op counts by kind across the whole feed."""
        counts = {kind: 0 for kind in OP_KINDS}
        for batch in self._batches:
            for op in batch.ops:
                counts[op.kind] += 1
        return counts

    def read(self, after: int = -1) -> Iterator[ChangeBatch]:
        """All batches with ``sequence > after``, in order.

        Reading never consumes: a consumer that re-reads from an earlier
        sequence sees the same batches again (at-least-once delivery); the
        batch ids make the duplicates detectable.
        """
        for batch in self._batches[after + 1 :]:
            yield batch


UpdateLog = ChangeFeed
"""The feed doubles as the durable update log of the serving layer."""


def partition_feed(
    partition: Partition,
    group_size: int = 1,
    name: str | None = None,
) -> ChangeFeed:
    """A partition's removed facts as an insert feed, in arrival order.

    Each cascade batch is emitted referenced-facts-first (the inverse of its
    deletion order); ``group_size`` coalesces that many consecutive cascade
    batches into one :class:`ChangeBatch`.  Batch ids embed the prediction
    fact ids they deliver, so regenerating the feed from an identical
    partition yields identical ids — the idempotence anchor for replays.
    """
    if group_size < 1:
        raise ValueError("group_size must be at least 1")
    feed = ChangeFeed(name or f"replay-{partition.prediction_relation}")
    arrival: list[list[Fact]] = [
        list(reversed(batch)) for batch in reversed(partition.new_batches)
    ]
    for start in range(0, len(arrival), group_size):
        group = arrival[start : start + group_size]
        facts = [fact for cascade in group for fact in cascade]
        anchor_ids = "+".join(
            str(cascade[-1].fact_id) for cascade in group if cascade
        )
        feed.append(facts, batch_id=f"{feed.name}:{len(feed):06d}:{anchor_ids}")
    return feed


def _mutable_attributes(fact: Fact, partition: Partition) -> list[str]:
    """Attributes of ``fact`` that churn updates may rewrite.

    Key attributes and foreign-key source attributes are off limits — churn
    exercises *attribute* updates; rewriting identity or references would
    turn an update into a disguised delete+insert.
    """
    schema = fact.schema
    frozen = set(schema.key)
    for fk in partition.db.schema.foreign_keys_from(fact.relation):
        frozen.update(fk.source_attrs)
    return [name for name in schema.attribute_names if name not in frozen]


def churn_feed(
    partition: Partition,
    group_size: int = 1,
    delete_fraction: float = 0.15,
    update_fraction: float = 0.15,
    rng: int | np.random.Generator | None = 0,
    name: str | None = None,
) -> ChangeFeed:
    """A full-CRUD churn workload derived from a partition's insert stream.

    The insert stream is grouped exactly like :func:`partition_feed`; after
    each insert group a deterministic scheduler (seeded by ``rng``) deletes
    ``delete_fraction`` (of the group size) facts streamed so far and still
    live, and rewrites a mutable attribute on ``update_fraction`` facts
    drawn from the surviving stream *and* the base database (a tuple that
    was always there can change too — that is what makes it churn, not just
    ingest), with replacement values from the attribute's observed value
    pool.  Deletions are plain (non-cascading) deletes — later arrivals
    referencing a deleted fact dangle, which both the database and the
    compiled engine tolerate.  Each emitted batch carries its inserts
    first, then updates, then deletes, under a batch id embedding the op
    signature, so regenerating the feed from the same partition and seed is
    id-identical.
    """
    if group_size < 1:
        raise ValueError("group_size must be at least 1")
    if not 0.0 <= delete_fraction < 1.0 or not 0.0 <= update_fraction < 1.0:
        raise ValueError("delete_fraction and update_fraction must be in [0, 1)")
    generator = ensure_rng(rng)
    feed = ChangeFeed(name or f"churn-{partition.prediction_relation}")
    arrival: list[list[Fact]] = [
        list(reversed(batch)) for batch in reversed(partition.new_batches)
    ]
    # value pools for updates: every value observed for (relation, attribute)
    # across the base database and the stream
    pools: dict[tuple[str, str], list[Value]] = {}

    def pool(relation: str, attribute: str) -> list[Value]:
        key = (relation, attribute)
        if key not in pools:
            values = {
                f[attribute]
                for f in partition.db.facts(relation)
                if f[attribute] is not None
            }
            for cascade in arrival:
                for f in cascade:
                    if f.relation == relation and f[attribute] is not None:
                        values.add(f[attribute])
            pools[key] = sorted(values, key=repr)
        return pools[key]

    # current values of every updatable fact: the base database's facts with
    # at least one mutable attribute, plus the streamed facts as they arrive
    state: dict[int, Fact] = {
        fact.fact_id: fact
        for fact in partition.db.facts()
        if _mutable_attributes(fact, partition)
    }
    streamed_live: set[int] = set()
    streamed_facts: dict[int, Fact] = {}

    def rewrite(fact: Fact) -> Fact | None:
        """A copy of ``fact`` with one mutable attribute changed, or None."""
        attrs = _mutable_attributes(fact, partition)
        if not attrs:
            return None
        attr = attrs[int(generator.integers(len(attrs)))]
        choices = [v for v in pool(fact.relation, attr) if v != fact[attr]]
        if not choices:
            return None
        value = choices[int(generator.integers(len(choices)))]
        values = tuple(
            value if n == attr else v
            for n, v in zip(fact.schema.attribute_names, fact.values)
        )
        return Fact(fact.fact_id, fact.relation, values, fact.schema)

    for start in range(0, len(arrival), group_size):
        group = arrival[start : start + group_size]
        inserts = [fact for cascade in group for fact in cascade]
        for fact in inserts:
            streamed_live.add(fact.fact_id)
            streamed_facts[fact.fact_id] = fact
            if _mutable_attributes(fact, partition):
                state[fact.fact_id] = fact
        ops = [ChangeOp("insert", fact) for fact in inserts]
        # deletions target the streamed facts only (the base stays the
        # trained bedrock); updates may hit stream and base alike
        n_deletes = int(round(delete_fraction * len(inserts)))
        n_deletes = min(n_deletes, max(len(streamed_live) - 1, 0))
        doomed: set[int] = set()
        if n_deletes:
            ordered = sorted(streamed_live)
            picks = generator.choice(len(ordered), size=n_deletes, replace=False)
            doomed = {ordered[int(p)] for p in picks}
        n_updates = int(round(update_fraction * len(inserts)))
        updated = 0
        if n_updates:
            candidates = [fid for fid in sorted(state) if fid not in doomed]
            order = generator.permutation(len(candidates))
            for i in order:
                if updated >= n_updates:
                    break
                new_fact = rewrite(state[candidates[int(i)]])
                if new_fact is None:
                    continue
                state[new_fact.fact_id] = new_fact
                ops.append(ChangeOp("update", new_fact))
                updated += 1
        for fid in sorted(doomed):
            streamed_live.discard(fid)
            fact = state.pop(fid, None) or streamed_facts[fid]
            ops.append(ChangeOp("delete", fact))
        feed.append_ops(ops, batch_id=f"{feed.name}:{len(feed):06d}:{_ops_digest(ops)}")
    return feed

"""Throughput ladder: the streaming service's perf-regression harness.

The ladder replays the same Mondial insert stream through the serving stack
at increasing dataset scales ("rungs") and asserts, at every rung,

* a **throughput floor** — facts/second with telemetry off must not fall
  below a recorded floor (the 0.3 rung's floor is pinned at 10x the seed
  baseline of the pre-batched pipeline, the acceptance bar of the fused
  batched hot path);
* an **exactness bar** — the streamed head store must match a one-shot
  dynamic-extender run on the same final database to 1e-9
  (:data:`~repro.service.replay.VERIFY_TOLERANCE`), and a full-CRUD churn
  replay of the same rung must match its one-shot run to 1e-12.

The result is one versioned JSON payload (``schema_version`` 2, ``kind``
``"throughput_ladder"``) written to ``benchmarks/results/BENCH_streaming.json``
— the same artifact name the old single-run benchmark used; consumers
(``repro stats``, ``tools/check_obs_artifacts.py``) dispatch on the
``rungs`` key and keep accepting the old single-run format, which
``python -m repro bench`` still emits.

Group sizes are part of the rung definition: the feed coalesces arrivals
into commit windows exactly the way an ingest pipeline batches them, and
batched arrival is the point of the fused pipeline — so each rung pins the
window size it is measured at (see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.config import ForwardConfig
from repro.obs import Telemetry
from repro.service.replay import VERIFY_TOLERANCE, run_streaming_replay

LADDER_SCHEMA_VERSION = 2
LADDER_KIND = "throughput_ladder"

CHURN_TOLERANCE = 1e-12

#: Per-commit-window delete/update fractions of the churn leg. Deliberately
#: higher than the churn benchmark's defaults: the smallest rungs stream a
#: handful of facts, and ``round(0.15 * window)`` would never schedule an
#: op — every rung must actually exercise deletion and update invalidation.
CHURN_DELETE_FRACTION = 0.35
CHURN_UPDATE_FRACTION = 0.35

#: The seed repository's single-run benchmark result (per-fact extension,
#: Mondial scale 0.15) — the ladder's speedups are relative to this number.
BASELINE_FACTS_PER_SECOND = 12.603
BASELINE_SCALE = 0.15

#: Required speedup over the baseline at the 0.3 rung (the acceptance bar
#: of the batched hot path).
ACCEPTANCE_SPEEDUP = 10.0

#: Measured replays per rung; the best attempt is reported. Wall-clock
#: timing of a sub-100ms apply path is noise-dominated on a loaded CI
#: machine, and a floor should catch regressions of the code, not of the
#: neighbour's workload.
LADDER_ATTEMPTS = 2

#: The ladder's rungs. ``floor`` values are deliberately below steady-state
#: measurements (cold-process runs land 20-40% under warm ones) except at
#: scale 0.3, where the floor *is* the acceptance bar. ``group_size`` is the
#: commit-window size (None = the feed's default of ~8 windows per stream).
RUNG_SPECS: tuple[dict[str, Any], ...] = (
    {"scale": 0.15, "group_size": None, "floor": 50.0, "profile": "reduced"},
    {
        "scale": 0.3,
        "group_size": 3,
        "floor": ACCEPTANCE_SPEEDUP * BASELINE_FACTS_PER_SECOND,
        "profile": "reduced",
    },
    {"scale": 1.0, "group_size": 11, "floor": 60.0, "profile": "full"},
    {"scale": 4.0, "group_size": 40, "floor": 14.0, "profile": "full"},
)

#: Hyper-parameters of the measured model: the ladder measures the serving
#: layer, not embedding quality, so training stays as small as the pipeline
#: allows (identical to the seed benchmark's TINY_CONFIG).
LADDER_CONFIG = ForwardConfig(
    dimension=16, n_samples=400, batch_size=1024, max_walk_length=2, epochs=4,
    learning_rate=0.02, n_new_samples=30,
)


def ladder_rungs(full: bool = False) -> tuple[dict[str, Any], ...]:
    """The rung specs of one profile: reduced (CI) or full (nightly)."""
    if full:
        return RUNG_SPECS
    return tuple(spec for spec in RUNG_SPECS if spec["profile"] == "reduced")


def is_ladder_payload(payload: dict) -> bool:
    """True for the ladder schema, False for the old single-run schema."""
    return "rungs" in payload


def run_throughput_ladder(
    full: bool = False,
    dataset: str = "mondial",
    insert_ratio: float = 0.1,
    seed: int = 0,
    config: ForwardConfig | None = None,
    workers: int = 0,
    progress: "Callable[[str], None] | None" = None,
) -> dict:
    """Climb the ladder and return the versioned payload.

    Each rung runs three replays of the same partitioned stream:

    1. the **measured** insert replay — telemetry off, floors apply to its
       throughput; its one-shot verification fills the rung's 1e-9 bar;
    2. a **churn** replay (insert+delete+update) whose one-shot difference
       fills the 1e-12 bar — deletions and updates invalidate the batched
       pipeline's struct-keyed caches, so this is the cache-correctness leg;
    3. on the *smallest* rung only, an **instrumented** insert replay whose
       observability report (pipeline stage breakdown, cache hit ratios) is
       attached for the obs-artifact checker — never used for throughput.

    Floors are recorded, not enforced here; :func:`check_ladder` (used by
    the benchmark's assertions and ``tools/check_obs_artifacts.py``) turns
    them into failures so a stored artifact can be re-validated offline.
    """
    from repro import __version__

    config = config or LADDER_CONFIG
    rungs = []
    specs = ladder_rungs(full)
    for position, spec in enumerate(specs):
        scale = spec["scale"]
        if progress is not None:
            progress(f"rung {position + 1}/{len(specs)}: scale {scale}")
        common = dict(
            dataset_name=dataset,
            insert_ratio=insert_ratio,
            scale=scale,
            seed=seed,
            policy="recompute",
            group_size=spec["group_size"],
            config=config,
            verify=True,
            workers=workers,
        )
        attempts = [
            run_streaming_replay(**common) for _ in range(LADDER_ATTEMPTS)
        ]
        measured = max(attempts, key=lambda report: report["facts_per_second"])
        churn = run_streaming_replay(
            **{**common, "group_size": max(2, spec["group_size"] or 2)},
            ops=("insert", "delete", "update"),
            delete_fraction=CHURN_DELETE_FRACTION,
            update_fraction=CHURN_UPDATE_FRACTION,
        )
        rung: dict[str, Any] = {
            "scale": scale,
            "group_size": spec["group_size"],
            "floor_facts_per_second": spec["floor"],
            "facts_per_second": measured["facts_per_second"],
            "facts_per_second_attempts": [
                report["facts_per_second"] for report in attempts
            ],
            "speedup_vs_baseline": measured["facts_per_second"]
            / BASELINE_FACTS_PER_SECOND,
            "feed_batches": measured["feed_batches"],
            "feed_facts": measured["feed_facts"],
            "facts_inserted": measured["facts_inserted"],
            "store_versions_committed": measured["store_versions_committed"],
            "feed_lag": measured["feed_lag"],
            "version_skew": measured["version_skew"],
            "static_train_seconds": measured["static_train_seconds"],
            "total_apply_seconds": measured["total_apply_seconds"],
            "latency": measured["latency"],
            "verification": {
                "one_shot_max_abs_diff": measured["one_shot_max_abs_diff"],
                "tolerance": measured["one_shot_tolerance"],
                "verified": measured["verified_against_one_shot"],
                "churn_max_abs_diff": churn["one_shot_max_abs_diff"],
                "churn_tolerance": CHURN_TOLERANCE,
                "churn_verified": bool(
                    churn["verified_against_one_shot"]
                    and churn["one_shot_max_abs_diff"] <= CHURN_TOLERANCE
                    and churn.get("deleted_facts_absent_from_store", True)
                ),
                "churn_facts_deleted": churn["facts_deleted"],
                "churn_facts_updated": churn["facts_updated"],
            },
        }
        if position == 0:
            telemetry = Telemetry()
            instrumented = run_streaming_replay(
                **{**common, "verify": False}, telemetry=telemetry
            )
            rung["observability"] = instrumented["observability"]
        rungs.append(rung)
    return {
        "schema_version": LADDER_SCHEMA_VERSION,
        "kind": LADDER_KIND,
        "repro_version": __version__,
        "dataset": dataset,
        "insert_ratio": insert_ratio,
        "seed": seed,
        "policy": "recompute",
        "workers": int(workers),
        "profile": "full" if full else "reduced",
        "baseline": {
            "facts_per_second": BASELINE_FACTS_PER_SECOND,
            "scale": BASELINE_SCALE,
            "source": "seed single-run benchmark (per-fact extension path)",
        },
        "acceptance": {
            "scale": 0.3,
            "min_speedup_vs_baseline": ACCEPTANCE_SPEEDUP,
        },
        "rungs": rungs,
    }


def check_ladder(payload: dict) -> list[str]:
    """Validate a ladder payload; returns human-readable violations.

    Checks the schema shape, every rung's throughput floor, both exactness
    bars, and the acceptance speedup at scale 0.3 (when that rung is
    present). An empty list means the artifact passes.
    """
    problems: list[str] = []
    if payload.get("kind") != LADDER_KIND:
        problems.append(f"kind is {payload.get('kind')!r}, expected {LADDER_KIND!r}")
    if payload.get("schema_version") != LADDER_SCHEMA_VERSION:
        problems.append(
            f"schema_version is {payload.get('schema_version')!r}, "
            f"expected {LADDER_SCHEMA_VERSION}"
        )
    rungs = payload.get("rungs") or []
    if not rungs:
        problems.append("ladder has no rungs")
    for rung in rungs:
        scale = rung.get("scale")
        label = f"rung scale={scale}"
        throughput = rung.get("facts_per_second", 0.0)
        floor = rung.get("floor_facts_per_second", 0.0)
        if throughput < floor:
            problems.append(
                f"{label}: throughput {throughput:.1f} facts/s is below the "
                f"floor of {floor:.1f}"
            )
        verification = rung.get("verification") or {}
        diff = verification.get("one_shot_max_abs_diff")
        tolerance = verification.get("tolerance", VERIFY_TOLERANCE)
        if diff is None or diff > tolerance:
            problems.append(
                f"{label}: one-shot difference {diff!r} exceeds {tolerance:.0e}"
            )
        churn_diff = verification.get("churn_max_abs_diff")
        churn_tolerance = verification.get("churn_tolerance", CHURN_TOLERANCE)
        if churn_diff is None or churn_diff > churn_tolerance:
            problems.append(
                f"{label}: churn difference {churn_diff!r} exceeds "
                f"{churn_tolerance:.0e}"
            )
        if rung.get("store_versions_committed", 0) < 2:
            problems.append(f"{label}: fewer than 2 store versions committed")
    acceptance = payload.get("acceptance") or {}
    target = acceptance.get("scale")
    for rung in rungs:
        if rung.get("scale") == target:
            speedup = rung.get("speedup_vs_baseline", 0.0)
            required = acceptance.get("min_speedup_vs_baseline", 0.0)
            if speedup < required:
                problems.append(
                    f"acceptance: speedup {speedup:.1f}x at scale {target} is "
                    f"below the required {required:.0f}x"
                )
    return problems


def render_ladder(payload: dict) -> str:
    """A human-readable table of one ladder payload."""
    baseline = payload["baseline"]
    lines = [
        f"Throughput ladder — {payload['dataset']} "
        f"(insert ratio {payload['insert_ratio']}, policy {payload['policy']}, "
        f"profile {payload['profile']})",
        f"baseline: {baseline['facts_per_second']:.1f} facts/s at scale "
        f"{baseline['scale']} ({baseline['source']})",
        f"{'scale':>8}{'window':>8}{'facts/s':>10}{'floor':>8}{'speedup':>9}"
        f"{'p95 ms':>8}{'1-shot':>10}{'churn':>10}",
    ]
    for rung in payload["rungs"]:
        verification = rung["verification"]
        window = rung["group_size"]
        lines.append(
            f"{rung['scale']:>8}{'auto' if window is None else window:>8}"
            f"{rung['facts_per_second']:>10.1f}"
            f"{rung['floor_facts_per_second']:>8.1f}"
            f"{rung['speedup_vs_baseline']:>8.1f}x"
            f"{rung['latency']['p95_seconds'] * 1e3:>8.1f}"
            f"{verification['one_shot_max_abs_diff']:>10.1e}"
            f"{verification['churn_max_abs_diff']:>10.1e}"
        )
    problems = check_ladder(payload)
    lines.append(
        "floors/bars: OK" if not problems else "VIOLATIONS:\n  " + "\n  ".join(problems)
    )
    return "\n".join(lines)

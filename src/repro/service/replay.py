"""Streaming scenario driver: replay a dataset's insert stream online.

This is the serving-layer counterpart of the offline dynamic experiment
(:mod:`repro.evaluation.dynamic_experiment`): a dataset is partitioned at a
chosen insert ratio, the static model is trained on the old part, and the
removed facts are then replayed *as a change feed* through a live
:class:`~repro.service.service.EmbeddingService`, measuring what a server
operator cares about — apply latency per batch, ingest throughput, store
versions committed — instead of downstream accuracy.

Under the default ``recompute`` policy the run is self-verifying: after the
stream drains, a one-shot :class:`~repro.core.forward_dynamic.
ForwardDynamicExtender` run on an independently reconstructed copy of the
final database must reproduce the head store's embeddings to 1e-9.

Run from the unified command line::

    python -m repro replay --dataset mondial --insert-ratio 0.1

and a ``BENCH_streaming.json`` with throughput and latency statistics is
written next to the current working directory.  (The historical entry point
``python -m repro.service.replay`` still works as a deprecation shim.)
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import ForwardConfig
from repro.core.forward import ForwardEmbedder
from repro.core.forward_dynamic import ForwardDynamicExtender
from repro.datasets import load_dataset
from repro.dynamic.partition import partition_dataset
from repro.engine import WalkEngine
from repro.evaluation.timing import latency_summary
from repro.service.feed import partition_feed
from repro.service.service import EmbeddingService

VERIFY_TOLERANCE = 1e-9

#: Hyper-parameters sized so the replay finishes in minutes on a laptop CPU.
DEFAULT_CONFIG = ForwardConfig(
    dimension=32,
    n_samples=1500,
    batch_size=2048,
    max_walk_length=2,
    epochs=15,
    learning_rate=0.01,
    n_new_samples=60,
)


def run_streaming_replay(
    dataset_name: str,
    insert_ratio: float = 0.1,
    scale: float = 0.2,
    seed: int = 0,
    policy: str = "recompute",
    group_size: int | None = None,
    config: ForwardConfig | None = None,
    verify: bool | None = None,
) -> dict:
    """Replay one dataset's insert stream through an embedding service.

    Returns a JSON-safe report with throughput/latency statistics and — for
    the ``recompute`` policy, unless ``verify`` is false — the maximum
    absolute difference against a one-shot dynamic-extender run on the same
    final database.
    """
    config = config or DEFAULT_CONFIG
    if verify is None:
        verify = policy == "recompute"
    dataset = load_dataset(dataset_name, scale=scale, seed=seed)
    partition = partition_dataset(dataset, ratio_new=insert_ratio, rng=seed)

    start = time.perf_counter()
    engine = WalkEngine(partition.db)
    model = ForwardEmbedder(
        partition.db, dataset.prediction_relation, config, rng=seed, engine=engine
    ).fit()
    static_seconds = time.perf_counter() - start

    if group_size is None:
        # ~8 feed batches regardless of stream length: a batch per "commit
        # window", the way an ingest pipeline coalesces arrivals
        group_size = max(1, len(partition.new_batches) // 8)
    feed = partition_feed(partition, group_size=group_size)
    service = EmbeddingService(
        model, partition.db, engine=engine, policy=policy, seed=seed
    )
    outcomes = service.sync(feed)
    stats = service.stats(feed)

    from repro import __version__

    report: dict = {
        "repro_version": __version__,
        "dataset": dataset_name,
        "scale": scale,
        "seed": seed,
        "insert_ratio": insert_ratio,
        "policy": policy,
        "feed_batches": len(feed),
        "feed_facts": feed.num_facts,
        "prediction_facts_streamed": stats.facts_embedded if policy == "on_arrival" else len(
            [f for f in partition.new_facts if f.relation == dataset.prediction_relation]
        ),
        "facts_inserted": stats.facts_inserted,
        "store_versions_committed": stats.store_version,
        "engine_version": stats.engine_version,
        "feed_lag": stats.feed_lag,
        "version_skew": stats.version_skew,
        "static_train_seconds": static_seconds,
        "total_apply_seconds": stats.total_apply_seconds,
        "facts_per_second": stats.facts_per_second,
        "latency": latency_summary(stats.apply_seconds),
        "batches": [
            {
                "sequence": o.sequence,
                "batch_id": o.batch_id,
                "facts_inserted": o.facts_inserted,
                "facts_embedded": o.facts_embedded,
                "seconds": o.seconds,
                "store_version": o.store_version,
            }
            for o in outcomes
        ],
    }

    if verify:
        if policy != "recompute":
            raise ValueError("one-shot verification requires the 'recompute' policy")
        max_diff = _one_shot_max_difference(
            dataset, model, service, insert_ratio=insert_ratio, seed=seed
        )
        report["verified_against_one_shot"] = bool(max_diff <= VERIFY_TOLERANCE)
        report["one_shot_max_abs_diff"] = max_diff
        report["one_shot_tolerance"] = VERIFY_TOLERANCE
    return report


def _one_shot_max_difference(
    dataset,
    model,
    service: EmbeddingService,
    insert_ratio: float,
    seed: int,
) -> float:
    """Max |streamed − one-shot| over all streamed prediction embeddings.

    The final database is reconstructed independently (same dataset, same
    partition seed, all batches re-inserted at once) and every streamed
    prediction fact is embedded by a fresh one-shot extender; the service's
    head store must agree to machine precision.
    """
    twin = partition_dataset(dataset, ratio_new=insert_ratio, rng=seed)
    for batch in reversed(twin.new_batches):
        for fact in reversed(batch):
            twin.db.reinsert(fact)
    extender = ForwardDynamicExtender(
        model, twin.db, recompute_old_paths=True, rng=seed, engine=WalkEngine(twin.db)
    )
    head = service.store.head
    arrival_order = [
        fact
        for batch in reversed(twin.new_batches)
        for fact in reversed(batch)
        if fact.relation == dataset.prediction_relation
    ]
    max_diff = 0.0
    for fact in arrival_order:
        one_shot = extender.embed_fact(fact)
        streamed = head.vector(fact.fact_id)
        max_diff = max(max_diff, float(np.max(np.abs(one_shot - streamed))))
    return max_diff


def render_report(report: dict) -> str:
    """A short human-readable summary of a replay report."""
    latency = report["latency"]
    lines = [
        f"Streaming replay — {report['dataset']} "
        f"(scale {report['scale']}, insert ratio {report['insert_ratio']}, "
        f"policy {report['policy']})",
        f"{'feed batches':<28}{report['feed_batches']:>12}",
        f"{'facts inserted':<28}{report['facts_inserted']:>12}",
        f"{'store versions committed':<28}{report['store_versions_committed']:>12}",
        f"{'static train seconds':<28}{report['static_train_seconds']:>12.3f}",
        f"{'total apply seconds':<28}{report['total_apply_seconds']:>12.3f}",
        f"{'facts / second':<28}{report['facts_per_second']:>12.1f}",
        f"{'apply p50 seconds':<28}{latency['p50_seconds']:>12.4f}",
        f"{'apply p95 seconds':<28}{latency['p95_seconds']:>12.4f}",
    ]
    if "one_shot_max_abs_diff" in report:
        lines.append(
            f"{'one-shot max |diff|':<28}{report['one_shot_max_abs_diff']:>12.2e}"
            f"  ({'OK' if report['verified_against_one_shot'] else 'MISMATCH'})"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Deprecated CLI shim: forwards to ``python -m repro replay``."""
    import warnings

    warnings.warn(
        "python -m repro.service.replay is deprecated; use "
        "`python -m repro replay` (same flags, plus --config)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.cli.replay import run as run_replay

    return run_replay(argv)


if __name__ == "__main__":
    raise SystemExit(main())

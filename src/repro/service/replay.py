"""Streaming scenario driver: replay a dataset's change stream online.

This is the serving-layer counterpart of the offline dynamic experiment
(:mod:`repro.evaluation.dynamic_experiment`): a dataset is partitioned at a
chosen insert ratio, the static model is trained on the old part, and the
removed facts are then replayed *as a change feed* through a live
:class:`~repro.service.service.EmbeddingService`, measuring what a server
operator cares about — apply latency per batch, ingest throughput, store
versions committed — instead of downstream accuracy.

Two workloads share the driver, selected by ``ops``:

* ``("insert",)`` — the historical insert-only stream
  (:func:`~repro.service.feed.partition_feed`);
* ``("insert", "delete", "update")`` (any subset containing ``insert``) —
  the full-CRUD churn stream (:func:`~repro.service.feed.churn_feed`),
  which interleaves deletions of previously streamed facts and in-place
  attribute updates with the arrivals.

Under the default ``recompute`` policy the run is self-verifying: after the
stream drains, a one-shot :class:`~repro.core.forward_dynamic.
ForwardDynamicExtender` run on an independently reconstructed copy of the
final database (the same feed replayed onto a twin) must reproduce the head
store's embeddings of every *surviving* streamed prediction fact to 1e-9 —
and every deleted fact must be absent from the head store.

Run from the unified command line::

    python -m repro replay --dataset mondial --insert-ratio 0.1
    python -m repro replay --dataset mondial --ops insert,delete,update

and a ``BENCH_streaming.json`` with throughput and latency statistics is
written next to the current working directory.  (The historical entry point
``python -m repro.service.replay`` still works as a deprecation shim.)
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import ForwardConfig
from repro.core.forward import ForwardEmbedder
from repro.core.forward_dynamic import ForwardDynamicExtender
from repro.datasets import load_dataset
from repro.db.database import Database
from repro.dynamic.partition import partition_dataset
from repro.engine import WalkEngine
from repro.evaluation.timing import latency_summary
from repro.obs import Telemetry, observability_report
from repro.service.feed import OP_KINDS, ChangeFeed, churn_feed, partition_feed
from repro.service.service import EmbeddingService

VERIFY_TOLERANCE = 1e-9

#: Hyper-parameters sized so the replay finishes in minutes on a laptop CPU.
DEFAULT_CONFIG = ForwardConfig(
    dimension=32,
    n_samples=1500,
    batch_size=2048,
    max_walk_length=2,
    epochs=15,
    learning_rate=0.01,
    n_new_samples=60,
)


def run_streaming_replay(
    dataset_name: str,
    insert_ratio: float = 0.1,
    scale: float = 0.2,
    seed: int = 0,
    policy: str = "recompute",
    group_size: int | None = None,
    config: ForwardConfig | None = None,
    verify: bool | None = None,
    ops: tuple[str, ...] = ("insert",),
    delete_fraction: float = 0.15,
    update_fraction: float = 0.15,
    telemetry: Telemetry | None = None,
    workers: int = 0,
) -> dict:
    """Replay one dataset's change stream through an embedding service.

    Returns a JSON-safe report with throughput/latency statistics and — for
    the ``recompute`` policy, unless ``verify`` is false — the maximum
    absolute difference against a one-shot dynamic-extender run on the same
    final database, plus (for churn streams) the count of deleted facts
    confirmed absent from the head store.

    When an enabled ``telemetry`` bundle is passed it is attached to the
    service (and through it the engine and the store) for the whole replay,
    and the report gains an ``"observability"`` block — the per-stage apply
    breakdown and engine cache hit ratios of
    :func:`repro.obs.observability_report`.

    ``workers`` sizes the process pool of the recompute solve stage (0/1 =
    in-process); any value yields byte-identical embeddings.
    """
    config = config or DEFAULT_CONFIG
    ops = tuple(ops)
    unknown = [op for op in ops if op not in OP_KINDS]
    if unknown:
        raise ValueError(f"unknown ops {unknown}; expected a subset of {OP_KINDS}")
    if "insert" not in ops:
        raise ValueError("the op mix must include 'insert' (the stream's arrivals)")
    if verify is None:
        verify = policy == "recompute"
    dataset = load_dataset(dataset_name, scale=scale, seed=seed)
    partition = partition_dataset(dataset, ratio_new=insert_ratio, rng=seed)

    start = time.perf_counter()
    engine = WalkEngine(partition.db)
    model = ForwardEmbedder(
        partition.db, dataset.prediction_relation, config, rng=seed, engine=engine
    ).fit()
    static_seconds = time.perf_counter() - start

    if group_size is None:
        # ~8 feed batches regardless of stream length: a batch per "commit
        # window", the way an ingest pipeline coalesces arrivals
        group_size = max(1, len(partition.new_batches) // 8)
    if set(ops) == {"insert"}:
        feed = partition_feed(partition, group_size=group_size)
    else:
        feed = churn_feed(
            partition,
            group_size=group_size,
            delete_fraction=delete_fraction if "delete" in ops else 0.0,
            update_fraction=update_fraction if "update" in ops else 0.0,
            rng=seed,
        )
    service = EmbeddingService(
        model, partition.db, engine=engine, policy=policy, seed=seed,
        telemetry=telemetry, workers=workers,
    )
    outcomes = service.sync(feed)
    stats = service.stats(feed)

    from repro import __version__

    report: dict = {
        "repro_version": __version__,
        "dataset": dataset_name,
        "scale": scale,
        "seed": seed,
        "insert_ratio": insert_ratio,
        "policy": policy,
        "ops": list(ops),
        "workers": int(workers),
        "feed_batches": len(feed),
        "feed_facts": feed.num_facts,
        "feed_ops": feed.num_ops,
        "prediction_facts_streamed": stats.facts_embedded if policy == "on_arrival" else len(
            [f for f in partition.new_facts if f.relation == dataset.prediction_relation]
        ),
        "facts_inserted": stats.facts_inserted,
        "facts_deleted": stats.facts_deleted,
        "facts_updated": stats.facts_updated,
        "store_versions_committed": stats.store_version,
        "head_version": stats.head_version,
        "served_version": stats.served_version,
        "engine_version": stats.engine_version,
        "feed_lag": stats.feed_lag,
        "version_skew": stats.version_skew,
        "static_train_seconds": static_seconds,
        "total_apply_seconds": stats.total_apply_seconds,
        "facts_per_second": stats.facts_per_second,
        "latency": latency_summary(stats.apply_seconds),
        "apply_seconds": list(stats.apply_seconds),
        "batches": [
            {
                "sequence": o.sequence,
                "batch_id": o.batch_id,
                "facts_inserted": o.facts_inserted,
                "facts_deleted": o.facts_deleted,
                "facts_updated": o.facts_updated,
                "facts_embedded": o.facts_embedded,
                "seconds": o.seconds,
                "store_version": o.store_version,
            }
            for o in outcomes
        ],
    }
    if telemetry is not None and telemetry.enabled:
        report["observability"] = observability_report(
            telemetry, stats.total_apply_seconds
        )

    deleted_ids = {
        op.fact.fact_id for batch in feed for op in batch.ops if op.kind == "delete"
    }
    if deleted_ids:
        leaked = [fid for fid in deleted_ids if fid in service.store.head]
        report["deleted_facts_absent_from_store"] = not leaked
        report["deleted_facts_leaked"] = len(leaked)

    if verify:
        if policy != "recompute":
            raise ValueError("one-shot verification requires the 'recompute' policy")
        max_diff = _one_shot_max_difference(
            dataset, model, service, feed, insert_ratio=insert_ratio, seed=seed
        )
        verified = max_diff <= VERIFY_TOLERANCE and not report.get(
            "deleted_facts_leaked", 0
        )
        report["verified_against_one_shot"] = bool(verified)
        report["one_shot_max_abs_diff"] = max_diff
        report["one_shot_tolerance"] = VERIFY_TOLERANCE
    return report


def _replay_feed_into(db: Database, feed: ChangeFeed, prediction_relation: str) -> list[int]:
    """Apply a feed's ops to ``db`` exactly as the service does.

    Returns the surviving streamed prediction fact ids in arrival order —
    the order the service's ``recompute`` policy embeds them in, which a
    one-shot verification run must reproduce draw-for-draw.
    """
    arrival: list[int] = []
    for batch in feed:
        for op in batch.ops:
            fact = op.fact
            present = fact.fact_id in db._facts_by_id  # noqa: SLF001
            if op.kind == "insert":
                if not present:
                    db.reinsert(fact)
                    if fact.relation == prediction_relation:
                        arrival.append(fact.fact_id)
            elif op.kind == "delete":
                if present:
                    db.delete(fact.fact_id)
                    if fact.fact_id in arrival:
                        arrival.remove(fact.fact_id)
            else:  # update
                if present:
                    current = db.fact(fact.fact_id)
                    if current.values != fact.values:
                        db.update(current, fact.as_dict())
    return arrival


def _one_shot_max_difference(
    dataset,
    model,
    service: EmbeddingService,
    feed: ChangeFeed,
    insert_ratio: float,
    seed: int,
) -> float:
    """Max |streamed − one-shot| over all surviving prediction embeddings.

    The final database is reconstructed independently (same dataset, same
    partition seed, the same feed replayed onto a twin) and every surviving
    streamed prediction fact is embedded by a fresh one-shot extender; the
    service's head store must agree to machine precision.
    """
    twin = partition_dataset(dataset, ratio_new=insert_ratio, rng=seed)
    arrival = _replay_feed_into(twin.db, feed, dataset.prediction_relation)
    extender = ForwardDynamicExtender(
        model, twin.db, recompute_old_paths=True, rng=seed, engine=WalkEngine(twin.db)
    )
    head = service.store.head
    max_diff = 0.0
    for fact_id in arrival:
        one_shot = extender.embed_fact(twin.db.fact(fact_id))
        streamed = head.vector(fact_id)
        max_diff = max(max_diff, float(np.max(np.abs(one_shot - streamed))))
    return max_diff


def render_report(report: dict) -> str:
    """A short human-readable summary of a replay report."""
    latency = report["latency"]
    lines = [
        f"Streaming replay — {report['dataset']} "
        f"(scale {report['scale']}, insert ratio {report['insert_ratio']}, "
        f"policy {report['policy']}, ops {'+'.join(report.get('ops', ['insert']))})",
        f"{'feed batches':<28}{report['feed_batches']:>12}",
        f"{'facts inserted':<28}{report['facts_inserted']:>12}",
        f"{'facts deleted':<28}{report.get('facts_deleted', 0):>12}",
        f"{'facts updated':<28}{report.get('facts_updated', 0):>12}",
        f"{'store versions committed':<28}{report['store_versions_committed']:>12}",
        f"{'static train seconds':<28}{report['static_train_seconds']:>12.3f}",
        f"{'total apply seconds':<28}{report['total_apply_seconds']:>12.3f}",
        f"{'facts / second':<28}{report['facts_per_second']:>12.1f}",
        f"{'apply p50 seconds':<28}{latency['p50_seconds']:>12.4f}",
        f"{'apply p95 seconds':<28}{latency['p95_seconds']:>12.4f}",
        f"{'apply p99 seconds':<28}{latency['p99_seconds']:>12.4f}",
    ]
    if "deleted_facts_absent_from_store" in report:
        status = "OK" if report["deleted_facts_absent_from_store"] else "LEAKED"
        lines.append(f"{'deleted absent from store':<28}{status:>12}")
    if "one_shot_max_abs_diff" in report:
        lines.append(
            f"{'one-shot max |diff|':<28}{report['one_shot_max_abs_diff']:>12.2e}"
            f"  ({'OK' if report['verified_against_one_shot'] else 'MISMATCH'})"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Deprecated CLI shim: forwards to ``python -m repro replay``."""
    import warnings

    warnings.warn(
        "python -m repro.service.replay is deprecated; use "
        "`python -m repro replay` (same flags, plus --config)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.cli.replay import run as run_replay

    return run_replay(argv)


if __name__ == "__main__":
    raise SystemExit(main())

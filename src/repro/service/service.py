"""The embedding service: feed in, versioned embeddings out.

:class:`EmbeddingService` is the long-lived orchestrator of the serving
layer.  It drives any :class:`~repro.api.protocol.Embedder` that supports
``partial_fit`` — a trained :class:`~repro.core.forward.ForwardModel` is
still accepted directly and wrapped on the spot — together with an
:class:`~repro.service.store.EmbeddingStore`.  Each
:class:`~repro.service.feed.ChangeBatch` applied from the change feed

1. applies the batch's typed ops to the database in order — inserts (facts
   already present from an at-least-once overlap are skipped), plain
   non-cascading deletes, and in-place value updates,
2. notifies the embedder so incremental state (e.g. FoRWaRD's compiled
   engine) is appended to / tombstoned / re-encoded, never recompiled,
3. embeds through ``partial_fit``/``recompute_extension`` under the
   configured policy — re-extending only the affected neighbourhood under
   ``on_arrival`` (the batch's new and updated tracked facts), and the
   surviving streamed set under ``recompute`` — and
4. commits exactly one new store version tagged with the batch id, with
   deleted facts tombstoned out of every store query.

Duplicate batch ids are acknowledged without re-applying, so an
at-least-once feed converges to exactly-once effects.

Two embedding policies mirror the paper's two dynamic settings:

* ``"on_arrival"`` (the one-by-one setting): every new tracked fact is
  embedded once, on the version of the database it arrived into, and never
  touched again.  Cheapest, and stability extends to streamed facts.  Any
  embedder with ``supports_on_arrival`` qualifies.
* ``"recompute"`` (the all-at-once setting): after every commit the service
  re-embeds *all* streamed facts against the current database in one
  batched pass (trained embeddings stay frozen — stability by
  construction).  After the final batch the store is exactly what a
  one-shot :class:`~repro.core.forward_dynamic.ForwardDynamicExtender` run
  on the final database produces: the per-pass RNG is re-seeded from the
  service seed, so the replay is reproducible and verifiable to machine
  precision.  Requires an embedder with ``supports_recompute`` (FoRWaRD).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.api.embedders import ForwardEmbedding
from repro.api.protocol import Embedder
from repro.core.forward import ForwardModel
from repro.db.database import Database, Fact
from repro.engine import WalkEngine
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.service.feed import ChangeBatch, ChangeFeed
from repro.service.store import EmbeddingStore, StoreSnapshot

POLICIES = ("recompute", "on_arrival")


@dataclass(frozen=True)
class ApplyOutcome:
    """What applying one feed batch did."""

    sequence: int
    batch_id: str
    applied: bool
    """False when the batch id had been applied before (duplicate delivery)."""
    facts_inserted: int
    facts_embedded: int
    seconds: float
    store_version: int
    facts_deleted: int = 0
    facts_updated: int = 0


@dataclass(frozen=True)
class ServiceStats:
    """Synchronisation statistics of a running service."""

    store_version: int
    engine_version: int
    batches_applied: int
    duplicates_skipped: int
    facts_inserted: int
    facts_embedded: int
    total_apply_seconds: float
    facts_per_second: float
    feed_lag: int | None
    """Feed batches published but not yet applied (0 when fully caught up).
    ``None`` when no feed was passed to :meth:`EmbeddingService.stats` —
    without one the lag is unknown, not zero."""
    version_skew: int
    """Engine mutations since the last store commit (0 when every insert the
    engine has seen is reflected in the head store version)."""
    apply_seconds: tuple[float, ...] = field(repr=False, default=())
    """Per-batch apply latencies, for percentile reporting."""
    facts_deleted: int = 0
    facts_updated: int = 0
    head_version: int = 0
    """The writer's newest committed store version (== ``store_version``)."""
    served_version: int = 0
    """The newest version a reader has observed — through the attached
    :class:`~repro.serve.router.SnapshotRouter` when one is attached, the
    head otherwise."""

    @property
    def staleness_versions(self) -> int:
        """How many versions readers lag behind the writer head."""
        return max(0, self.head_version - self.served_version)


class EmbeddingService:
    """Applies a change feed to an embedder and versions the results.

    Parameters
    ----------
    model:
        Either a fitted :class:`~repro.api.protocol.Embedder` supporting
        ``partial_fit``, or (the historical calling convention) a trained
        :class:`ForwardModel`, which is wrapped into a
        :class:`~repro.api.embedders.ForwardEmbedding` on the spot.
    db:
        The live database the feed inserts into.
    engine:
        An optional shared :class:`WalkEngine` compiled from ``db`` (the one
        used for training, typically); only meaningful with a
        :class:`ForwardModel` — a fitted embedder brings its own.
    store:
        An optional pre-existing store (service restart); a fresh store is
        created — and seeded with the embedder's current embeddings as
        version 1 — otherwise.
    policy:
        ``"recompute"`` or ``"on_arrival"`` (see the module docstring).
    seed:
        Seed of the extension RNG.  Under ``"recompute"`` each batched pass
        re-seeds from this value, which makes the final store independent of
        how arrivals were batched.
    retain_versions:
        How many store versions to keep resolvable (older ones are pruned
        after each commit — each snapshot holds a full copy of the
        embedding matrix, so an unbounded history grows linearly with
        applied batches).  ``None`` keeps every version.
    telemetry:
        An optional :class:`~repro.obs.Telemetry` bundle.  When given, every
        apply is traced (one ``service.apply`` span broken into decode →
        engine sync → embed → store commit stages), counters/gauges/latency
        histograms are recorded, and the bundle is propagated to the walk
        engine and the store.  The default is the shared no-op bundle.
    workers:
        Process-pool size for the re-extension solve stage under the
        ``recompute`` policy (0/1 = in-process, the default).  Results are
        byte-identical to the serial path for any value — see
        :mod:`repro.engine.parallel` for the determinism contract.
    index, index_params:
        kNN index choice forwarded to the :class:`EmbeddingStore` the
        service creates when ``store`` is None (``"exact"`` default;
        ``"ivf"`` maintains the ANN index described in :mod:`repro.index`).
        Mutually exclusive with passing a pre-built store.
    """

    def __init__(
        self,
        model: ForwardModel | Embedder,
        db: Database,
        *,
        engine: WalkEngine | None = None,
        store: EmbeddingStore | None = None,
        policy: str = "recompute",
        seed: int = 0,
        retain_versions: int | None = 16,
        telemetry: Telemetry | None = None,
        workers: int = 0,
        index: str = "exact",
        index_params: Mapping | None = None,
    ):
        if store is not None and (index != "exact" or index_params):
            raise ValueError(
                "pass the index choice either via store= (a pre-built "
                "EmbeddingStore) or via index=/index_params=, not both"
            )
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; expected one of {POLICIES}")
        if isinstance(model, ForwardModel):
            embedder: Embedder = ForwardEmbedding.from_model(model, db, engine=engine)
        elif isinstance(model, Embedder):
            embedder = model
            if not embedder.is_fitted:
                raise ValueError(
                    f"the {embedder.name!r} embedder is not fitted; "
                    "call fit(db, ...) before serving it"
                )
            if embedder.db_ is not db:
                raise ValueError(
                    "the embedder is bound to a different database object; "
                    "serve it over the database it was fitted on"
                )
        else:
            raise TypeError(
                f"expected a ForwardModel or a fitted Embedder, got {type(model).__name__}"
            )
        if not embedder.supports_partial_fit:
            raise ValueError(
                f"method {embedder.name!r} does not support partial_fit; the "
                "service needs incremental extension to apply feed batches"
            )
        if policy == "on_arrival" and not embedder.supports_on_arrival:
            # for FoRWaRD: a model restored from disk has no training-time
            # distribution cache, so every extension would silently fall back
            # to the trained centroid (see save_forward_model); other methods
            # may refuse for their own consistency reasons
            raise ValueError(
                f"method {embedder.name!r} cannot be served under policy "
                "'on_arrival' in its current state (for FoRWaRD this needs the "
                "model's training-time destination distributions, which are not "
                "persisted; a model loaded from disk must be served with policy "
                "'recompute')"
            )
        if policy == "recompute" and not embedder.supports_recompute:
            raise ValueError(
                f"method {embedder.name!r} does not support the 'recompute' "
                "policy (deterministic re-extension); use policy 'on_arrival'"
            )
        if retain_versions is not None and retain_versions < 1:
            raise ValueError("retain_versions must be at least 1 (or None)")
        self._embedder = embedder
        self.model = embedder.model_
        self.db = db
        self.policy = policy
        self.retain_versions = retain_versions
        self._seed = seed
        self.workers = int(workers)
        embedder.configure_extension(
            recompute_old_paths=(policy == "recompute"), rng=seed,
            workers=self.workers,
        )
        prime = getattr(embedder, "prime_extension", None)
        if prime is not None:
            # warm the batched pipeline's fact-independent anchor state at
            # startup so the first feed batch pays only its marginal cost
            prime()
        self._tracked_relation = embedder.tracked_relation
        self._arrived: list[Fact] = []  # streamed tracked facts, arrival order
        self._arrived_ids: set[int] = set()
        self._last_sequence = -1
        self._batches_applied = 0
        self._duplicates = 0
        self._facts_inserted = 0
        self._facts_embedded = 0
        self._facts_deleted = 0
        self._facts_updated = 0
        self._total_ops = 0
        self._latencies: list[float] = []
        if store is None:
            store = EmbeddingStore(
                embedder.dimension, index=index, index_params=index_params
            )
        self.store = store
        if self.store.version == 0:
            # version 1 is the baseline: the trained (and any already
            # extended) embeddings, before the feed delivers anything
            current = embedder.transform()
            baseline = {
                self.db.fact(fid): current.vector(fid)
                for fid in current.fact_ids
                if fid in self.db._facts_by_id  # noqa: SLF001 - cheap membership
            }
            self.store.commit(baseline, batch_id="__baseline__")
        else:
            # restart with a persisted store: rebuild the arrival log, so
            # the recompute policy's one-shot-equivalence guarantee survives
            # a mid-stream restart — re-delivered batches are skipped as
            # duplicates and would otherwise never repopulate it.  The log
            # is read from the store metadata the previous service instance
            # recorded; pre-service extended embeddings (frozen by contract)
            # are never in it, only genuinely streamed facts are.
            arrived_ids = self.store.metadata.get("arrived_fact_ids")
            if arrived_ids is None:
                # store not produced by a service: fall back to head row
                # order (arrival-ordered), excluding the trained facts
                head = self.store.head
                arrived_ids = [
                    int(fid)
                    for fid, relation in zip(head.fact_ids, head.relations)
                    if self._tracks(relation) and not embedder.is_trained(int(fid))
                ]
            for fid in arrived_ids:
                fid = int(fid)
                if fid not in self.db._facts_by_id:  # noqa: SLF001
                    raise ValueError(
                        f"restored store holds streamed fact {fid}, which is not "
                        "in the database; restore the database (with preserved "
                        "fact ids) before restarting the service"
                    )
                self._arrived.append(self.db.fact(fid))
                self._arrived_ids.add(fid)
        self._engine_version_at_commit = self._embedder.engine_version
        self._router = None  # set by attach_router (the serve tier)
        self.set_telemetry(telemetry)

    def attach_router(self, router) -> None:
        """Register the serve tier's :class:`SnapshotRouter` for stats.

        With a router attached, :meth:`stats` reports ``served_version``
        from the router's reader observations instead of assuming readers
        are at the head, making staleness visible without store
        introspection.
        """
        self._router = router

    def set_telemetry(self, telemetry: Telemetry | None) -> None:
        """Attach (or detach, with None) a telemetry bundle to every layer.

        Binds the service's own counters/gauges/histograms and propagates
        the bundle down to the walk engine (cache hit/miss counters, refresh
        latency) and the store (commit and query latencies).  Instruments
        are shared no-ops when the bundle is disabled, so the apply path is
        observability-free by default.
        """
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY
        metrics = self._tel.metrics
        self._c_batches = metrics.counter("service.batches")
        self._c_duplicates = metrics.counter("service.duplicates")
        self._c_ops = metrics.counter("service.ops")
        self._c_inserted = metrics.counter("service.facts.inserted")
        self._c_deleted = metrics.counter("service.facts.deleted")
        self._c_updated = metrics.counter("service.facts.updated")
        self._c_embedded = metrics.counter("service.facts.embedded")
        self._h_apply = metrics.histogram("service.apply.seconds")
        self._g_feed_lag = metrics.gauge("service.feed_lag")
        self._g_version_skew = metrics.gauge("service.version_skew")
        self._g_store_version = metrics.gauge("service.store_version")
        self._g_facts_per_second = metrics.gauge("service.facts_per_second")
        self._g_ops_per_second = metrics.gauge("service.ops_per_second")
        engine = self._embedder.engine
        if engine is not None:
            engine.set_telemetry(self._tel)
        self.store.set_telemetry(self._tel)

    @property
    def telemetry(self) -> Telemetry:
        """The attached bundle (the shared no-op one unless opted in)."""
        return self._tel

    def _tracks(self, relation: str) -> bool:
        return self._tracked_relation is None or relation == self._tracked_relation

    @property
    def embedder(self) -> Embedder:
        """The served embedder (the protocol view of ``model``)."""
        return self._embedder

    @property
    def engine(self) -> WalkEngine | None:
        return self._embedder.engine

    @property
    def last_sequence(self) -> int:
        return self._last_sequence

    # --------------------------------------------------------------- apply

    def apply(self, batch: ChangeBatch) -> ApplyOutcome:
        """Apply one feed batch and commit exactly one store version.

        Ops are applied in batch order: inserts go in via
        ``Database.reinsert`` (facts already present are skipped), deletions
        are plain (non-cascading) ``Database.delete`` calls — deleted tuples
        are tombstoned out of the store and the compiled engine — and
        updates rewrite the fact's values in place.  Every op is idempotent,
        so re-delivered batches converge even before the batch-id dedup
        short-circuits them.
        """
        start = time.perf_counter()
        span = self._tel.span(
            "service.apply", batch_id=batch.batch_id, ops=len(batch.ops)
        )
        span.__enter__()
        try:
            if self.store.has_batch(batch.batch_id):
                span.set(duplicate=True)
                self._c_duplicates.inc()
                self._duplicates += 1
                self._last_sequence = max(self._last_sequence, batch.sequence)
                return ApplyOutcome(
                    batch.sequence, batch.batch_id, False, 0, 0,
                    time.perf_counter() - start, self.store.version,
                )
            return self._apply_live(batch, start)
        finally:
            span.__exit__(None, None, None)

    def _apply_live(self, batch: ChangeBatch, start: float) -> ApplyOutcome:
        """The non-duplicate apply path (inside the ``service.apply`` span)."""
        inserted: list[Fact] = []
        deleted: list[Fact] = []
        updated: list[Fact] = []
        with self._tel.stage("service.apply.decode"):
            for op in batch.ops:
                fact = op.fact
                if op.kind == "insert":
                    if fact in self.db:  # at-least-once overlap with an earlier batch
                        continue
                    self.db.reinsert(fact)
                    inserted.append(fact)
                elif op.kind == "delete":
                    if fact.fact_id not in self.db._facts_by_id:  # noqa: SLF001
                        continue  # already deleted (redelivery or racing batch)
                    current = self.db.fact(fact.fact_id)
                    self.db.delete(current)
                    deleted.append(current)
                else:  # update
                    if fact.fact_id not in self.db._facts_by_id:  # noqa: SLF001
                        continue  # updating a deleted fact is a no-op
                    current = self.db.fact(fact.fact_id)
                    if current.values == fact.values:
                        continue  # idempotent re-delivery
                    updated.append(self.db.update(current, fact.as_dict()))
        with self._tel.stage("service.apply.engine_sync"):
            self._embedder.notify_inserted(inserted)
            if deleted:
                self._embedder.notify_deleted(deleted)
            if updated:
                self._embedder.notify_updated(updated)
        for fact in batch.inserts:
            if (
                self._tracks(fact.relation)
                and not self._embedder.is_trained(fact.fact_id)
                and fact.fact_id not in self._arrived_ids
            ):
                self._arrived.append(fact)
                self._arrived_ids.add(fact.fact_id)
        # deletions leave the arrival log; updates refresh its fact objects
        if deleted:
            dead = {f.fact_id for f in deleted}
            if dead & self._arrived_ids:
                self._arrived_ids -= dead
                self._arrived = [f for f in self._arrived if f.fact_id not in dead]
        refreshed = [f for f in updated if f.fact_id in self._arrived_ids]
        if refreshed:
            by_id = {f.fact_id: f for f in refreshed}
            self._arrived = [by_id.get(f.fact_id, f) for f in self._arrived]
        with self._tel.stage("service.apply.embed"):
            updates = self._embed(batch, inserted, refreshed)
        with self._tel.stage("service.apply.store_commit"):
            snapshot = self.store.commit(
                updates, batch_id=batch.batch_id, deletes=[f.fact_id for f in deleted]
            )
            # the arrival log travels with the store so a restarted service
            # (which only sees duplicate re-deliveries) can rebuild it exactly
            self.store.metadata["arrived_fact_ids"] = [f.fact_id for f in self._arrived]
            if self.retain_versions is not None:
                self.store.prune(keep_last=self.retain_versions)
        self._engine_version_at_commit = self._embedder.engine_version
        seconds = time.perf_counter() - start
        self._latencies.append(seconds)
        self._batches_applied += 1
        self._facts_inserted += len(inserted)
        self._facts_embedded += len(updates)
        self._facts_deleted += len(deleted)
        self._facts_updated += len(updated)
        self._total_ops += len(batch.ops)
        self._last_sequence = max(self._last_sequence, batch.sequence)
        self._c_batches.inc()
        self._c_ops.inc(len(batch.ops))
        self._c_inserted.inc(len(inserted))
        self._c_deleted.inc(len(deleted))
        self._c_updated.inc(len(updated))
        self._c_embedded.inc(len(updates))
        self._h_apply.observe(seconds)
        return ApplyOutcome(
            batch.sequence, batch.batch_id, True, len(inserted), len(updates),
            seconds, snapshot.version, len(deleted), len(updated),
        )

    def _embed(
        self,
        batch: ChangeBatch,
        inserted: Sequence[Fact],
        refreshed: Sequence[Fact],
    ) -> dict[Fact, np.ndarray]:
        if self.policy == "on_arrival":
            # the affected neighbourhood under on_arrival is the batch
            # itself: newly arrived tracked facts, plus streamed facts whose
            # own values were updated (their embeddings were discarded by
            # notify_updated, so partial_fit re-derives them); every other
            # embedding stays frozen by policy
            new_facts = [f for f in batch.inserts if f.fact_id in self._arrived_ids]
            new_facts += [f for f in refreshed if self._tracks(f.relation)]
            embedded = self._embedder.partial_fit(new_facts)
            return {
                fact: embedded.vector(fact)
                for fact in new_facts
                if fact in embedded
            }
        # recompute: one batched pass over every *surviving* streamed fact
        # against the current database; re-seeding makes the pass
        # deterministic, so the head store always equals a one-shot extender
        # run on the current database
        return dict(self._embedder.recompute_extension(self._arrived, self._seed))

    def sync(self, feed: ChangeFeed) -> list[ApplyOutcome]:
        """Apply every feed batch newer than the last applied sequence."""
        return [self.apply(batch) for batch in feed.read(self._last_sequence)]

    # --------------------------------------------------------------- stats

    def stats(self, feed: ChangeFeed | None = None) -> ServiceStats:
        total = float(sum(self._latencies))
        facts_per_second = (self._facts_inserted / total) if total > 0 else 0.0
        # without a feed the lag is unknown, not zero: report None so callers
        # can distinguish "caught up" from "nothing to compare against"
        feed_lag = (
            (feed.last_sequence - self._last_sequence) if feed is not None else None
        )
        version_skew = self._embedder.engine_version - self._engine_version_at_commit
        self._g_feed_lag.set(feed_lag)
        self._g_version_skew.set(version_skew)
        self._g_store_version.set(self.store.version)
        self._g_facts_per_second.set(facts_per_second)
        self._g_ops_per_second.set(
            (self._total_ops / total) if total > 0 else 0.0
        )
        head_version = self.store.version
        served_version = (
            self._router.served_version() if self._router is not None else head_version
        )
        return ServiceStats(
            store_version=head_version,
            engine_version=self._embedder.engine_version,
            batches_applied=self._batches_applied,
            duplicates_skipped=self._duplicates,
            facts_inserted=self._facts_inserted,
            facts_embedded=self._facts_embedded,
            total_apply_seconds=total,
            facts_per_second=facts_per_second,
            feed_lag=feed_lag,
            version_skew=version_skew,
            apply_seconds=tuple(self._latencies),
            facts_deleted=self._facts_deleted,
            facts_updated=self._facts_updated,
            head_version=head_version,
            served_version=served_version,
        )

    # ------------------------------------------------------------- queries

    def snapshot(self) -> StoreSnapshot:
        """The current head snapshot (stable under later applies)."""
        return self.store.head

    def embeddings_of(self, facts: Sequence[Fact | int]) -> np.ndarray:
        """Batched fetch from the head snapshot."""
        return self.store.head.fetch(facts)

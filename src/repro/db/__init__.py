"""Relational database substrate.

This package implements the formal data model of Section II of the paper:
schemas with key and foreign-key constraints, facts over those schemas,
databases as finite sets of facts, constraint validation, foreign-key
indexes used by the random-walk machinery, cascading deletion (used by the
dynamic-experiment partitioning protocol of Section VI-E), and persistence.
"""

from repro.db.schema import (
    Attribute,
    AttributeType,
    ForeignKey,
    RelationSchema,
    Schema,
)
from repro.db.database import Database, Fact
from repro.db.errors import (
    ConstraintViolation,
    ForeignKeyViolation,
    KeyViolation,
    SchemaError,
    UnknownAttributeError,
    UnknownRelationError,
)
from repro.db.validation import validate_database, validate_fact
from repro.db.serialization import (
    database_from_dict,
    database_to_dict,
    load_database_json,
    save_database_json,
    load_database_csv_dir,
    save_database_csv_dir,
)

NULL = None
"""The distinguished null value ``⊥`` of the paper is represented by ``None``."""

__all__ = [
    "Attribute",
    "AttributeType",
    "ForeignKey",
    "RelationSchema",
    "Schema",
    "Database",
    "Fact",
    "NULL",
    "ConstraintViolation",
    "ForeignKeyViolation",
    "KeyViolation",
    "SchemaError",
    "UnknownAttributeError",
    "UnknownRelationError",
    "validate_database",
    "validate_fact",
    "database_from_dict",
    "database_to_dict",
    "load_database_json",
    "save_database_json",
    "load_database_csv_dir",
    "save_database_csv_dir",
]

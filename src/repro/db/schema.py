"""Schema model: relations, attributes, keys, and foreign keys.

This follows Section II of the paper.  A schema ``σ`` is a finite collection
of relation schemas ``R(A1, ..., Ak)``; each relation has a unique key
``key(R) ⊆ {A1, ..., Ak}``; a foreign key is an inclusion dependency
``R[B1..Bl] ⊆ S[C1..Cl]`` where ``{C1..Cl} = key(S)``.

For simplicity the paper assumes attribute names of distinct relations are
disjoint.  We do not require that globally; instead attributes are always
addressed as ``(relation, attribute)`` pairs internally, and the
``Schema.qualified`` helper produces the paper-style ``R.A`` name.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.db.errors import SchemaError, UnknownAttributeError, UnknownRelationError


class AttributeType(enum.Enum):
    """Coarse data type of an attribute.

    The type determines the default domain kernel (Section V-B): numeric
    attributes default to a Gaussian kernel, all others to the equality
    kernel.  ``IDENTIFIER`` marks surrogate keys / foreign-key columns whose
    values have no semantic meaning of their own.
    """

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"
    TEXT = "text"
    IDENTIFIER = "identifier"


@dataclass(frozen=True)
class Attribute:
    """A single attribute (column) of a relation schema."""

    name: str
    type: AttributeType = AttributeType.CATEGORICAL

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")


@dataclass(frozen=True)
class ForeignKey:
    """An inclusion dependency ``source[source_attrs] ⊆ target[target_attrs]``.

    ``target_attrs`` must be exactly the key of the target relation (checked
    by :class:`Schema`).  A fact whose referencing attributes contain a null
    does not participate in the constraint (the paper's convention).
    """

    source: str
    source_attrs: tuple[str, ...]
    target: str
    target_attrs: tuple[str, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "source_attrs", tuple(self.source_attrs))
        object.__setattr__(self, "target_attrs", tuple(self.target_attrs))
        if len(self.source_attrs) != len(self.target_attrs):
            raise SchemaError(
                f"foreign key {self.source}->{self.target}: attribute lists "
                f"have different lengths"
            )
        if not self.source_attrs:
            raise SchemaError("foreign key must reference at least one attribute")
        if len(set(self.source_attrs)) != len(self.source_attrs):
            raise SchemaError("foreign key source attributes must be distinct")
        if len(set(self.target_attrs)) != len(self.target_attrs):
            raise SchemaError("foreign key target attributes must be distinct")

    @property
    def name(self) -> str:
        """A readable identifier, e.g. ``MOVIES[studio]->STUDIOS[sid]``."""
        src = ",".join(self.source_attrs)
        tgt = ",".join(self.target_attrs)
        return f"{self.source}[{src}]->{self.target}[{tgt}]"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True)
class RelationSchema:
    """A relation schema ``R(A1, ..., Ak)`` with key ``key(R)``."""

    name: str
    attributes: tuple[Attribute, ...]
    key: tuple[str, ...]

    def __init__(
        self,
        name: str,
        attributes: Sequence[Attribute | tuple[str, AttributeType] | str],
        key: Sequence[str],
    ):
        if not name:
            raise SchemaError("relation name must be non-empty")
        normalized: list[Attribute] = []
        for attr in attributes:
            if isinstance(attr, Attribute):
                normalized.append(attr)
            elif isinstance(attr, tuple):
                normalized.append(Attribute(attr[0], attr[1]))
            else:
                normalized.append(Attribute(attr))
        names = [a.name for a in normalized]
        if len(set(names)) != len(names):
            raise SchemaError(f"relation {name!r}: duplicate attribute names")
        key_tuple = tuple(key)
        if not key_tuple:
            raise SchemaError(f"relation {name!r}: key must be non-empty")
        for k in key_tuple:
            if k not in names:
                raise SchemaError(f"relation {name!r}: key attribute {k!r} not in attributes")
        if len(set(key_tuple)) != len(key_tuple):
            raise SchemaError(f"relation {name!r}: key attributes must be distinct")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", tuple(normalized))
        object.__setattr__(self, "key", key_tuple)
        object.__setattr__(
            self, "_positions", {a.name: i for i, a in enumerate(normalized)}
        )

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    def index_of(self, attribute: str) -> int:
        """The position of ``attribute`` in the value tuple (O(1))."""
        try:
            return self._positions[attribute]
        except KeyError:
            raise UnknownAttributeError(self.name, attribute) from None

    def attribute(self, name: str) -> Attribute:
        return self.attributes[self.index_of(name)]

    def has_attribute(self, name: str) -> bool:
        return name in self._positions

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def __str__(self) -> str:  # pragma: no cover - trivial
        cols = ", ".join(a.name for a in self.attributes)
        return f"{self.name}({cols})"


class Schema:
    """A database schema: relation schemas plus foreign-key constraints."""

    def __init__(
        self,
        relations: Iterable[RelationSchema],
        foreign_keys: Iterable[ForeignKey] = (),
    ):
        self._relations: dict[str, RelationSchema] = {}
        for rel in relations:
            if rel.name in self._relations:
                raise SchemaError(f"duplicate relation name {rel.name!r}")
            self._relations[rel.name] = rel
        self._foreign_keys: list[ForeignKey] = []
        for fk in foreign_keys:
            self.add_foreign_key(fk)

    # -- construction -----------------------------------------------------

    def add_foreign_key(self, fk: ForeignKey) -> None:
        """Add a foreign key, validating it against the relation schemas."""
        if fk.source not in self._relations:
            raise UnknownRelationError(fk.source)
        if fk.target not in self._relations:
            raise UnknownRelationError(fk.target)
        source_rel = self._relations[fk.source]
        target_rel = self._relations[fk.target]
        for attr in fk.source_attrs:
            if not source_rel.has_attribute(attr):
                raise UnknownAttributeError(fk.source, attr)
        for attr in fk.target_attrs:
            if not target_rel.has_attribute(attr):
                raise UnknownAttributeError(fk.target, attr)
        if set(fk.target_attrs) != set(target_rel.key):
            raise SchemaError(
                f"foreign key {fk.name}: target attributes must equal key({fk.target})"
            )
        self._foreign_keys.append(fk)

    # -- lookup ------------------------------------------------------------

    @property
    def relations(self) -> tuple[RelationSchema, ...]:
        return tuple(self._relations.values())

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations.keys())

    @property
    def foreign_keys(self) -> tuple[ForeignKey, ...]:
        return tuple(self._foreign_keys)

    def relation(self, name: str) -> RelationSchema:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def qualified(self, relation: str, attribute: str) -> str:
        """The paper-style qualified attribute name ``R.A``."""
        self.relation(relation).attribute(attribute)
        return f"{relation}.{attribute}"

    # -- foreign-key helpers ----------------------------------------------

    def foreign_keys_from(self, relation: str) -> tuple[ForeignKey, ...]:
        """All FKs whose *source* (referencing side) is ``relation``."""
        return tuple(fk for fk in self._foreign_keys if fk.source == relation)

    def foreign_keys_to(self, relation: str) -> tuple[ForeignKey, ...]:
        """All FKs whose *target* (referenced side) is ``relation``."""
        return tuple(fk for fk in self._foreign_keys if fk.target == relation)

    def fk_attributes(self, relation: str) -> frozenset[str]:
        """Attributes of ``relation`` involved in any FK (either side).

        FoRWaRD only models walk destinations on attributes *not* involved in
        foreign keys (the set ``T(R, ℓmax)`` of Section V-C); this helper
        identifies which attributes to exclude.
        """
        involved: set[str] = set()
        for fk in self._foreign_keys:
            if fk.source == relation:
                involved.update(fk.source_attrs)
            if fk.target == relation:
                involved.update(fk.target_attrs)
        return frozenset(involved)

    def non_fk_attributes(self, relation: str) -> tuple[Attribute, ...]:
        """Attributes of ``relation`` not involved in any foreign key."""
        involved = self.fk_attributes(relation)
        return tuple(a for a in self.relation(relation).attributes if a.name not in involved)

    def attribute_type(self, relation: str, attribute: str) -> AttributeType:
        return self.relation(relation).attribute(attribute).type

    # -- misc ----------------------------------------------------------------

    def summary(self) -> Mapping[str, int]:
        """Structure counts in the style of Table I (per schema, not data)."""
        return {
            "relations": len(self._relations),
            "attributes": sum(r.arity for r in self._relations.values()),
            "foreign_keys": len(self._foreign_keys),
        }

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        lines = [str(rel) for rel in self._relations.values()]
        lines += [f"  FK {fk}" for fk in self._foreign_keys]
        return "\n".join(lines)

"""Standalone validation of facts and databases against their schema."""

from __future__ import annotations

from typing import Iterable

from repro.db.database import Database, Fact
from repro.db.errors import KeyViolation
from repro.db.schema import Schema


def validate_fact(schema: Schema, fact: Fact) -> list[str]:
    """Return a list of problems with a single fact (empty when valid)."""
    problems: list[str] = []
    if not schema.has_relation(fact.relation):
        return [f"unknown relation {fact.relation!r}"]
    rel = schema.relation(fact.relation)
    if len(fact.values) != rel.arity:
        problems.append(
            f"{fact.relation}: expected {rel.arity} values, got {len(fact.values)}"
        )
        return problems
    for attr in rel.key:
        if fact[attr] is None:
            problems.append(f"{fact}: key attribute {attr!r} is null")
    return problems


def validate_database(db: Database) -> list[str]:
    """Return all key and foreign-key problems in the database.

    Key uniqueness is normally enforced at insertion time; this function
    re-checks it (useful after manual index manipulation in tests) and adds
    referential-integrity problems from :meth:`Database.check_foreign_keys`.
    """
    problems: list[str] = []
    for relation in db.relations:
        seen: dict[tuple, Fact] = {}
        for fact in db.facts(relation):
            problems.extend(validate_fact(db.schema, fact))
            key = fact.key_values()
            if key in seen:
                problems.append(
                    f"{relation}: duplicate key {key!r} ({seen[key].fact_id}, {fact.fact_id})"
                )
            else:
                seen[key] = fact
    problems.extend(db.check_foreign_keys())
    return problems


def assert_valid(db: Database) -> None:
    """Raise :class:`KeyViolation` with all problems if the database is invalid."""
    problems = validate_database(db)
    if problems:
        raise KeyViolation("; ".join(problems[:10]))

"""Facts and databases.

A :class:`Fact` is an occurrence of a tuple in a relation (``R(a1, ..., ak)``
in the paper's notation).  A :class:`Database` is a finite set of facts over
a :class:`~repro.db.schema.Schema` that satisfies the key and foreign-key
constraints.  The database maintains foreign-key indexes in both directions
so that the random-walk machinery (Section V-A) can follow references
forward and backward in O(1) per step, and supports the "On Delete Cascade"
deletion used by the dynamic-experiment partitioning protocol (Section
VI-E-1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.db.errors import (
    ForeignKeyViolation,
    KeyViolation,
    UnknownAttributeError,
    UnknownRelationError,
)
from repro.db.schema import ForeignKey, RelationSchema, Schema

Value = Any
"""Attribute values are arbitrary hashable Python objects; ``None`` is ⊥."""


@dataclass(frozen=True)
class Fact:
    """A fact ``R(a1, ..., ak)``.

    ``fact_id`` is a database-unique integer identifier assigned at insertion
    time; it is *not* part of the relational data (like the ``m1``/``a3``
    labels in Figure 2 of the paper) but gives embeddings a stable handle on
    each fact independent of its values.
    """

    fact_id: int
    relation: str
    values: tuple[Value, ...]
    schema: RelationSchema = field(repr=False, compare=False, hash=False)

    def __getitem__(self, attribute: str) -> Value:
        """The value ``f[A]`` of this fact in attribute ``A``."""
        return self.values[self.schema.index_of(attribute)]

    def project(self, attributes: Sequence[str]) -> tuple[Value, ...]:
        """The tuple ``f[B1, ..., Bl]``."""
        return tuple(self[a] for a in attributes)

    def key_values(self) -> tuple[Value, ...]:
        """The values of this fact's key attributes."""
        return self.project(self.schema.key)

    def as_dict(self) -> dict[str, Value]:
        """A plain ``{attribute: value}`` mapping."""
        return dict(zip(self.schema.attribute_names, self.values))

    def has_null(self, attributes: Sequence[str] | None = None) -> bool:
        """Whether any of the given attributes (default: all) is ⊥ (None)."""
        if attributes is None:
            return any(v is None for v in self.values)
        return any(self[a] is None for a in attributes)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        vals = ", ".join("⊥" if v is None else str(v) for v in self.values)
        return f"{self.relation}({vals})"


class Database:
    """A set of facts over a schema, with constraint checking and FK indexes.

    Parameters
    ----------
    schema:
        The database schema (relations, keys, foreign keys).
    validate:
        When true (the default), every insertion checks key uniqueness and,
        on demand via :meth:`check_foreign_keys`, referential integrity.
    """

    def __init__(self, schema: Schema, validate: bool = True):
        self.schema = schema
        self._validate = validate
        self._facts_by_relation: dict[str, dict[int, Fact]] = {
            rel.name: {} for rel in schema
        }
        # key index: relation -> key values tuple -> fact
        self._key_index: dict[str, dict[tuple[Value, ...], Fact]] = {
            rel.name: {} for rel in schema
        }
        # forward FK index: fk.name -> source fact_id -> target fact
        self._fk_forward: dict[str, dict[int, Fact]] = {
            fk.name: {} for fk in schema.foreign_keys
        }
        # backward FK index: fk.name -> target fact_id -> set of source fact_ids
        self._fk_backward: dict[str, dict[int, set[int]]] = {
            fk.name: {} for fk in schema.foreign_keys
        }
        self._facts_by_id: dict[int, Fact] = {}
        self._next_id = 0
        # mutation counter plus a bounded changelog of (version, op, fact)
        # events; incremental consumers (the compiled walk engine) sync by
        # replaying only the events they have not seen yet
        self._version = 0
        self._changelog: deque[tuple[int, str, Fact]] = deque()
        self._changelog_capacity = 65536
        self._log_floor = 0  # version of the newest *discarded* event

    # --------------------------------------------------------------- history

    @property
    def version(self) -> int:
        """Monotonic mutation counter (bumped by insert/delete/update)."""
        return self._version

    def _log_mutation(self, op: str, fact: Fact) -> None:
        self._version += 1
        self._changelog.append((self._version, op, fact))
        if len(self._changelog) > self._changelog_capacity:
            self._log_floor = self._changelog.popleft()[0]

    def changes_since(self, version: int) -> list[tuple[int, str, Fact]] | None:
        """Ordered ``(version, op, fact)`` events newer than ``version``.

        ``op`` is ``"insert"``, ``"delete"`` or ``"update"`` (the fact
        carries the post-update values).  Returns ``None`` when the
        requested window has been truncated from the bounded changelog —
        consumers must then fall back to a full resync.
        """
        if version >= self._version:
            return []
        if version < self._log_floor:
            return None
        # versions are consecutive: the first retained event is _log_floor+1
        return list(islice(self._changelog, version - self._log_floor, None))

    # ------------------------------------------------------------------ size

    def __len__(self) -> int:
        return len(self._facts_by_id)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts_by_id.values())

    def __contains__(self, fact: Fact) -> bool:
        return fact.fact_id in self._facts_by_id

    @property
    def relations(self) -> tuple[str, ...]:
        return self.schema.relation_names

    def facts(self, relation: str | None = None) -> tuple[Fact, ...]:
        """All facts, or the restriction ``R(D)`` when ``relation`` is given."""
        if relation is None:
            return tuple(self._facts_by_id.values())
        if relation not in self._facts_by_relation:
            raise UnknownRelationError(relation)
        return tuple(self._facts_by_relation[relation].values())

    def fact(self, fact_id: int) -> Fact:
        return self._facts_by_id[fact_id]

    def num_facts(self, relation: str | None = None) -> int:
        if relation is None:
            return len(self._facts_by_id)
        if relation not in self._facts_by_relation:
            raise UnknownRelationError(relation)
        return len(self._facts_by_relation[relation])

    def active_domain(self, relation: str, attribute: str) -> set[Value]:
        """``adom(A)``: non-null values occurring for ``attribute`` in ``relation``."""
        self.schema.relation(relation).attribute(attribute)
        return {
            f[attribute]
            for f in self._facts_by_relation[relation].values()
            if f[attribute] is not None
        }

    # ------------------------------------------------------------- insertion

    def insert(self, relation: str, values: Mapping[str, Value] | Sequence[Value]) -> Fact:
        """Insert a fact given as a mapping or a positional value sequence.

        Returns the created :class:`Fact`.  Raises :class:`KeyViolation` if
        the key is null or duplicates an existing fact's key.  Foreign keys
        are *not* checked eagerly (new facts may arrive before the facts they
        reference within a batch); call :meth:`check_foreign_keys` to verify
        referential integrity of the whole database.
        """
        rel_schema = self.schema.relation(relation)
        if isinstance(values, Mapping):
            for name in values:
                if not rel_schema.has_attribute(name):
                    raise UnknownAttributeError(relation, name)
            row = tuple(values.get(a, None) for a in rel_schema.attribute_names)
        else:
            row = tuple(values)
            if len(row) != rel_schema.arity:
                raise ValueError(
                    f"relation {relation!r} has arity {rel_schema.arity}, "
                    f"got {len(row)} values"
                )
        fact_id = self._next_id
        self._next_id += 1
        fact = Fact(fact_id, relation, row, rel_schema)
        if self._validate:
            self._check_key(fact)
        self._index_fact(fact)
        self._log_mutation("insert", fact)
        return fact

    def insert_many(
        self, relation: str, rows: Iterable[Mapping[str, Value] | Sequence[Value]]
    ) -> list[Fact]:
        """Insert several facts into one relation; returns them in order."""
        return [self.insert(relation, row) for row in rows]

    def _check_key(self, fact: Fact) -> None:
        key_vals = fact.key_values()
        if any(v is None for v in key_vals):
            raise KeyViolation(f"{fact}: key attributes must be non-null")
        if key_vals in self._key_index[fact.relation]:
            raise KeyViolation(
                f"{fact}: duplicate key {key_vals!r} in relation {fact.relation!r}"
            )

    def _index_fact(self, fact: Fact) -> None:
        self._facts_by_id[fact.fact_id] = fact
        self._facts_by_relation[fact.relation][fact.fact_id] = fact
        self._key_index[fact.relation][fact.key_values()] = fact
        # connect FKs where this fact is the source
        for fk in self.schema.foreign_keys_from(fact.relation):
            ref = fact.project(fk.source_attrs)
            if any(v is None for v in ref):
                continue
            target = self._key_index[fk.target].get(ref)
            if target is not None:
                self._link(fk, fact, target)
        # connect FKs where this fact is the target (dangling references may
        # have been inserted before their referenced fact)
        for fk in self.schema.foreign_keys_to(fact.relation):
            key_vals = fact.project(fk.target_attrs)
            for source in self._facts_by_relation[fk.source].values():
                if source.fact_id in self._fk_forward[fk.name]:
                    continue
                ref = source.project(fk.source_attrs)
                if any(v is None for v in ref):
                    continue
                if ref == key_vals:
                    self._link(fk, source, fact)

    def _link(self, fk: ForeignKey, source: Fact, target: Fact) -> None:
        self._fk_forward[fk.name][source.fact_id] = target
        self._fk_backward[fk.name].setdefault(target.fact_id, set()).add(source.fact_id)

    def _unlink_source(self, fk: ForeignKey, source: Fact) -> None:
        target = self._fk_forward[fk.name].pop(source.fact_id, None)
        if target is not None:
            referrers = self._fk_backward[fk.name].get(target.fact_id)
            if referrers is not None:
                referrers.discard(source.fact_id)
                if not referrers:
                    del self._fk_backward[fk.name][target.fact_id]

    # -------------------------------------------------------------- deletion

    def delete(self, fact: Fact | int) -> None:
        """Delete a single fact (no cascade).  Dangling references may remain."""
        fact = self._resolve(fact)
        for fk in self.schema.foreign_keys_from(fact.relation):
            self._unlink_source(fk, fact)
        for fk in self.schema.foreign_keys_to(fact.relation):
            referrer_ids = self._fk_backward[fk.name].pop(fact.fact_id, set())
            for rid in referrer_ids:
                self._fk_forward[fk.name].pop(rid, None)
        del self._facts_by_id[fact.fact_id]
        del self._facts_by_relation[fact.relation][fact.fact_id]
        del self._key_index[fact.relation][fact.key_values()]
        self._log_mutation("delete", fact)

    def delete_cascade(self, fact: Fact | int) -> list[Fact]:
        """Delete a fact "On Delete Cascade" style (Section VI-E-1).

        Two rules apply, matching the paper's partitioning protocol:

        * facts *referencing* the deleted fact are deleted too (standard SQL
          ``ON DELETE CASCADE`` semantics), recursively;
        * a fact *referenced by* a deleted fact is removed when it is no
          longer referenced by any surviving fact (it became orphaned) —
          matching Example 6.1, where deleting the collaboration ``c1``
          removes the movie ``m4`` and actor ``a2`` but keeps ``a1`` because
          it is still referenced by ``c4``.

        Returns the list of all deleted facts (the seed fact first), in
        deletion order.
        """
        seed = self._resolve(fact)
        deleted: list[Fact] = []
        frontier = [seed]
        while frontier:
            current = frontier.pop()
            if current.fact_id not in self._facts_by_id:
                continue
            # remember neighbours before unlinking destroys the indexes
            referenced = [
                self._fk_forward[fk.name][current.fact_id]
                for fk in self.schema.foreign_keys_from(current.relation)
                if current.fact_id in self._fk_forward[fk.name]
            ]
            referencing = list(self.referencing_facts(current))
            self.delete(current)
            deleted.append(current)
            for child in referencing:
                if child.fact_id in self._facts_by_id:
                    frontier.append(child)
            for parent in referenced:
                if parent.fact_id not in self._facts_by_id:
                    continue
                if not self.referencing_facts(parent):
                    frontier.append(parent)
        return deleted

    # --------------------------------------------------------------- update

    def update(self, fact: Fact | int, changes: Mapping[str, Value]) -> Fact:
        """Update attribute values of an existing fact in place.

        The fact keeps its ``fact_id`` (embeddings keyed on it stay
        attached); a new :class:`Fact` object with the merged values replaces
        the old one.  Key and foreign-key indexes are maintained: forward
        references of the updated fact are re-resolved, and — when key
        attributes change — facts referencing the old key dangle (the same
        convention as :meth:`delete`) while facts whose references match the
        new key are linked up.  A no-op update (identical values) returns
        the current fact without bumping the mutation counter.
        """
        old = self._resolve(fact)
        rel_schema = old.schema
        for name in changes:
            if not rel_schema.has_attribute(name):
                raise UnknownAttributeError(old.relation, name)
        values = tuple(
            changes[name] if name in changes else value
            for name, value in zip(rel_schema.attribute_names, old.values)
        )
        if values == old.values:
            return old
        new = Fact(old.fact_id, old.relation, values, rel_schema)
        old_key = old.key_values()
        new_key = new.key_values()
        if self._validate and new_key != old_key:
            if any(v is None for v in new_key):
                raise KeyViolation(f"{new}: key attributes must be non-null")
            holder = self._key_index[old.relation].get(new_key)
            if holder is not None and holder.fact_id != old.fact_id:
                raise KeyViolation(
                    f"{new}: duplicate key {new_key!r} in relation {old.relation!r}"
                )
        # ---- unhook the old fact
        del self._key_index[old.relation][old_key]
        for fk in self.schema.foreign_keys_from(old.relation):
            self._unlink_source(fk, old)
        key_changed = new_key != old_key
        for fk in self.schema.foreign_keys_to(old.relation):
            if key_changed:
                # sources that referenced the old key now dangle
                for rid in self._fk_backward[fk.name].pop(old.fact_id, set()):
                    self._fk_forward[fk.name].pop(rid, None)
            else:
                # same key: keep the links but swap in the new fact object
                for rid in self._fk_backward[fk.name].get(old.fact_id, ()):
                    self._fk_forward[fk.name][rid] = new
        # ---- install the new fact
        self._facts_by_id[new.fact_id] = new
        self._facts_by_relation[new.relation][new.fact_id] = new
        self._key_index[new.relation][new_key] = new
        for fk in self.schema.foreign_keys_from(new.relation):
            ref = new.project(fk.source_attrs)
            if any(v is None for v in ref):
                continue
            target = self._key_index[fk.target].get(ref)
            if target is not None:
                self._link(fk, new, target)
        if key_changed:
            # sources whose (possibly dangling) references match the new key
            for fk in self.schema.foreign_keys_to(new.relation):
                forward = self._fk_forward[fk.name]
                for source in self._facts_by_relation[fk.source].values():
                    if source.fact_id in forward:
                        continue
                    ref = source.project(fk.source_attrs)
                    if any(v is None for v in ref):
                        continue
                    if ref == new_key:
                        self._link(fk, source, new)
        self._log_mutation("update", new)
        return new

    def _resolve(self, fact: Fact | int) -> Fact:
        if isinstance(fact, Fact):
            fact_id = fact.fact_id
        else:
            fact_id = fact
        try:
            return self._facts_by_id[fact_id]
        except KeyError:
            raise KeyError(f"fact id {fact_id} not in database") from None

    # ---------------------------------------------------------- FK traversal

    def referenced_fact(self, fact: Fact, fk: ForeignKey) -> Fact | None:
        """The unique fact that ``fact`` references via ``fk`` (or None)."""
        return self._fk_forward[fk.name].get(fact.fact_id)

    def referencing_facts(self, fact: Fact, fk: ForeignKey | None = None) -> tuple[Fact, ...]:
        """All facts that reference ``fact`` (via ``fk``, or via any FK)."""
        fks = [fk] if fk is not None else list(self.schema.foreign_keys_to(fact.relation))
        result: list[Fact] = []
        for constraint in fks:
            for fid in self._fk_backward[constraint.name].get(fact.fact_id, ()):  # noqa: B020
                result.append(self._facts_by_id[fid])
        return tuple(result)

    def lookup_by_key(self, relation: str, key_values: Sequence[Value]) -> Fact | None:
        """Find the fact of ``relation`` with the given key values, if any."""
        if relation not in self._key_index:
            raise UnknownRelationError(relation)
        return self._key_index[relation].get(tuple(key_values))

    def select(
        self, relation: str, predicate: Callable[[Fact], bool] | None = None
    ) -> tuple[Fact, ...]:
        """Facts of ``relation`` satisfying ``predicate`` (all, if None)."""
        facts = self.facts(relation)
        if predicate is None:
            return facts
        return tuple(f for f in facts if predicate(f))

    def matching_facts(
        self, relation: str, attributes: Sequence[str], values: Sequence[Value]
    ) -> tuple[Fact, ...]:
        """Facts ``g`` of ``relation`` with ``g[attributes] == values``.

        This is the transition set ``{g ∈ Rk | g[Bk] = f[Ak-1]}`` used by
        random walks; it is answered from the FK indexes when the attributes
        form a key and by a scan otherwise.
        """
        attrs = tuple(attributes)
        vals = tuple(values)
        rel_schema = self.schema.relation(relation)
        if attrs == tuple(rel_schema.key):
            hit = self._key_index[relation].get(vals)
            return (hit,) if hit is not None else ()
        return tuple(
            f for f in self._facts_by_relation[relation].values() if f.project(attrs) == vals
        )

    # --------------------------------------------------------------- checks

    def check_foreign_keys(self) -> list[str]:
        """Return a list of foreign-key violations (empty when consistent)."""
        problems: list[str] = []
        for fk in self.schema.foreign_keys:
            for fact in self._facts_by_relation[fk.source].values():
                ref = fact.project(fk.source_attrs)
                if any(v is None for v in ref):
                    continue
                if self._key_index[fk.target].get(ref) is None:
                    problems.append(f"{fact}: dangling reference via {fk.name}")
        return problems

    def require_consistent(self) -> None:
        """Raise :class:`ForeignKeyViolation` if any FK is violated."""
        problems = self.check_foreign_keys()
        if problems:
            raise ForeignKeyViolation("; ".join(problems[:5]))

    # ----------------------------------------------------------------- misc

    def copy(self) -> "Database":
        """A deep structural copy (facts keep their ids)."""
        clone = Database(self.schema, validate=self._validate)
        for fact in self._facts_by_id.values():
            new_fact = Fact(fact.fact_id, fact.relation, fact.values, fact.schema)
            clone._index_fact(new_fact)
        clone._next_id = self._next_id
        return clone

    def mask_attribute(self, relation: str, attribute: str) -> "Database":
        """A copy of the database with one attribute nulled out in a relation.

        Fact ids are preserved.  The evaluation harness uses this to hide the
        prediction attribute from the embedding algorithms (the paper's
        protocol: the embedders never see the predicted column).
        """
        self.schema.relation(relation).attribute(attribute)
        if attribute in self.schema.relation(relation).key:
            raise ValueError("cannot mask a key attribute")
        clone = Database(self.schema, validate=self._validate)
        for fact in self._facts_by_id.values():
            if fact.relation == relation:
                values = tuple(
                    None if name == attribute else value
                    for name, value in zip(fact.schema.attribute_names, fact.values)
                )
            else:
                values = fact.values
            clone._index_fact(Fact(fact.fact_id, fact.relation, values, fact.schema))
        clone._next_id = self._next_id
        return clone

    def reinsert(self, fact: Fact) -> Fact:
        """Re-insert a previously deleted fact, keeping its original id.

        The id allocator is advanced past the re-inserted id, so databases
        restored from a persisted fact stream (service restarts, the JSON
        format with ``include_fact_ids``) can keep inserting fresh facts
        without colliding with restored ids.
        """
        if fact.fact_id in self._facts_by_id:
            raise KeyViolation(f"fact id {fact.fact_id} already present")
        if self._validate:
            self._check_key(fact)
        self._index_fact(fact)
        self._next_id = max(self._next_id, fact.fact_id + 1)
        self._log_mutation("insert", fact)
        return fact

    def structure_summary(self) -> dict[str, int]:
        """Counts in the style of Table I (relations, tuples, attributes)."""
        return {
            "relations": len(self.schema),
            "tuples": len(self),
            "attributes": sum(r.arity for r in self.schema),
        }

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = []
        for rel in self.schema.relation_names:
            parts.append(f"{rel}: {self.num_facts(rel)} facts")
        return "Database(" + ", ".join(parts) + ")"

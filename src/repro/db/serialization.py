"""Persistence of schemas and databases (JSON documents and CSV directories).

The JSON format stores the schema and all facts in one document and
round-trips exactly (including nulls and numeric types).  The CSV-directory
format writes one ``<relation>.csv`` per relation plus a ``schema.json`` and
is convenient for inspecting synthetic datasets or importing external ones.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Mapping

from repro.db.database import Database, Fact
from repro.db.schema import Attribute, AttributeType, ForeignKey, RelationSchema, Schema

_NULL_TOKEN = "\\N"


# --------------------------------------------------------------------- schema


def schema_to_dict(schema: Schema) -> dict[str, Any]:
    return {
        "relations": [
            {
                "name": rel.name,
                "attributes": [
                    {"name": a.name, "type": a.type.value} for a in rel.attributes
                ],
                "key": list(rel.key),
            }
            for rel in schema
        ],
        "foreign_keys": [
            {
                "source": fk.source,
                "source_attrs": list(fk.source_attrs),
                "target": fk.target,
                "target_attrs": list(fk.target_attrs),
            }
            for fk in schema.foreign_keys
        ],
    }


def schema_from_dict(data: Mapping[str, Any]) -> Schema:
    relations = [
        RelationSchema(
            rel["name"],
            [Attribute(a["name"], AttributeType(a["type"])) for a in rel["attributes"]],
            rel["key"],
        )
        for rel in data["relations"]
    ]
    foreign_keys = [
        ForeignKey(
            fk["source"], tuple(fk["source_attrs"]), fk["target"], tuple(fk["target_attrs"])
        )
        for fk in data.get("foreign_keys", [])
    ]
    return Schema(relations, foreign_keys)


# ------------------------------------------------------------------- database


def database_to_dict(db: Database, include_fact_ids: bool = False) -> dict[str, Any]:
    """A JSON-safe document of schema and facts.

    With ``include_fact_ids`` every fact is stored together with its
    ``fact_id``, and :func:`database_from_dict` restores those ids exactly.
    Stable ids are what lets state persisted *about* the database — tuple
    embeddings, trained models, the serving layer's versioned store, all
    keyed by ``fact_id`` — rejoin the right facts after a process restart.
    """
    if include_fact_ids:
        facts: dict[str, Any] = {
            relation: [{"fact_id": f.fact_id, "values": list(f.values)} for f in db.facts(relation)]
            for relation in db.relations
        }
    else:
        facts = {
            relation: [list(f.values) for f in db.facts(relation)]
            for relation in db.relations
        }
    return {"schema": schema_to_dict(db.schema), "facts": facts}


def database_from_dict(data: Mapping[str, Any]) -> Database:
    schema = schema_from_dict(data["schema"])
    db = Database(schema)
    for relation, rows in data.get("facts", {}).items():
        rel_schema = schema.relation(relation)
        for row in rows:
            if isinstance(row, Mapping):  # fact-id-preserving entry
                values = tuple(None if v is None else v for v in row["values"])
                db.reinsert(Fact(int(row["fact_id"]), relation, values, rel_schema))
            else:
                db.insert(relation, [None if v is None else v for v in row])
    return db


def save_database_json(db: Database, path: str | Path, include_fact_ids: bool = False) -> None:
    Path(path).write_text(
        json.dumps(database_to_dict(db, include_fact_ids=include_fact_ids), indent=2, default=str)
    )


def load_database_json(path: str | Path) -> Database:
    return database_from_dict(json.loads(Path(path).read_text()))


# ---------------------------------------------------------------- CSV support


def _encode_csv_value(value: Any) -> str:
    if value is None:
        return _NULL_TOKEN
    return str(value)


def _decode_csv_value(text: str, attr_type: AttributeType) -> Any:
    if text == _NULL_TOKEN:
        return None
    if attr_type is AttributeType.NUMERIC:
        try:
            as_float = float(text)
        except ValueError:
            return text
        return int(as_float) if as_float.is_integer() else as_float
    return text


def save_database_csv_dir(db: Database, directory: str | Path) -> None:
    """Write one CSV per relation and a ``schema.json`` into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "schema.json").write_text(json.dumps(schema_to_dict(db.schema), indent=2))
    for relation in db.relations:
        rel_schema = db.schema.relation(relation)
        with open(directory / f"{relation}.csv", "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(rel_schema.attribute_names)
            for fact in db.facts(relation):
                writer.writerow([_encode_csv_value(v) for v in fact.values])


def load_database_csv_dir(directory: str | Path) -> Database:
    """Load a database previously written by :func:`save_database_csv_dir`."""
    directory = Path(directory)
    schema = schema_from_dict(json.loads((directory / "schema.json").read_text()))
    db = Database(schema)
    for rel_schema in schema:
        csv_path = directory / f"{rel_schema.name}.csv"
        if not csv_path.exists():
            continue
        with open(csv_path, newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader)
            types = [rel_schema.attribute(name).type for name in header]
            for row in reader:
                values = {
                    name: _decode_csv_value(cell, attr_type)
                    for name, cell, attr_type in zip(header, row, types)
                }
                db.insert(rel_schema.name, values)
    return db

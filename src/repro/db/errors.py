"""Exception hierarchy for the relational substrate."""


class SchemaError(ValueError):
    """Raised when a schema definition is internally inconsistent."""


class UnknownRelationError(KeyError):
    """Raised when a relation name is not part of the schema."""

    def __init__(self, relation: str):
        super().__init__(relation)
        self.relation = relation

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"unknown relation {self.relation!r}"


class UnknownAttributeError(KeyError):
    """Raised when an attribute name is not part of a relation schema."""

    def __init__(self, relation: str, attribute: str):
        super().__init__((relation, attribute))
        self.relation = relation
        self.attribute = attribute

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"relation {self.relation!r} has no attribute {self.attribute!r}"


class ConstraintViolation(ValueError):
    """Base class for key and foreign-key constraint violations."""


class KeyViolation(ConstraintViolation):
    """Raised when two facts share the same key, or a key contains a null."""


class ForeignKeyViolation(ConstraintViolation):
    """Raised when a referencing tuple has no referenced tuple."""

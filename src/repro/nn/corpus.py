"""Turning random walks into skip-gram training pairs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


@dataclass
class WalkCorpus:
    """A collection of walks (sequences of node indices) plus node statistics."""

    walks: list[list[int]]
    num_nodes: int

    def node_counts(self) -> np.ndarray:
        """Occurrence count of every node across all walks."""
        counts = np.zeros(self.num_nodes, dtype=np.float64)
        for walk in self.walks:
            for node in walk:
                counts[node] += 1.0
        return counts

    def __len__(self) -> int:
        return len(self.walks)


def build_training_pairs(
    walks: Iterable[Sequence[int]],
    window_size: int,
    restrict_centers_to: set[int] | None = None,
) -> np.ndarray:
    """All (center, context) pairs within ``window_size`` of each other.

    When ``restrict_centers_to`` is given, only pairs whose *center* node is
    in the set are emitted.  The dynamic Node2Vec extension uses this to
    train only on pairs centred at newly inserted nodes, which combined with
    gradient freezing leaves old embeddings untouched.
    """
    pairs: list[tuple[int, int]] = []
    for walk in walks:
        length = len(walk)
        for i, center in enumerate(walk):
            if restrict_centers_to is not None and center not in restrict_centers_to:
                continue
            lower = max(0, i - window_size)
            upper = min(length, i + window_size + 1)
            for j in range(lower, upper):
                if j == i:
                    continue
                pairs.append((center, walk[j]))
    if not pairs:
        return np.zeros((0, 2), dtype=np.int64)
    return np.asarray(pairs, dtype=np.int64)

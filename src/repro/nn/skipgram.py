"""Skip-gram with negative sampling (SGNS) over graph nodes.

The objective for a (center ``u``, context ``v``) pair with negatives
``n_1..n_K`` is::

    L = -log σ(x_u · y_v) - Σ_k log σ(-x_u · y_{n_k})

where ``x`` are input (center) embeddings and ``y`` output (context)
embeddings.  The gradients are the standard word2vec expressions and are
applied with mini-batch SGD/Adam.  A set of *frozen* node indices can be
supplied; gradients for those rows are zeroed before the update, which is
exactly how the dynamic Node2Vec adaptation of Section IV-A keeps existing
tuple embeddings stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.nn.negative_sampling import UnigramNegativeSampler
from repro.optim.optimizers import Adam, Optimizer
from repro.utils.rng import ensure_rng


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Clip to keep exp() in range; 30 is far beyond float64 sigmoid saturation.
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


@dataclass
class SkipGramConfig:
    """Hyper-parameters of the SGNS model (paper Table II, Node2Vec block)."""

    dimension: int = 100
    negatives_per_positive: int = 20
    batch_size: int = 40_000
    epochs: int = 10
    learning_rate: float = 0.025
    init_scale: float = 0.1


class SkipGramModel:
    """Trainable SGNS embeddings over ``num_nodes`` graph nodes."""

    def __init__(
        self,
        num_nodes: int,
        config: SkipGramConfig | None = None,
        rng: int | np.random.Generator | None = None,
        optimizer: Optimizer | None = None,
    ):
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.config = config or SkipGramConfig()
        self.rng = ensure_rng(rng)
        dim = self.config.dimension
        scale = self.config.init_scale
        self.input_embeddings = self.rng.normal(0.0, scale, size=(num_nodes, dim))
        self.output_embeddings = self.rng.normal(0.0, scale, size=(num_nodes, dim))
        self.optimizer = optimizer or Adam(self.config.learning_rate)
        self.frozen: set[int] = set()

    # ------------------------------------------------------------- topology

    @property
    def num_nodes(self) -> int:
        return self.input_embeddings.shape[0]

    def add_nodes(self, count: int) -> np.ndarray:
        """Append ``count`` new randomly initialised nodes; returns their indices."""
        if count <= 0:
            return np.zeros(0, dtype=np.int64)
        dim = self.config.dimension
        scale = self.config.init_scale
        new_in = self.rng.normal(0.0, scale, size=(count, dim))
        new_out = self.rng.normal(0.0, scale, size=(count, dim))
        start = self.num_nodes
        self.input_embeddings = np.vstack([self.input_embeddings, new_in])
        self.output_embeddings = np.vstack([self.output_embeddings, new_out])
        # Optimizer state shapes no longer match; restart it (the paper's
        # continuation trains only the new rows, so losing old momenta is fine).
        self.optimizer.reset()
        return np.arange(start, start + count, dtype=np.int64)

    def freeze(self, nodes: Iterable[int]) -> None:
        """Mark nodes whose embeddings must not change during training."""
        self.frozen.update(int(n) for n in nodes)

    def unfreeze_all(self) -> None:
        self.frozen.clear()

    # -------------------------------------------------------------- training

    def loss(self, centers: np.ndarray, contexts: np.ndarray, negatives: np.ndarray) -> float:
        """Mean SGNS loss of a batch (used by tests and for monitoring)."""
        x = self.input_embeddings[centers]
        y_pos = self.output_embeddings[contexts]
        y_neg = self.output_embeddings[negatives]
        pos_score = np.sum(x * y_pos, axis=1)
        neg_score = np.einsum("bd,bkd->bk", x, y_neg)
        loss = -np.log(_sigmoid(pos_score) + 1e-12).sum()
        loss -= np.log(_sigmoid(-neg_score) + 1e-12).sum()
        return float(loss / max(len(centers), 1))

    def _batch_gradients(
        self, centers: np.ndarray, contexts: np.ndarray, negatives: np.ndarray
    ) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
        """Accumulated gradients of one batch, as (grads, row-index) dicts."""
        x = self.input_embeddings[centers]  # (b, d)
        y_pos = self.output_embeddings[contexts]  # (b, d)
        y_neg = self.output_embeddings[negatives]  # (b, k, d)

        pos_score = np.sum(x * y_pos, axis=1)  # (b,)
        neg_score = np.einsum("bd,bkd->bk", x, y_neg)  # (b, k)
        pos_sig = _sigmoid(pos_score)
        neg_sig = _sigmoid(neg_score)

        batch = max(len(centers), 1)
        grad_x = ((pos_sig - 1.0)[:, None] * y_pos + np.einsum("bk,bkd->bd", neg_sig, y_neg)) / batch
        grad_y_pos = (pos_sig - 1.0)[:, None] * x / batch
        grad_y_neg = neg_sig[:, :, None] * x[:, None, :] / batch

        # Scatter-accumulate into unique rows so the optimizer sees one
        # gradient per touched row.
        input_rows, input_inverse = np.unique(centers, return_inverse=True)
        grad_input = np.zeros((input_rows.size, x.shape[1]))
        np.add.at(grad_input, input_inverse, grad_x)

        out_indices = np.concatenate([contexts, negatives.reshape(-1)])
        out_grads = np.concatenate([grad_y_pos, grad_y_neg.reshape(-1, x.shape[1])])
        output_rows, output_inverse = np.unique(out_indices, return_inverse=True)
        grad_output = np.zeros((output_rows.size, x.shape[1]))
        np.add.at(grad_output, output_inverse, out_grads)

        # Zero the gradients of frozen rows (stability constraint).
        if self.frozen:
            frozen_mask_in = np.isin(input_rows, list(self.frozen))
            grad_input[frozen_mask_in] = 0.0
            frozen_mask_out = np.isin(output_rows, list(self.frozen))
            grad_output[frozen_mask_out] = 0.0

        grads = {"input": grad_input, "output": grad_output}
        rows = {"input": input_rows, "output": output_rows}
        return grads, rows

    def train_pairs(
        self,
        pairs: np.ndarray,
        sampler: UnigramNegativeSampler,
        epochs: int | None = None,
        batch_size: int | None = None,
        shuffle: bool = True,
    ) -> list[float]:
        """Train on (center, context) pairs; returns the mean loss per epoch."""
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.size == 0:
            return []
        epochs = epochs if epochs is not None else self.config.epochs
        batch_size = batch_size if batch_size is not None else self.config.batch_size
        negatives_k = self.config.negatives_per_positive
        params = {"input": self.input_embeddings, "output": self.output_embeddings}
        history: list[float] = []
        for _ in range(epochs):
            order = self.rng.permutation(len(pairs)) if shuffle else np.arange(len(pairs))
            epoch_loss = 0.0
            num_batches = 0
            for start in range(0, len(pairs), batch_size):
                batch = pairs[order[start : start + batch_size]]
                centers = batch[:, 0]
                contexts = batch[:, 1]
                negatives = sampler.sample((len(batch), negatives_k))
                epoch_loss += self.loss(centers, contexts, negatives)
                num_batches += 1
                grads, rows = self._batch_gradients(centers, contexts, negatives)
                self.optimizer.update(params, grads, rows)
            history.append(epoch_loss / max(num_batches, 1))
        # Parameter dict holds references; keep attributes in sync in case the
        # optimizer ever re-binds (defensive, SGD/Adam update in place).
        self.input_embeddings = params["input"]
        self.output_embeddings = params["output"]
        return history

    # ------------------------------------------------------------ embeddings

    def embedding(self, node: int) -> np.ndarray:
        """The learned embedding of one node (the input/center vector)."""
        return self.input_embeddings[int(node)].copy()

    def embeddings(self, nodes: Sequence[int] | None = None) -> np.ndarray:
        """Embeddings of the given nodes (all nodes when None)."""
        if nodes is None:
            return self.input_embeddings.copy()
        return self.input_embeddings[np.asarray(nodes, dtype=np.int64)].copy()

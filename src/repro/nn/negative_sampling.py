"""Negative sampling for skip-gram training."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng


class UnigramNegativeSampler:
    """Draws negative context nodes from the smoothed unigram distribution.

    As in word2vec/Node2Vec, nodes are sampled proportionally to
    ``count(node) ** power`` with ``power = 0.75`` by default.
    """

    def __init__(
        self,
        counts: np.ndarray,
        power: float = 0.75,
        rng: int | np.random.Generator | None = None,
    ):
        counts = np.asarray(counts, dtype=np.float64)
        if counts.ndim != 1 or counts.size == 0:
            raise ValueError("counts must be a non-empty 1-D array")
        if np.any(counts < 0):
            raise ValueError("counts must be non-negative")
        weights = np.power(np.maximum(counts, 0.0), power)
        total = weights.sum()
        if total <= 0:
            weights = np.ones_like(weights)
            total = weights.sum()
        self.probabilities = weights / total
        self._cumulative = np.cumsum(self.probabilities)
        self.rng = ensure_rng(rng)

    @property
    def num_nodes(self) -> int:
        return self.probabilities.shape[0]

    def sample(self, size: int | tuple[int, ...]) -> np.ndarray:
        """Sample node indices with the smoothed unigram distribution."""
        draws = self.rng.random(size=size)
        return np.searchsorted(self._cumulative, draws, side="right").astype(np.int64)

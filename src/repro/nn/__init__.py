"""Neural substrate: skip-gram with negative sampling in NumPy.

This is the model behind the Node2Vec adaptation of Section IV.  It keeps
two embedding tables (input/"center" and output/"context"), trains them with
analytic gradients of the negative-sampling objective, and supports freezing
an arbitrary subset of nodes — the mechanism the paper uses to keep old
tuple embeddings stable while extending to new tuples.
"""

from repro.nn.skipgram import SkipGramModel, SkipGramConfig
from repro.nn.negative_sampling import UnigramNegativeSampler
from repro.nn.corpus import WalkCorpus, build_training_pairs

__all__ = [
    "SkipGramModel",
    "SkipGramConfig",
    "UnigramNegativeSampler",
    "WalkCorpus",
    "build_training_pairs",
]

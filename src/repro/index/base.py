"""The ``VectorIndex`` protocol and the immutable rows it searches over.

Nearest-neighbour search is lifted out of :class:`~repro.service.store.
StoreSnapshot` into small, swappable index objects.  Two pieces make the
copy-on-write versioning work:

* :class:`IndexSource` — one snapshot's arrays (vectors, relations, alive
  mask) bundled with the per-snapshot caches every index shares: the
  row-normalised matrix, the inverted alive mask and one excluded-row mask
  per relation filter.  The arrays are immutable, so each mask is computed
  once and reused by every query against that snapshot (the pre-refactor
  ``nearest`` re-derived both masks per call).
* :class:`VectorIndex` — the maintenance/search protocol.  A *maintainer*
  lives on the writer side of the store and absorbs commit deltas
  (``add``/``update``/``remove``/``rebuild``); ``snapshot(source)`` freezes
  its state into an immutable view bound to one store version, which
  readers then ``search`` concurrently.  Exact search keeps no state of its
  own, so :class:`~repro.index.exact.ExactIndex` is both maintainer and
  view; the IVF index shares centroid/posting state across versions the
  same copy-on-write way the store shares rows.

``rank_top_k`` is the one ranking routine both built-in indexes use for
their final cut.  It replicates the pre-refactor selection *bit for bit*
(``-inf`` masking through ``np.where``, ``argpartition`` of the negated
scores, stable sort of the winners), which is what lets ``ExactIndex``
serve as the recall oracle: its results are byte-identical to the old
``StoreSnapshot.nearest``.
"""

from __future__ import annotations

from typing import Iterable, Protocol, Sequence, runtime_checkable

import numpy as np


def normalize_rows(vectors: np.ndarray) -> np.ndarray:
    """Row-normalise a matrix exactly like the snapshot's cached matrix.

    Rows normalise independently (the division is element-wise), so
    normalising any subset of rows with this batched form produces bytes
    identical to gathering the same rows from the normalised full matrix —
    which keeps the IVF posting blocks' scores within an ulp of exact
    search's (the residual difference is BLAS reduction order, not values).
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    norms = np.linalg.norm(vectors, axis=1, keepdims=True)
    return vectors / np.maximum(norms, 1e-12)


def unit_query(query: np.ndarray) -> np.ndarray:
    """The query vector scaled to unit norm (zero-norm guarded, as before)."""
    query = np.asarray(query, dtype=np.float64)
    norm = float(np.linalg.norm(query))
    return query / max(norm, 1e-12)


class IndexSource:
    """One snapshot's immutable rows plus the caches every index shares.

    ``vectors`` is the ``(num_rows, dimension)`` embedding matrix,
    ``relations`` the aligned object array of relation names and ``alive``
    the tombstone mask — all read-only, exactly as the owning snapshot
    froze them.  The derived state (normalised matrix, dead mask, one
    excluded mask and candidate count per relation) is computed lazily and
    cached forever; concurrent readers may race to fill a cache slot, but
    they compute identical values, so the race is benign.
    """

    __slots__ = (
        "vectors", "relations", "alive",
        "_normalized", "_dead", "_live", "_relation_masks",
    )

    def __init__(self, vectors: np.ndarray, relations: np.ndarray, alive: np.ndarray):
        self.vectors = vectors
        self.relations = relations
        self.alive = alive
        self._normalized: np.ndarray | None = None
        self._dead: np.ndarray | None = None
        self._live: int | None = None
        self._relation_masks: dict[str, tuple[np.ndarray, int]] = {}

    @classmethod
    def from_rows(
        cls,
        vectors: np.ndarray,
        relations: Sequence[str] | None = None,
        alive: np.ndarray | None = None,
    ) -> "IndexSource":
        """Build a standalone source from raw rows (all alive by default)."""
        vectors = np.ascontiguousarray(np.asarray(vectors, dtype=np.float64))
        if vectors.ndim != 2:
            raise ValueError("vectors must be a (num_rows, dimension) matrix")
        n = vectors.shape[0]
        relations_array = np.empty(n, dtype=object)
        relations_array[:] = tuple(relations) if relations is not None else ("",) * n
        if alive is None:
            alive = np.ones(n, dtype=bool)
        alive = np.asarray(alive, dtype=bool)
        for array in (vectors, relations_array, alive):
            array.setflags(write=False)
        return cls(vectors, relations_array, alive)

    @property
    def num_rows(self) -> int:
        return self.vectors.shape[0]

    @property
    def dimension(self) -> int:
        return self.vectors.shape[1]

    def normalized(self) -> np.ndarray:
        """The row-normalised matrix (cached; bit-identical to the old one)."""
        if self._normalized is None:
            normalized = normalize_rows(self.vectors)
            normalized.setflags(write=False)
            self._normalized = normalized
        return self._normalized

    def dead(self) -> np.ndarray:
        """The inverted alive mask (cached; rows every query excludes)."""
        if self._dead is None:
            dead = ~self.alive
            dead.setflags(write=False)
            self._live = int(dead.size - np.count_nonzero(dead))
            self._dead = dead
        return self._dead

    def excluded(self, relation: str | None = None) -> tuple[np.ndarray, int]:
        """``(excluded_mask, candidate_count)`` for one relation filter.

        The mask is boolean over all rows (True = not a candidate) and the
        count is how many rows survive it; both are cached per relation so
        repeated queries pay one mask build total, not one per call.
        """
        dead = self.dead()
        if relation is None:
            return dead, int(self._live)
        cached = self._relation_masks.get(relation)
        if cached is None:
            mask = dead | (self.relations != relation)
            mask.setflags(write=False)
            cached = (mask, int(mask.size - np.count_nonzero(mask)))
            self._relation_masks[relation] = cached
        return cached


def rank_top_k(
    scores: np.ndarray,
    excluded: np.ndarray,
    exclude_rows: Iterable[int],
    candidates: int,
    k: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Bit-exact top-``k`` rows of a masked score vector, best first.

    Replicates the pre-refactor ``StoreSnapshot.nearest`` cut exactly:
    excluded rows are pushed to ``-inf`` (``np.where`` allocates the fresh
    masked copy, so the per-row ``exclude_rows`` writes never touch the
    cached mask), ``k`` is clamped to the surviving candidate count, and
    the winners of ``argpartition`` are ordered by a stable descending
    sort.  Returns ``(rows, masked_scores)``.
    """
    scores = np.where(excluded, -np.inf, scores)
    for row in exclude_rows:
        if not excluded[row]:
            candidates -= 1
        scores[row] = -np.inf
    k = min(k, candidates)
    if k <= 0:
        return np.empty(0, dtype=np.int64), scores
    top = np.argpartition(-scores, k - 1)[:k]
    top = top[np.argsort(-scores[top], kind="stable")]
    return top, scores


@runtime_checkable
class VectorIndex(Protocol):
    """Maintenance-and-search protocol every kNN index implements.

    The writer drives the left half — ``add``/``update``/``remove`` absorb
    one commit's row deltas, ``rebuild`` re-derives everything from a
    source (compaction renumbers rows, so incremental state is void) — and
    ``snapshot`` freezes the current state into an immutable view bound to
    one store version.  Readers drive the right half: ``search`` answers
    mask-aware top-``k`` queries (self-exclusion via ``exclude_rows``,
    relation filtering, tombstones always honoured) and is safe from any
    thread on a frozen view.
    """

    kind: str

    def add(self, rows: Sequence[int], vectors: np.ndarray) -> None:
        """Absorb rows appended by a commit (``vectors`` aligned to ``rows``)."""

    def update(self, rows: Sequence[int], vectors: np.ndarray) -> None:
        """Absorb in-place vector rewrites of existing rows."""

    def remove(self, rows: Sequence[int]) -> None:
        """Absorb tombstoned rows (the alive mask stays the ground truth)."""

    def rebuild(self, source: IndexSource) -> None:
        """Re-derive all index state from one source (e.g. after compaction)."""

    def snapshot(self, source: IndexSource) -> "VectorIndex":
        """An immutable view of the current state bound to ``source``."""

    def search(
        self,
        query: np.ndarray,
        k: int,
        *,
        exclude_rows: Iterable[int] = (),
        relation: str | None = None,
        nprobe: int | None = None,
    ) -> list[tuple[int, float]]:
        """The top-``k`` ``(row, score)`` pairs, best first."""

    def stats(self) -> dict:
        """JSON-safe structural stats (partition counts, pending deltas...)."""

"""Churn-safe IVF (inverted-file) ANN index over normalised vectors.

The classic IVF recipe adapted to the store's copy-on-write versioning:

* **Training** partitions the live rows with spherical k-means (seeded,
  a few Lloyd iterations over unit vectors, empty clusters reseeded), one
  unit centroid per partition.
* **Posting lists** hold each partition's member rows next to a contiguous
  block of their normalised vectors.  Blocks carry the same normalised
  values the snapshot's matrix does (row normalisation is element-wise),
  so a candidate's IVF score agrees with its exact-search score to ulp
  level — the same dot over the same bytes, modulo BLAS reduction order —
  and recall@k against :class:`~repro.index.exact.ExactIndex` is in
  practice a pure *selection* metric.
* **Search** probes the ``nprobe`` nearest centroids, scores their blocks,
  filters tombstones/relation mismatches through the source's cached masks
  and cuts the survivors with the shared top-``k`` ranking.  ``nprobe`` is
  the recall/speed knob, per-index default, overridable per query.
* **Maintenance** mirrors the store's tombstone design.  Inserts are
  assigned incrementally to their nearest centroid; updates re-assign;
  deletes only bump a per-partition dead counter — the alive mask already
  hides the rows, so correctness never depends on eager cleanup.  A
  partition is lazily rebuilt (dead rows dropped, centroid re-averaged)
  once its drift — appended or dead fraction — crosses a threshold, and
  the whole index retrains when the store compacts (row numbers change)
  or the live set outgrows the trained one.

Mutation is copy-on-write at array granularity: maintenance replaces a
partition's arrays, never writes into them, so the views frozen by
``snapshot`` — a tuple of member/block references plus the centroids —
stay internally consistent for readers no matter how far the writer
advances.  One maintainer lives on the store's writer side; every store
version gets its own frozen view, sharing unchanged partitions.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.index.base import IndexSource, normalize_rows, rank_top_k, unit_query
from repro.obs import NULL_TELEMETRY, Telemetry

#: Rows scored per chunk during k-means assignment (bounds peak memory).
_ASSIGN_CHUNK = 8192


def _frozen(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


class IVFView:
    """One store version's immutable IVF state: centroids + posting lists."""

    kind = "ivf"

    __slots__ = (
        "source", "centroids", "members", "blocks", "nprobe",
        "_c_searches", "_c_probes", "_c_candidates", "_c_fallbacks",
    )

    def __init__(
        self,
        source: IndexSource,
        centroids: np.ndarray | None,
        members: tuple[np.ndarray, ...],
        blocks: tuple[np.ndarray, ...],
        nprobe: int,
        telemetry: Telemetry | None = None,
    ):
        self.source = source
        self.centroids = centroids
        self.members = members
        self.blocks = blocks
        self.nprobe = nprobe
        self.set_telemetry(telemetry)

    def set_telemetry(self, telemetry: Telemetry | None) -> None:
        """Bind the ``index.*`` search counters (no-ops when disabled)."""
        metrics = (telemetry if telemetry is not None else NULL_TELEMETRY).metrics
        self._c_searches = metrics.counter("index.searches.ivf")
        self._c_probes = metrics.counter("index.probes")
        self._c_candidates = metrics.counter("index.candidates")
        self._c_fallbacks = metrics.counter("index.fallback_scans")

    @property
    def trained(self) -> bool:
        return self.centroids is not None

    def search(
        self,
        query: np.ndarray,
        k: int,
        *,
        exclude_rows: Iterable[int] = (),
        relation: str | None = None,
        nprobe: int | None = None,
    ) -> list[tuple[int, float]]:
        """ANN top-``k`` ``(row, score)``; scores match exact search to ulp level."""
        if k <= 0:
            raise ValueError("k must be positive")
        self._c_searches.inc()
        unit = unit_query(query)
        excluded, candidates = self.source.excluded(relation)
        if self.centroids is None:
            # Below the training floor the view degrades to an exact scan:
            # small stores are cheap to scan and recall stays 1.0.
            self._c_fallbacks.inc()
            scores = self.source.normalized() @ unit
            top, masked = rank_top_k(scores, excluded, exclude_rows, candidates, k)
            return [(int(row), float(masked[row])) for row in top]
        nlist = self.centroids.shape[0]
        n_probe = self.nprobe if nprobe is None else int(nprobe)
        if n_probe < 1:
            raise ValueError("nprobe must be positive")
        n_probe = min(n_probe, nlist)
        centroid_scores = self.centroids @ unit
        if n_probe < nlist:
            probes = np.argpartition(-centroid_scores, n_probe - 1)[:n_probe]
        else:
            probes = np.arange(nlist)
        self._c_probes.inc(int(n_probe))
        row_parts: list[np.ndarray] = []
        score_parts: list[np.ndarray] = []
        for partition in probes:
            members = self.members[partition]
            if members.size:
                row_parts.append(members)
                score_parts.append(self.blocks[partition] @ unit)
        if not row_parts:
            return []
        rows = np.concatenate(row_parts)
        scores = np.concatenate(score_parts)
        keep = ~excluded[rows]
        for row in exclude_rows:
            keep &= rows != row
        rows = rows[keep]
        scores = scores[keep]
        self._c_candidates.inc(int(rows.size))
        k = min(k, rows.size)
        if k == 0:
            return []
        top = np.argpartition(-scores, k - 1)[:k]
        top = top[np.argsort(-scores[top], kind="stable")]
        return [(int(rows[i]), float(scores[i])) for i in top]

    def stats(self) -> dict:
        return {
            "kind": self.kind,
            "trained": self.trained,
            "partitions": 0 if self.centroids is None else int(self.centroids.shape[0]),
            "nprobe": self.nprobe,
        }


class IVFIndex:
    """Writer-side IVF maintainer: absorbs commit deltas, freezes views."""

    kind = "ivf"

    def __init__(
        self,
        dimension: int,
        *,
        nlist: int | None = None,
        nprobe: int | None = None,
        min_train: int = 64,
        drift_threshold: float = 0.5,
        retrain_growth: float = 2.0,
        kmeans_iters: int = 8,
        seed: int = 0,
        telemetry: Telemetry | None = None,
    ):
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        if min_train < 1:
            raise ValueError("min_train must be at least 1")
        if drift_threshold <= 0:
            raise ValueError("drift_threshold must be positive")
        if retrain_growth <= 1.0:
            raise ValueError("retrain_growth must exceed 1")
        if nlist is not None and nlist < 1:
            raise ValueError("nlist must be positive")
        if nprobe is not None and nprobe < 1:
            raise ValueError("nprobe must be positive")
        self.dimension = int(dimension)
        self.nlist = nlist
        self.nprobe = nprobe
        self.min_train = int(min_train)
        self.drift_threshold = float(drift_threshold)
        self.retrain_growth = float(retrain_growth)
        self.kmeans_iters = int(kmeans_iters)
        self.seed = int(seed)
        self._centroids: np.ndarray | None = None
        self._members: list[np.ndarray] = []
        self._blocks: list[np.ndarray] = []
        self._built: list[int] = []
        self._adds: list[int] = []
        self._dead: list[int] = []
        self._assignment = np.full(0, -1, dtype=np.int64)
        self._trained_rows = 0
        self._source: IndexSource | None = None
        self.set_telemetry(telemetry)

    def params(self) -> dict:
        """The constructor parameters (JSON-safe; persisted by the store)."""
        return {
            "nlist": self.nlist,
            "nprobe": self.nprobe,
            "min_train": self.min_train,
            "drift_threshold": self.drift_threshold,
            "retrain_growth": self.retrain_growth,
            "kmeans_iters": self.kmeans_iters,
            "seed": self.seed,
        }

    def set_telemetry(self, telemetry: Telemetry | None) -> None:
        """Bind the maintenance counters/gauges (no-ops when disabled)."""
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        metrics = self._telemetry.metrics
        self._c_full_rebuilds = metrics.counter("index.rebuilds.full")
        self._c_partition_rebuilds = metrics.counter("index.rebuilds.partition")
        self._g_partitions = metrics.gauge("index.partitions")
        self._g_trained_rows = metrics.gauge("index.trained_rows")

    @property
    def trained(self) -> bool:
        return self._centroids is not None

    @property
    def num_partitions(self) -> int:
        return 0 if self._centroids is None else int(self._centroids.shape[0])

    # ------------------------------------------------------------ maintenance

    def rebuild(self, source: IndexSource) -> None:
        """Retrain from scratch over ``source`` (row numbers may have changed)."""
        self._source = source
        self._assignment = np.full(source.num_rows, -1, dtype=np.int64)
        live_rows = np.nonzero(source.alive)[0]
        n = int(live_rows.size)
        if n < self.min_train:
            self._centroids = None
            self._members, self._blocks = [], []
            self._built, self._adds, self._dead = [], [], []
            self._trained_rows = n
            self._g_partitions.set(0)
            self._g_trained_rows.set(n)
            return
        vectors = np.ascontiguousarray(source.normalized()[live_rows])
        nlist = self.nlist if self.nlist is not None else max(1, round(np.sqrt(n)))
        nlist = min(int(nlist), n)
        rng = np.random.default_rng(self.seed)
        centroids = vectors[rng.choice(n, size=nlist, replace=False)]
        for _ in range(self.kmeans_iters):
            assign = _assign_chunked(vectors, centroids)
            counts = np.bincount(assign, minlength=nlist)
            sums = np.zeros((nlist, vectors.shape[1]))
            for dim in range(vectors.shape[1]):
                sums[:, dim] = np.bincount(
                    assign, weights=vectors[:, dim], minlength=nlist
                )
            empty = counts == 0
            if empty.any():  # reseed dead clusters on random live points
                sums[empty] = vectors[rng.integers(0, n, size=int(empty.sum()))]
                counts[empty] = 1
            centroids = sums / counts[:, None]
            centroids /= np.maximum(
                np.linalg.norm(centroids, axis=1, keepdims=True), 1e-12
            )
        assign = _assign_chunked(vectors, centroids)
        order = np.argsort(assign, kind="stable")
        bounds = np.searchsorted(assign[order], np.arange(nlist + 1))
        members: list[np.ndarray] = []
        blocks: list[np.ndarray] = []
        for partition in range(nlist):
            sel = order[bounds[partition]:bounds[partition + 1]]
            members.append(_frozen(live_rows[sel]))
            blocks.append(_frozen(np.ascontiguousarray(vectors[sel])))
        self._assignment[live_rows] = assign
        self._centroids = _frozen(centroids)
        self._members, self._blocks = members, blocks
        self._built = [int(m.size) for m in members]
        self._adds = [0] * nlist
        self._dead = [0] * nlist
        self._trained_rows = n
        self._c_full_rebuilds.inc()
        self._g_partitions.set(nlist)
        self._g_trained_rows.set(n)

    def add(self, rows: Sequence[int], vectors: np.ndarray) -> None:
        """Assign appended rows to their nearest centroid (no-op untrained)."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return
        self._extend_assignment(int(rows.max()) + 1)
        if self._centroids is None:
            return
        normalized = normalize_rows(vectors)
        assign = _assign_chunked(normalized, self._centroids)
        for partition in np.unique(assign):
            sel = assign == partition
            self._members[partition] = _frozen(
                np.concatenate([self._members[partition], rows[sel]])
            )
            self._blocks[partition] = _frozen(
                np.vstack([self._blocks[partition], normalized[sel]])
            )
            self._adds[partition] += int(np.count_nonzero(sel))
        self._assignment[rows] = assign

    def update(self, rows: Sequence[int], vectors: np.ndarray) -> None:
        """Re-assign rewritten rows (move partitions when the vector moved)."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0 or self._centroids is None:
            return
        normalized = normalize_rows(vectors)
        targets = _assign_chunked(normalized, self._centroids)
        for i, row in enumerate(rows):
            row = int(row)
            old = int(self._assignment[row]) if row < self._assignment.size else -1
            new = int(targets[i])
            if old == new:
                position = np.nonzero(self._members[old] == row)[0]
                block = self._blocks[old].copy()
                block[position] = normalized[i]
                self._blocks[old] = _frozen(block)
                continue
            if old >= 0:
                keep = self._members[old] != row
                self._members[old] = _frozen(self._members[old][keep])
                self._blocks[old] = _frozen(self._blocks[old][keep])
            self._extend_assignment(row + 1)
            self._members[new] = _frozen(
                np.concatenate([self._members[new], [row]])
            )
            self._blocks[new] = _frozen(
                np.vstack([self._blocks[new], normalized[i][None, :]])
            )
            self._adds[new] += 1
            self._assignment[row] = new

    def remove(self, rows: Sequence[int]) -> None:
        """Count tombstoned rows per partition; lazy rebuild sweeps them."""
        if self._centroids is None:
            return
        for row in rows:
            row = int(row)
            if row < self._assignment.size:
                partition = int(self._assignment[row])
                if partition >= 0:
                    self._dead[partition] += 1

    def snapshot(self, source: IndexSource) -> IVFView:
        """Refresh drifted partitions against ``source``, then freeze a view.

        Called by the store's single writer per commit: auto-trains once
        the live set reaches ``min_train``, retrains when it has grown (or
        shrunk) past ``retrain_growth`` since training, else sweeps only
        the partitions whose drift crossed the threshold.
        """
        self._source = source
        live = int(np.count_nonzero(source.alive))
        if self._centroids is None:
            if live >= self.min_train:
                self.rebuild(source)
        elif (
            live >= self.retrain_growth * max(self._trained_rows, 1)
            or live < self._trained_rows / self.retrain_growth
        ):
            self.rebuild(source)
        else:
            self._refresh(source)
        nlist = self.num_partitions
        nprobe = self.nprobe if self.nprobe is not None else max(1, round(nlist / 4))
        return IVFView(
            source,
            self._centroids,
            tuple(self._members),
            tuple(self._blocks),
            int(nprobe),
            self._telemetry,
        )

    def _refresh(self, source: IndexSource) -> None:
        """Sweep partitions whose appended/dead fraction crossed the threshold."""
        centroids = None
        for partition in range(len(self._members)):
            members = self._members[partition]
            if members.size == 0:
                continue
            drifted = self._adds[partition] > self.drift_threshold * max(
                self._built[partition], 1
            )
            dying = self._dead[partition] > 0.5 * members.size
            if not (drifted or dying):
                continue
            keep = source.alive[members]
            members = members[keep]
            block = self._blocks[partition][keep]
            if members.size:
                centroid = block.mean(axis=0)
                norm = float(np.linalg.norm(centroid))
                if norm > 1e-12:
                    centroid = centroid / norm
                if centroids is None:
                    centroids = self._centroids.copy()
                centroids[partition] = centroid
            self._members[partition] = _frozen(members)
            self._blocks[partition] = _frozen(np.ascontiguousarray(block))
            self._built[partition] = int(members.size)
            self._adds[partition] = 0
            self._dead[partition] = 0
            self._c_partition_rebuilds.inc()
        if centroids is not None:
            self._centroids = _frozen(centroids)

    # ----------------------------------------------------------------- search

    def search(
        self,
        query: np.ndarray,
        k: int,
        *,
        exclude_rows: Iterable[int] = (),
        relation: str | None = None,
        nprobe: int | None = None,
    ) -> list[tuple[int, float]]:
        """Writer-side convenience: freeze a view of the last source and search."""
        if self._source is None:
            raise ValueError("IVFIndex is not bound to a source yet")
        return self.snapshot(self._source).search(
            query, k, exclude_rows=exclude_rows, relation=relation, nprobe=nprobe
        )

    def stats(self) -> dict:
        return {
            "kind": self.kind,
            "trained": self.trained,
            "partitions": self.num_partitions,
            "trained_rows": self._trained_rows,
            "rows": int(self._assignment.size),
            "pending_adds": int(sum(self._adds)),
            "pending_dead": int(sum(self._dead)),
        }

    def _extend_assignment(self, size: int) -> None:
        if size > self._assignment.size:
            extended = np.full(size, -1, dtype=np.int64)
            extended[: self._assignment.size] = self._assignment
            self._assignment = extended


def _assign_chunked(vectors: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid assignment in bounded-memory chunks."""
    out = np.empty(vectors.shape[0], dtype=np.int64)
    for start in range(0, vectors.shape[0], _ASSIGN_CHUNK):
        chunk = vectors[start:start + _ASSIGN_CHUNK]
        out[start:start + _ASSIGN_CHUNK] = np.argmax(chunk @ centroids.T, axis=1)
    return out

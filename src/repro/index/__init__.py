"""Swappable nearest-neighbour indexes behind every kNN query tier.

The :class:`VectorIndex` protocol separates *maintaining* an index under
the store's insert/delete/update churn from *searching* one immutable,
per-version view of it.  Two implementations ship:

* :class:`ExactIndex` — brute-force cosine scan, bit-identical to the
  pre-protocol ``StoreSnapshot.nearest``.  The default everywhere and the
  recall oracle the ANN index is measured against.
* :class:`IVFIndex` — k-means-partitioned inverted-file ANN with
  tombstone-aware posting lists, incremental assignment and lazy
  drift-triggered partition rebuilds; ``nprobe`` trades recall for speed.

:func:`make_index` is the factory the store (and CLI ``--index`` flags)
resolve index specs through.  The benchmark harness lives in
:mod:`repro.index.bench` (imported on demand; it depends on the store).
"""

from __future__ import annotations

from repro.index.base import IndexSource, VectorIndex, rank_top_k, unit_query
from repro.index.exact import ExactIndex
from repro.index.ivf import IVFIndex, IVFView

#: Index kinds the factory (and every ``--index`` flag) accepts.
INDEX_KINDS = ("exact", "ivf")


def make_index(spec, dimension: int, **params):
    """Resolve an index spec to a writer-side maintainer (or None for exact).

    ``spec`` may be ``None``/``"exact"`` (exact search needs no maintained
    state — every snapshot answers it from its own arrays, so the factory
    returns ``None``), ``"ivf"`` (a fresh :class:`IVFIndex` built from
    ``params``), or an already-constructed :class:`VectorIndex`, which is
    passed through.
    """
    if spec is None or spec == "exact":
        if params:
            raise ValueError("exact search takes no index parameters")
        return None
    if spec == "ivf":
        return IVFIndex(dimension, **params)
    if isinstance(spec, VectorIndex):
        return spec
    raise ValueError(
        f"unknown index kind {spec!r}; expected one of {INDEX_KINDS}"
    )


__all__ = [
    "ExactIndex",
    "INDEX_KINDS",
    "IVFIndex",
    "IVFView",
    "IndexSource",
    "VectorIndex",
    "make_index",
    "rank_top_k",
    "unit_query",
]

"""Exact (brute-force) cosine kNN — the default index and recall oracle.

``ExactIndex`` reproduces the pre-refactor ``StoreSnapshot.nearest``
*bit for bit*: the same zero-norm-guarded query scaling, one matrix
product against the snapshot's cached row-normalised matrix, the same
``-inf`` masking and the same ``argpartition`` + stable-sort cut (see
:func:`repro.index.base.rank_top_k`).  What changed is purely where the
masks come from: the alive and per-relation exclusion masks are cached on
the shared :class:`~repro.index.base.IndexSource` instead of being
re-allocated per call.

Exact search keeps no state beyond the source it is bound to, so the
maintenance half of the protocol (``add``/``update``/``remove``) is a
documented no-op and ``snapshot`` is just a rebind — every store version's
exact view reads that version's own arrays directly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.index.base import IndexSource, rank_top_k, unit_query
from repro.obs import NULL_TELEMETRY, Telemetry


class ExactIndex:
    """Brute-force cosine top-``k`` over one :class:`IndexSource`."""

    kind = "exact"

    def __init__(
        self,
        source: IndexSource | None = None,
        *,
        telemetry: Telemetry | None = None,
    ):
        self._source = source
        self.set_telemetry(telemetry)

    @classmethod
    def over_vectors(
        cls,
        vectors: np.ndarray,
        relations: Sequence[str] | None = None,
    ) -> "ExactIndex":
        """A standalone exact index over raw rows (no store required)."""
        return cls(IndexSource.from_rows(vectors, relations))

    def set_telemetry(self, telemetry: Telemetry | None) -> None:
        """Bind the ``index.*`` search counter (no-op when disabled)."""
        bundle = telemetry if telemetry is not None else NULL_TELEMETRY
        self._c_searches = bundle.metrics.counter("index.searches.exact")

    # -------------------------------------------------- protocol: writer side

    def add(self, rows: Sequence[int], vectors: np.ndarray) -> None:
        """No-op: exact search reads the bound source's rows directly."""

    def update(self, rows: Sequence[int], vectors: np.ndarray) -> None:
        """No-op: the snapshot's own arrays already carry the rewrite."""

    def remove(self, rows: Sequence[int]) -> None:
        """No-op: the source's alive mask is the ground truth."""

    def rebuild(self, source: IndexSource) -> None:
        self._source = source

    def snapshot(self, source: IndexSource | None = None) -> "ExactIndex":
        """An exact view over ``source`` (views are just rebound indexes)."""
        view = ExactIndex(source if source is not None else self._source)
        view._c_searches = self._c_searches
        return view

    # -------------------------------------------------- protocol: reader side

    def scores(self, query: np.ndarray) -> np.ndarray:
        """Raw (unmasked) cosine scores of every row against ``query``."""
        return self._require_source().normalized() @ unit_query(query)

    def search(
        self,
        query: np.ndarray,
        k: int,
        *,
        exclude_rows: Iterable[int] = (),
        relation: str | None = None,
        nprobe: int | None = None,
    ) -> list[tuple[int, float]]:
        """Top-``k`` ``(row, score)``, bit-identical to the old ``nearest``.

        ``nprobe`` is accepted for protocol uniformity and ignored — exact
        search always scans every live row.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        source = self._require_source()
        scores = source.normalized() @ unit_query(query)
        excluded, candidates = source.excluded(relation)
        top, masked = rank_top_k(scores, excluded, exclude_rows, candidates, k)
        self._c_searches.inc()
        return [(int(row), float(masked[row])) for row in top]

    def stats(self) -> dict:
        source = self._source
        return {
            "kind": self.kind,
            "rows": 0 if source is None else source.num_rows,
        }

    def _require_source(self) -> IndexSource:
        if self._source is None:
            raise ValueError("ExactIndex is not bound to a source yet")
        return self._source

"""The kNN index benchmark: IVF speedup-vs-exact and recall@k per scale.

``python -m repro bench knn`` and ``benchmarks/bench_knn_index.py`` drive
this module.  One run climbs a ladder of Mondial replication rungs (scale
0.5 up to 4x at the full profile), and per rung

* loads the dataset and embeds every fact with a **synthetic seeded
  vector** (its relation's anchor plus gaussian noise) — the benchmark
  measures the *query* tier, so no model is trained, but the vectors keep
  the clustered geometry real embeddings have, which is what an IVF index
  actually partitions;
* builds an :class:`~repro.service.store.EmbeddingStore` with a live IVF
  maintainer and **churns** it — multi-batch inserts, then an update and a
  delete wave — so the measured snapshot carries tombstones and
  incrementally absorbed rows, exactly the state serving sees;
* answers one seeded query set twice through the public
  :meth:`~repro.service.store.StoreSnapshot.nearest` path — once with
  ``index="exact"`` (the oracle) and once with ``index="ivf"`` — and
  reports per-index latency summaries, the mean/min **recall@k** of IVF
  against exact, and the resulting **speedup**.

Floors ride in the payload (recall >= 0.95 on every rung; per-rung speedup
floors, 5x at the 4x-Mondial rung) and are enforced by :func:`check_knn`,
so a stored ``BENCH_knn.json`` re-validates offline via
``tools/check_obs_artifacts.py`` and renders via ``python -m repro stats``.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.obs import Telemetry, latency_summary
from repro.service.store import EmbeddingStore

KNN_SCHEMA_VERSION = 1
KNN_KIND = "knn_bench"

#: The benchmark's embedding geometry and query shape.
KNN_DIMENSION = 32
KNN_K = 10
KNN_QUERIES = 100
#: Timed repeats per query; the per-query minimum is kept (scheduler noise
#: only ever adds latency, so the min is the stable estimate).
KNN_REPEATS = 3

#: Every rung asserts this recall@k of IVF against the exact oracle.
RECALL_FLOOR = 0.95

#: Ladder rungs: dataset scale, IVF shape and the asserted speedup floor.
#: ``nlist``/``nprobe`` are tuned per rung (more, narrower partitions as the
#: store grows); the floors are measured-with-margin — small stores leave
#: ANN little room (the exact scan is already cheap), the 4x-Mondial rung
#: carries the headline 5x requirement.
REDUCED_RUNGS: tuple[dict, ...] = (
    {"scale": 0.5, "nlist": 64, "nprobe": 8, "speedup_floor": 1.0},
    {"scale": 1.0, "nlist": 96, "nprobe": 8, "speedup_floor": 1.7},
)
FULL_RUNGS: tuple[dict, ...] = REDUCED_RUNGS + (
    {"scale": 2.0, "nlist": 160, "nprobe": 10, "speedup_floor": 3.0},
    {"scale": 4.0, "nlist": 256, "nprobe": 12, "speedup_floor": 5.0},
)
# Measured on the reference box (min-of-3 per query, separate phases):
# 0.5 -> 1.3x, 1.0 -> 4.3x, 2.0 -> 6.2x, 4.0 -> 7.5x; recall >= 0.999
# everywhere.  The floors leave ~30%+ headroom for slower CI hardware.

#: Churn applied before measuring (fractions of the rung's fact count).
INSERT_BATCHES = 4
UPDATE_FRACTION = 0.02
DELETE_FRACTION = 0.02


#: Within-cluster intrinsic dimension of the synthetic vectors.
_NOISE_RANK = 6


def _synthetic_vectors(
    relations: Sequence[str], rng: np.random.Generator
) -> np.ndarray:
    """Seeded per-fact vectors: relation anchor plus structured noise.

    Facts of one relation cluster around a shared anchor, spread mostly
    along a low-rank per-relation basis plus a small isotropic component —
    the low-intrinsic-dimension geometry real embedding clouds have, and
    the regime IVF partitioning is built for.  (Pure isotropic Gaussian
    balls are the known worst case for any partitioned index: every
    neighbourhood straddles cell boundaries, which no real embedding
    method produces.)
    """
    names = sorted(set(relations))
    anchors = {name: rng.normal(size=KNN_DIMENSION) for name in names}
    bases = {
        name: rng.normal(size=(KNN_DIMENSION, _NOISE_RANK)) / np.sqrt(_NOISE_RANK)
        for name in names
    }
    low_rank = rng.normal(size=(len(relations), _NOISE_RANK))
    isotropic = rng.normal(size=(len(relations), KNN_DIMENSION))
    return np.stack([
        anchors[r] + (low_rank[i] @ bases[r].T) * 0.35 + isotropic[i] * 0.1
        for i, r in enumerate(relations)
    ])


def _churned_store(
    facts: Sequence, vectors: np.ndarray, rung: Mapping, rng: np.random.Generator,
    telemetry: Telemetry | None,
) -> tuple[EmbeddingStore, dict]:
    """Build an IVF-backed store and churn it into a realistic snapshot."""
    store = EmbeddingStore(
        KNN_DIMENSION,
        telemetry=telemetry,
        index="ivf",
        index_params={
            "nlist": int(rung["nlist"]), "nprobe": int(rung["nprobe"]), "seed": 0,
        },
    )
    n = len(facts)
    bounds = np.linspace(0, n, INSERT_BATCHES + 1).astype(int)
    for batch, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:])):
        store.commit(
            zip(facts[lo:hi], vectors[lo:hi]), batch_id=f"knn-insert-{batch}"
        )
    update_rows = rng.choice(n, size=max(1, int(UPDATE_FRACTION * n)), replace=False)
    store.commit(
        [(facts[i], vectors[i] + rng.normal(scale=0.1, size=KNN_DIMENSION))
         for i in update_rows],
        batch_id="knn-update",
    )
    delete_rows = rng.choice(n, size=max(1, int(DELETE_FRACTION * n)), replace=False)
    store.commit(
        (), batch_id="knn-delete", deletes=[facts[i] for i in delete_rows],
    )
    churn = {
        "commits": store.version,
        "updates": int(update_rows.size),
        "deletes": int(delete_rows.size),
    }
    return store, churn


def _measure_rung(
    rung: Mapping, *, dataset_name: str, seed: int, queries: int,
    telemetry: Telemetry | None,
) -> dict:
    """Build, churn and measure one ladder rung; returns its payload entry."""
    from repro.datasets import load_dataset

    rng = np.random.default_rng([seed, int(round(rung["scale"] * 1000))])
    dataset = load_dataset(dataset_name, scale=rung["scale"], seed=seed)
    facts = list(dataset.db.facts())
    vectors = _synthetic_vectors([fact.relation for fact in facts], rng)
    store, churn = _churned_store(facts, vectors, rung, rng, telemetry)
    head = store.head

    live_ids = np.asarray(sorted(head.row_of), dtype=np.int64)
    query_ids = rng.choice(live_ids, size=min(queries, live_ids.size), replace=False)
    # warm both views once: the per-snapshot caches (normalised matrix,
    # masks) are shared, so neither index pays them inside the timed loop
    head.nearest(int(query_ids[0]), k=KNN_K, index="exact")
    head.nearest(int(query_ids[0]), k=KNN_K, index="ivf")

    # one timed phase per index (interleaving them would let the exact
    # scan's full-matrix sweep evict the IVF posting blocks from cache on
    # every query, charging the ANN path for the oracle's working set)
    def timed(index: str) -> tuple[list[list[tuple[int, float]]], list[float]]:
        answers: list[list[tuple[int, float]]] = []
        seconds: list[float] = []
        for fid in query_ids:
            best = float("inf")
            for _ in range(KNN_REPEATS):
                started = time.perf_counter()
                result = head.nearest(int(fid), k=KNN_K, index=index)
                best = min(best, time.perf_counter() - started)
            answers.append(result)
            seconds.append(best)
        return answers, seconds

    exact_answers, exact_seconds = timed("exact")
    ivf_answers, ivf_seconds = timed("ivf")
    recalls: list[float] = []
    for exact, approx in zip(exact_answers, ivf_answers):
        truth = {pair[0] for pair in exact}
        found = {pair[0] for pair in approx}
        recalls.append(len(truth & found) / len(truth) if truth else 1.0)

    exact_latency = latency_summary(exact_seconds)
    ivf_latency = latency_summary(ivf_seconds)
    speedup = (
        exact_latency["mean_seconds"] / ivf_latency["mean_seconds"]
        if ivf_latency["mean_seconds"] > 0 else 0.0
    )
    return {
        "scale": float(rung["scale"]),
        "num_facts": head.num_facts,
        "num_rows": head.num_rows,
        "num_dead": head.num_dead,
        "churn": churn,
        "index_params": {"nlist": int(rung["nlist"]), "nprobe": int(rung["nprobe"])},
        "queries": int(len(query_ids)),
        "exact": {"latency": exact_latency},
        "ivf": {"latency": ivf_latency, "stats": store.index.stats()},
        "speedup": float(speedup),
        "speedup_floor": float(rung["speedup_floor"]),
        "recall": {
            "k": KNN_K,
            "mean": float(np.mean(recalls)),
            "min": float(np.min(recalls)),
            "floor": RECALL_FLOOR,
        },
    }


def run_knn_bench(
    rungs: Iterable[Mapping] | None = None,
    *,
    dataset: str = "mondial",
    seed: int = 0,
    queries: int = KNN_QUERIES,
    telemetry: Telemetry | None = None,
) -> dict:
    """Run the kNN index ladder and return the versioned payload.

    Floors are recorded, not enforced here; :func:`check_knn` turns them
    into failures so a stored artifact re-validates offline.
    """
    from repro import __version__

    rung_specs = list(REDUCED_RUNGS if rungs is None else rungs)
    payload: dict[str, Any] = {
        "schema_version": KNN_SCHEMA_VERSION,
        "kind": KNN_KIND,
        "repro_version": __version__,
        "dataset": dataset,
        "dimension": KNN_DIMENSION,
        "k": KNN_K,
        "seed": seed,
        "rungs": [
            _measure_rung(
                rung, dataset_name=dataset, seed=seed, queries=queries,
                telemetry=telemetry,
            )
            for rung in rung_specs
        ],
    }
    return payload


def check_knn(payload: dict) -> list[str]:
    """Validate a kNN bench payload; returns human-readable violations.

    Enforces the schema shape, per-rung latency coverage for both indexes,
    the recall@k floor (on the mean) and every rung's speedup floor.  An
    empty list means the artifact passes.
    """
    problems: list[str] = []
    if payload.get("kind") != KNN_KIND:
        problems.append(f"kind is {payload.get('kind')!r}, expected {KNN_KIND!r}")
    if payload.get("schema_version") != KNN_SCHEMA_VERSION:
        problems.append(
            f"schema_version is {payload.get('schema_version')!r}, "
            f"expected {KNN_SCHEMA_VERSION}"
        )
    rungs = payload.get("rungs") or []
    if not rungs:
        problems.append("payload has no rungs")
    for rung in rungs:
        scale = rung.get("scale", "?")
        if rung.get("queries", 0) < 1:
            problems.append(f"scale {scale}: no queries were measured")
            continue
        for index in ("exact", "ivf"):
            latency = (rung.get(index) or {}).get("latency") or {}
            for field in ("count", "mean_seconds", "p50_seconds", "p99_seconds"):
                if field not in latency:
                    problems.append(
                        f"scale {scale}: {index} latency summary is missing {field}"
                    )
        recall = rung.get("recall") or {}
        if recall.get("mean", 0.0) < recall.get("floor", RECALL_FLOOR):
            problems.append(
                f"scale {scale}: recall@{recall.get('k')} mean "
                f"{recall.get('mean', 0.0):.3f} is below the floor of "
                f"{recall.get('floor', RECALL_FLOOR)}"
            )
        if rung.get("speedup", 0.0) < rung.get("speedup_floor", 0.0):
            problems.append(
                f"scale {scale}: speedup {rung.get('speedup', 0.0):.2f}x is below "
                f"the floor of {rung.get('speedup_floor', 0.0):.1f}x"
            )
    return problems


def render_knn(payload: dict) -> str:
    """A human-readable summary of one kNN bench payload."""
    lines = [
        f"kNN index ladder — {payload['dataset']} "
        f"(dimension {payload['dimension']}, k={payload['k']}, "
        f"{len(payload['rungs'])} rungs)",
        f"{'scale':>6}{'facts':>8}{'dead':>7}{'exact p50':>11}{'ivf p50':>10}"
        f"{'speedup':>9}{'recall':>8}{'floor':>7}",
    ]
    for rung in payload["rungs"]:
        exact = rung["exact"]["latency"]
        ivf = rung["ivf"]["latency"]
        lines.append(
            f"{rung['scale']:>6.2f}{rung['num_facts']:>8}{rung['num_dead']:>7}"
            f"{exact['p50_seconds'] * 1e3:>9.3f}ms"
            f"{ivf['p50_seconds'] * 1e3:>8.3f}ms"
            f"{rung['speedup']:>8.2f}x"
            f"{rung['recall']['mean']:>8.3f}"
            f"{rung['speedup_floor']:>6.1f}x"
        )
    problems = check_knn(payload)
    lines.append(
        "floors: OK" if not problems else "VIOLATIONS:\n  " + "\n  ".join(problems)
    )
    return "\n".join(lines)

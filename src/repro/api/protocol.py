"""The estimator protocol every embedding method implements.

Layer: ``api`` (unified estimator surface; uses ``core``, used by
``evaluation``, ``service``, ``io`` and the CLI).

:class:`Embedder` is the sklearn-style contract of the whole system: every
method — FoRWaRD, the Node2Vec adaptation, any future baseline — is a
stateful estimator with

* ``fit(db, relation)`` — train the static embedding and return ``self``;
* ``transform(facts)`` — read embeddings off the fitted model;
* ``partial_fit(batch)`` — embed newly inserted facts incrementally
  (the paper's dynamic extension), when the method supports it.

Capabilities the serving layer needs beyond the big three are expressed as
small hooks with safe defaults (``supports_recompute``, ``tracked_relation``,
``engine_version``, …) so :class:`~repro.service.service.EmbeddingService`
can drive *any* embedder that implements ``partial_fit``, not just FoRWaRD.
Concrete implementations live in :mod:`repro.api.embedders`; string-spec
construction (``make_embedder("forward(dimension=64)")``) in
:mod:`repro.api.registry`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, ClassVar, Iterable, Mapping, Sequence

import numpy as np

from repro.core.base import TupleEmbedding
from repro.db.database import Database, Fact

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import WalkEngine


class NotFittedError(RuntimeError):
    """Raised when ``transform``/``partial_fit`` is called before ``fit``."""


class Embedder(abc.ABC):
    """A named embedding estimator with static fit and dynamic extension.

    Subclasses set :attr:`name`, implement :meth:`fit` / :meth:`transform`,
    and — when the method can embed newly inserted facts without retraining
    from scratch — set :attr:`supports_partial_fit` and implement
    :meth:`partial_fit`.  The fitted state lives in ``model_`` (sklearn's
    trailing-underscore convention) and the training database in ``db_``.
    """

    name: ClassVar[str] = "embedder"

    #: Whether :meth:`partial_fit` is implemented.
    supports_partial_fit: ClassVar[bool] = False

    #: Whether :meth:`recompute_extension` is implemented (the service's
    #: ``recompute`` policy needs it for one-shot-equivalent replays).
    supports_recompute: ClassVar[bool] = False

    def __init__(self, config: Any = None):
        self.config = config
        self.model_: Any = None
        self.db_: Database | None = None
        self._trained_fact_ids: frozenset[int] | None = None

    # ------------------------------------------------------------- fitting

    @property
    def is_fitted(self) -> bool:
        return self.model_ is not None

    def _check_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError(
                f"this {self.name!r} embedder is not fitted; call fit(db, ...) first"
            )

    @abc.abstractmethod
    def fit(
        self,
        db: Database,
        relation: str | None = None,
        *,
        rng: int | np.random.Generator | None = None,
        engine: "WalkEngine | None" = None,
    ) -> "Embedder":
        """Train the static embedding on ``db`` and return ``self``.

        ``relation`` names the relation to embed for methods that embed one
        relation (FoRWaRD); whole-database methods ignore it.  ``rng`` seeds
        every stochastic step so two fits of the same spec and seed are
        bit-identical; ``engine`` optionally shares a compiled
        :class:`~repro.engine.engine.WalkEngine`.
        """

    @abc.abstractmethod
    def transform(self, facts: Iterable[Fact] | None = None) -> TupleEmbedding:
        """Embeddings of ``facts`` (default: everything the model embeds).

        Facts the model has no embedding for are silently omitted, so the
        result may be smaller than the request.
        """

    @property
    def dimension(self) -> int:
        """The embedding dimension (available before and after fitting)."""
        return int(self.config.dimension)

    # --------------------------------------------------- dynamic extension

    def configure_extension(
        self,
        *,
        recompute_old_paths: bool = False,
        rng: int | np.random.Generator | None = None,
        workers: int = 0,
    ) -> None:
        """Configure how :meth:`partial_fit` embeds subsequent batches.

        ``recompute_old_paths`` selects the paper's all-at-once setting for
        methods that distinguish it (FoRWaRD); ``rng`` seeds the extension;
        ``workers`` opts re-extension into a process pool for methods with a
        parallelisable solve stage (results are byte-identical to serial by
        contract — see :mod:`repro.engine.parallel`).  Called by the drivers
        and the service at bind time; the default implementation ignores
        every argument, which is correct for methods without extension
        state.
        """

    def partial_fit(self, facts: Sequence[Fact]) -> TupleEmbedding:
        """Embed newly inserted facts; existing embeddings stay untouched.

        Returns only the new facts' embeddings.  Methods that cannot extend
        incrementally leave :attr:`supports_partial_fit` false and inherit
        this ``NotImplementedError``.
        """
        raise NotImplementedError(
            f"method {self.name!r} does not support partial_fit"
        )

    def notify_inserted(self, facts: Sequence[Fact]) -> None:
        """Hook called after ``facts`` were inserted into the database.

        FoRWaRD appends them to its compiled engine here; methods without
        incremental engine state need not override.
        """

    def notify_deleted(self, facts: Sequence[Fact]) -> None:
        """Hook called after ``facts`` were deleted from the database.

        FoRWaRD tombstones them in its compiled engine and discards their
        dynamically extended embeddings; methods without incremental engine
        state need not override (their stale internal state simply no longer
        influences facts the store has tombstoned).
        """

    def notify_updated(self, facts: Sequence[Fact]) -> None:
        """Hook called after ``facts`` were updated in place (same ids).

        ``facts`` carry the post-update values.  FoRWaRD re-encodes them in
        its compiled engine and discards the extended embeddings of updated
        *streamed* facts so a subsequent ``partial_fit`` re-derives them;
        trained embeddings stay frozen (the stability guarantee).
        """

    # ------------------------------------------------------- serving hooks

    @property
    def tracked_relation(self) -> str | None:
        """Relation whose streamed facts the service re-embeds (None = all)."""
        return None

    @property
    def supports_on_arrival(self) -> bool:
        """Whether the one-by-one (``on_arrival``) serving policy is usable."""
        return self.supports_partial_fit

    @property
    def trained_fact_ids(self) -> frozenset[int]:
        """Fact ids of the *static* training set (excluding extensions).

        Implementations should assign ``self._trained_fact_ids`` inside
        ``fit``; the fallback snapshots ``transform()`` on first access,
        which is only correct while no ``partial_fit`` has run yet.
        """
        if self._trained_fact_ids is None:
            self._check_fitted()
            self._trained_fact_ids = frozenset(self.transform().fact_ids)
        return self._trained_fact_ids

    def is_trained(self, fact_id: int) -> bool:
        """Whether ``fact_id`` was part of the static training set."""
        return int(fact_id) in self.trained_fact_ids

    @property
    def embedded_fact_ids(self) -> tuple[int, ...]:
        """Every fact id the fitted model currently embeds, stable order."""
        self._check_fitted()
        return self.transform().fact_ids

    def recompute_extension(
        self, facts: Sequence[Fact], seed: int | None
    ) -> Mapping[Fact, np.ndarray]:
        """Deterministically re-embed all streamed ``facts`` (in order).

        The service's ``recompute`` policy calls this after every commit;
        re-seeding from ``seed`` makes the result independent of how the
        arrivals were batched.  Only methods with
        :attr:`supports_recompute` implement it.
        """
        raise NotImplementedError(
            f"method {self.name!r} does not support the recompute policy"
        )

    @property
    def engine(self) -> "WalkEngine | None":
        """The compiled walk engine backing extension, if the method has one."""
        return None

    @property
    def engine_version(self) -> int:
        """Monotonic version of the backing engine (0 for engineless methods)."""
        engine = self.engine
        return engine.version if engine is not None else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fitted" if self.is_fitted else "unfitted"
        return f"{type(self).__name__}(name={self.name!r}, {state})"

"""Method registry and the ``"name(key=value, ...)"`` spec mini-language.

Layer: ``api`` (unified estimator surface).

Every embedding method registers itself once (``@register_method``) with its
config dataclass and kwarg aliases; every consumer — the experiment drivers,
the serving layer, the io pipeline's embed step, the benchmarks and the
``python -m repro`` CLI — then resolves methods the same way::

    make_embedder("forward")                          # paper defaults
    make_embedder("forward(dimension=64, epochs=10)") # overrides
    make_embedder("node2vec(dim=32, walks=10)")       # aliases expand

Specs are parsed with :mod:`ast` (keyword arguments with literal values
only), then validated against the method's config dataclass: unknown
methods, unknown parameters and type mismatches all raise
:class:`MethodSpecError` with an actionable message.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.protocol import Embedder


class MethodSpecError(ValueError):
    """A method spec failed to parse or validate."""


@dataclass(frozen=True)
class MethodEntry:
    """One registered embedding method."""

    name: str
    embedder_class: type
    config_class: type
    aliases: Mapping[str, str] = field(default_factory=dict)
    """Spec-kwarg shorthands, e.g. ``dim`` → ``dimension``."""
    summary: str = ""

    def parameter_names(self) -> tuple[str, ...]:
        """Valid spec kwargs: config fields plus the registered aliases."""
        return (*self.config_class.field_types(), *self.aliases)


_REGISTRY: dict[str, MethodEntry] = {}


def register_method(
    name: str,
    *,
    config: type,
    aliases: Mapping[str, str] | None = None,
    summary: str = "",
):
    """Class decorator registering an :class:`Embedder` under ``name``.

    ``config`` is the method's hyper-parameter dataclass (a
    :class:`~repro.core.config.ConfigBase` subclass); ``aliases`` maps spec
    shorthands onto its field names.  Registering an existing name raises —
    methods are process-global, so silent replacement would be a footgun.
    """

    def decorate(cls):
        if name in _REGISTRY:
            raise ValueError(f"method {name!r} is already registered")
        for alias, target in (aliases or {}).items():
            if target not in config.field_types():
                raise ValueError(
                    f"alias {alias!r} of method {name!r} targets unknown "
                    f"config field {target!r}"
                )
        _REGISTRY[name] = MethodEntry(
            name=name,
            embedder_class=cls,
            config_class=config,
            aliases=dict(aliases or {}),
            summary=summary,
        )
        return cls

    return decorate


def available_methods() -> tuple[str, ...]:
    """Names of all registered methods, registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY)


def method_entry(name: str) -> MethodEntry:
    """The registry entry for ``name`` (raises :class:`MethodSpecError`)."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise MethodSpecError(
            f"unknown embedding method {name!r}; "
            f"available methods: {', '.join(_REGISTRY)}"
        ) from None


def method_summaries() -> dict[str, str]:
    """``{name: one-line summary}`` for CLI help output."""
    _ensure_builtins()
    return {name: entry.summary for name, entry in _REGISTRY.items()}


def parse_method_spec(spec: str) -> tuple[str, dict[str, Any]]:
    """Split ``"name(key=value, ...)"`` into the name and raw kwargs.

    The bare form ``"name"`` is valid (empty kwargs).  Values must be
    Python literals (numbers, strings, booleans); positional arguments and
    expressions are rejected with a pointer at the kwarg grammar.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise MethodSpecError(
            f"method spec must be a non-empty string like "
            f"'forward(dimension=64)', got {spec!r}"
        )
    text = spec.strip()
    try:
        tree = ast.parse(text, mode="eval")
    except SyntaxError:
        raise MethodSpecError(
            f"could not parse method spec {spec!r}; expected "
            "'name' or 'name(key=value, ...)'"
        ) from None
    node = tree.body
    if isinstance(node, ast.Name):
        return node.id, {}
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
        raise MethodSpecError(
            f"could not parse method spec {spec!r}; expected "
            "'name' or 'name(key=value, ...)'"
        )
    if node.args:
        raise MethodSpecError(
            f"method spec {spec!r} uses positional arguments; "
            "spell every parameter as key=value"
        )
    kwargs: dict[str, Any] = {}
    for keyword in node.keywords:
        if keyword.arg is None:
            raise MethodSpecError(
                f"method spec {spec!r} uses '**'; spell every parameter "
                "as key=value"
            )
        try:
            kwargs[keyword.arg] = ast.literal_eval(keyword.value)
        except ValueError:
            raise MethodSpecError(
                f"method spec {spec!r}: value of {keyword.arg!r} must be a "
                "literal (number, string or boolean)"
            ) from None
    return node.func.id, kwargs


def _resolve_aliases(entry: MethodEntry, kwargs: Mapping[str, Any]) -> dict[str, Any]:
    """Map spec kwargs onto canonical config field names (validating keys)."""
    fields = entry.config_class.field_types()
    resolved: dict[str, Any] = {}
    for key, value in kwargs.items():
        target = entry.aliases.get(key, key)
        if target not in fields:
            raise MethodSpecError(
                f"method {entry.name!r} has no parameter {key!r}; "
                f"valid parameters: {', '.join(entry.parameter_names())}"
            )
        if target in resolved:
            raise MethodSpecError(
                f"method {entry.name!r}: parameter {target!r} given twice "
                f"(as {target!r} and via its alias)"
            )
        resolved[target] = value
    return resolved


def _build_config(entry: MethodEntry, resolved: Mapping[str, Any]):
    try:
        return entry.config_class.from_dict(resolved)
    except (ValueError, TypeError) as error:
        raise MethodSpecError(f"method {entry.name!r}: {error}") from None


def make_config(name: str, kwargs: Mapping[str, Any]):
    """Build the validated config of method ``name`` from spec kwargs."""
    entry = method_entry(name)
    return _build_config(entry, _resolve_aliases(entry, kwargs))


def make_embedder(spec: str, **overrides: Any) -> "Embedder":
    """Construct an unfitted :class:`Embedder` from a spec string.

    ``overrides`` are merged over the spec's own kwargs (aliases apply to
    both), which is how the CLI layers flag overrides over a config file::

        make_embedder("forward(dimension=64)", epochs=3)
    """
    name, kwargs = parse_method_spec(spec)
    entry = method_entry(name)
    # canonicalise both sides before merging so an override spelled
    # ``dimension=...`` replaces a spec kwarg spelled ``dim=...``
    merged = _resolve_aliases(entry, kwargs)
    merged.update(_resolve_aliases(entry, overrides))
    return entry.embedder_class(_build_config(entry, merged))


def _ensure_builtins() -> None:
    """Import the built-in embedders so their registrations run."""
    import repro.api.embedders  # noqa: F401  (registration side effect)

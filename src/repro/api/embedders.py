"""Concrete :class:`~repro.api.protocol.Embedder` implementations.

Layer: ``api`` (unified estimator surface over :mod:`repro.core`).

Each class is a thin stateful shell over the corresponding trainer/extender
pair in :mod:`repro.core` — the numerics are untouched, so a fit through
this API is bit-identical to calling the core classes directly with the
same seed.  All are registered in :mod:`repro.api.registry`, which is what
``make_embedder("forward(dimension=64)")`` resolves against.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Iterable, Mapping, Sequence

import numpy as np

from repro.api.protocol import Embedder
from repro.api.registry import register_method
from repro.core.base import TupleEmbedding
from repro.core.config import ForwardConfig, Node2VecConfig
from repro.core.forward import ForwardEmbedder, ForwardModel
from repro.core.forward_dynamic import ForwardDynamicExtender
from repro.core.node2vec import Node2VecEmbedder, Node2VecModel
from repro.core.node2vec_dynamic import Node2VecDynamicExtender
from repro.db.database import Database, Fact
from repro.utils.rng import ensure_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import WalkEngine


@register_method(
    "forward",
    config=ForwardConfig,
    aliases={"dim": "dimension", "samples": "n_samples", "walks": "n_samples",
             "lr": "learning_rate"},
    summary="FoRWaRD: walk-scheme kernel regression on one relation "
    "(static fit + stable dynamic extension)",
)
class ForwardEmbedding(Embedder):
    """FoRWaRD behind the estimator protocol (Sections V and V-E).

    ``fit(db, relation)`` trains :class:`~repro.core.forward.ForwardEmbedder`
    on one relation; ``partial_fit`` solves the least-squares extension of
    newly inserted facts through a lazily created
    :class:`~repro.core.forward_dynamic.ForwardDynamicExtender`, configured
    via :meth:`~repro.api.protocol.Embedder.configure_extension`.
    """

    name: ClassVar[str] = "forward"
    supports_partial_fit: ClassVar[bool] = True
    supports_recompute: ClassVar[bool] = True

    def __init__(self, config: ForwardConfig | None = None, *, kernels=None):
        super().__init__(config or ForwardConfig())
        self.kernels = kernels
        self._shared_engine: "WalkEngine | None" = None
        self._extender: ForwardDynamicExtender | None = None
        self._recompute_old_paths = False
        self._extension_rng: int | np.random.Generator | None = None
        self._workers = 0

    @classmethod
    def from_model(
        cls,
        model: ForwardModel,
        db: Database,
        *,
        engine: "WalkEngine | None" = None,
    ) -> "ForwardEmbedding":
        """Wrap an already trained :class:`ForwardModel` (e.g. loaded from disk)."""
        embedder = cls(model.config)
        embedder.model_ = model
        embedder.db_ = db
        embedder._trained_fact_ids = frozenset(model.fact_row)
        embedder._shared_engine = engine
        return embedder

    # ------------------------------------------------------------- fitting

    def fit(
        self,
        db: Database,
        relation: str | None = None,
        *,
        rng: int | np.random.Generator | None = None,
        engine: "WalkEngine | None" = None,
    ) -> "ForwardEmbedding":
        if relation is None:
            raise ValueError(
                "forward embeds one relation at a time; call fit(db, relation)"
            )
        trainer = ForwardEmbedder(
            db, relation, self.config, kernels=self.kernels, rng=rng, engine=engine
        )
        self.model_ = trainer.fit()
        self.db_ = db
        self._trained_fact_ids = frozenset(self.model_.fact_row)
        self._shared_engine = trainer.engine  # compiled during fit; reused below
        self._extender = None
        return self

    def transform(self, facts: Iterable[Fact] | None = None) -> TupleEmbedding:
        self._check_fitted()
        full = self.model_.embedding()
        if facts is None:
            return full
        return full.restrict([f for f in facts if f in full])

    @property
    def dimension(self) -> int:
        return self.model_.dimension if self.is_fitted else int(self.config.dimension)

    # --------------------------------------------------- dynamic extension

    def configure_extension(
        self,
        *,
        recompute_old_paths: bool = False,
        rng: int | np.random.Generator | None = None,
        workers: int = 0,
    ) -> None:
        self._recompute_old_paths = recompute_old_paths
        self._extension_rng = rng
        self._workers = int(workers)
        self._extender = None

    @property
    def extender(self) -> ForwardDynamicExtender:
        """The bound dynamic extender (created on first use)."""
        self._check_fitted()
        if self._extender is None:
            self._extender = ForwardDynamicExtender(
                self.model_,
                self.db_,
                recompute_old_paths=self._recompute_old_paths,
                rng=ensure_rng(self._extension_rng),
                engine=self._shared_engine,
            )
            self._shared_engine = self._extender.engine
        return self._extender

    def partial_fit(self, facts: Sequence[Fact]) -> TupleEmbedding:
        return self.extender.extend(facts)

    def notify_inserted(self, facts: Sequence[Fact]) -> None:
        self.extender.notify_inserted(facts)

    def notify_deleted(self, facts: Sequence[Fact]) -> None:
        self.extender.notify_deleted(facts)

    def notify_updated(self, facts: Sequence[Fact]) -> None:
        self.extender.notify_updated(facts)

    # ------------------------------------------------------- serving hooks

    @property
    def tracked_relation(self) -> str | None:
        self._check_fitted()
        return self.model_.relation

    @property
    def supports_on_arrival(self) -> bool:
        # a model restored from disk has no training-time distribution cache;
        # one-by-one extension would silently fall back to the trained centroid
        self._check_fitted()
        return bool(self.model_.distributions)

    def is_trained(self, fact_id: int) -> bool:
        self._check_fitted()
        return int(fact_id) in self.model_.fact_row

    @property
    def embedded_fact_ids(self) -> tuple[int, ...]:
        self._check_fitted()
        return (*self.model_.fact_ids, *self.model_.extended_fact_ids)

    def prime_extension(self) -> None:
        """Warm the extender's per-target batch contexts (serving startup).

        Optional serving hook: the per-target anchor state the batched
        pipeline needs is fact-independent, so the service pays for it once
        before the stream instead of inside the first batch's apply path.
        """
        if self._recompute_old_paths:
            self.extender.prime()

    def recompute_extension(
        self, facts: Sequence[Fact], seed: int | None
    ) -> Mapping[Fact, np.ndarray]:
        extender = self.extender
        extender.rng = ensure_rng(seed)
        facts = list(facts)
        vectors = extender.extend_batch(facts, workers=self._workers)
        updates: dict[Fact, np.ndarray] = {}
        for fact in facts:
            vector = vectors[fact.fact_id]
            self.model_.add_extended(fact, vector)
            updates[fact] = vector
        return updates

    @property
    def engine(self) -> "WalkEngine":
        return self.extender.engine


@register_method(
    "node2vec",
    config=Node2VecConfig,
    aliases={"dim": "dimension", "walks": "walks_per_node", "lr": "learning_rate"},
    summary="Node2Vec adaptation: skip-gram over the fact/value graph "
    "(static fit + aligned continuation of new nodes)",
)
class Node2VecEmbedding(Embedder):
    """The Node2Vec adaptation behind the estimator protocol (Section IV).

    ``fit`` embeds every fact of the database; ``partial_fit`` is the
    *aligned* dynamic extension — skip-gram training continues on walks from
    the new nodes with all old embeddings frozen, so existing vectors stay
    bit-stable.
    """

    name: ClassVar[str] = "node2vec"
    supports_partial_fit: ClassVar[bool] = True

    def __init__(self, config: Node2VecConfig | None = None):
        super().__init__(config or Node2VecConfig())
        self._extender: Node2VecDynamicExtender | None = None
        self._extension_rng: int | np.random.Generator | None = None

    @classmethod
    def from_model(cls, model: Node2VecModel) -> "Node2VecEmbedding":
        """Wrap an already trained :class:`Node2VecModel`."""
        embedder = cls(model.config)
        embedder.model_ = model
        embedder.db_ = model.db
        embedder._trained_fact_ids = frozenset(
            f.fact_id for f in model.db if model.graph.has_fact(f)
        )
        return embedder

    def fit(
        self,
        db: Database,
        relation: str | None = None,
        *,
        rng: int | np.random.Generator | None = None,
        engine: "WalkEngine | None" = None,
    ) -> "Node2VecEmbedding":
        del relation  # Node2Vec embeds every fact of the database
        self.model_ = Node2VecEmbedder(db, self.config, rng=rng, engine=engine).fit()
        self.db_ = db
        self._trained_fact_ids = frozenset(f.fact_id for f in db)
        self._extender = None
        return self

    def transform(self, facts: Iterable[Fact] | None = None) -> TupleEmbedding:
        self._check_fitted()
        return self.model_.embedding(facts)

    def configure_extension(
        self,
        *,
        recompute_old_paths: bool = False,
        rng: int | np.random.Generator | None = None,
        workers: int = 0,
    ) -> None:
        # the model's graph is extended in place, and skip-gram continuation
        # has no parallelisable solve stage
        del recompute_old_paths, workers
        self._extension_rng = rng
        self._extender = None

    def partial_fit(self, facts: Sequence[Fact]) -> TupleEmbedding:
        self._check_fitted()
        if self._extender is None:
            self._extender = Node2VecDynamicExtender(
                self.model_, rng=ensure_rng(self._extension_rng)
            )
        return self._extender.extend(facts)


@register_method(
    "node2vec_retrained",
    config=Node2VecConfig,
    aliases={"dim": "dimension", "walks": "walks_per_node", "lr": "learning_rate"},
    summary="Retrain-from-scratch Node2Vec baseline: partial_fit refits the "
    "whole model (no stability guarantee)",
)
class Node2VecRetrainedEmbedding(Node2VecEmbedding):
    """The retrain-from-scratch baseline the paper's stability claim is against.

    ``partial_fit`` throws the model away and refits on the current database,
    so new facts are embedded at full static quality — but every *old*
    embedding changes too.  Useful as the upper-accuracy / zero-stability
    anchor next to the aligned extension.
    """

    name: ClassVar[str] = "node2vec_retrained"

    @property
    def supports_on_arrival(self) -> bool:
        # every partial_fit produces a *new* embedding space; committing it
        # next to frozen earlier vectors would mix incomparable spaces in
        # one store snapshot, so the serving layer must refuse this method
        return False

    def partial_fit(self, facts: Sequence[Fact]) -> TupleEmbedding:
        self._check_fitted()
        rng = ensure_rng(self._extension_rng)
        self.model_ = Node2VecEmbedder(self.db_, self.config, rng=rng).fit()
        self._extender = None
        return self.transform(facts)

"""Unified estimator API: one protocol, one registry, one way in.

Every embedding method in the system is an :class:`~repro.api.protocol.
Embedder` — ``fit(db, relation) / transform(facts) / partial_fit(batch)`` —
with a typed, validated config dataclass, and is constructed from a string
spec through the method registry::

    from repro.api import make_embedder

    embedder = make_embedder("forward(dimension=64, epochs=10)")
    embedder.fit(db, "TARGET", rng=0)
    vectors = embedder.transform()          # TupleEmbedding
    embedder.partial_fit(new_facts)         # stable dynamic extension

The experiment drivers (:mod:`repro.evaluation`), the online service
(:mod:`repro.service`), the io pipeline's embed step (:mod:`repro.io`) and
the ``python -m repro`` CLI all resolve methods through this registry, so
adding a method is one ``@register_method`` class — see ``docs/API.md``.
"""

from repro.api.embedders import (
    ForwardEmbedding,
    Node2VecEmbedding,
    Node2VecRetrainedEmbedding,
)
from repro.api.protocol import Embedder, NotFittedError
from repro.api.registry import (
    MethodEntry,
    MethodSpecError,
    available_methods,
    make_config,
    make_embedder,
    method_entry,
    method_summaries,
    parse_method_spec,
    register_method,
)

__all__ = [
    "Embedder",
    "NotFittedError",
    "ForwardEmbedding",
    "Node2VecEmbedding",
    "Node2VecRetrainedEmbedding",
    "MethodEntry",
    "MethodSpecError",
    "available_methods",
    "make_config",
    "make_embedder",
    "method_entry",
    "method_summaries",
    "parse_method_spec",
    "register_method",
]

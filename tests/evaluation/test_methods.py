"""Tests for the uniform method interface."""

import pytest

from repro.core import ForwardConfig, Node2VecConfig
from repro.datasets import load_dataset
from repro.evaluation import ForwardMethod, Node2VecMethod, method_by_name


def test_method_by_name():
    assert isinstance(method_by_name("forward"), ForwardMethod)
    assert isinstance(method_by_name("node2vec"), Node2VecMethod)
    with pytest.raises(ValueError):
        method_by_name("unknown")


def test_method_by_name_passes_configs():
    config = ForwardConfig(dimension=7)
    assert method_by_name("forward", forward_config=config).config.dimension == 7
    n2v = Node2VecConfig(dimension=9)
    assert method_by_name("node2vec", node2vec_config=n2v).config.dimension == 9


@pytest.mark.parametrize("name", ["forward", "node2vec"])
def test_fit_embed_extend_round_trip(name, fast_forward_config, fast_node2vec_config):
    dataset = load_dataset("genes", scale=0.05, seed=21)
    method = method_by_name(
        name, forward_config=fast_forward_config, node2vec_config=fast_node2vec_config
    )
    db = dataset.masked_database()
    model = method.fit(db, dataset.prediction_relation, rng=0)
    prediction_facts = db.facts(dataset.prediction_relation)
    embedding = method.embedding(model, prediction_facts)
    assert len(embedding) == len(prediction_facts)
    extender = method.make_extender(model, db, recompute_old_paths=False, rng=0)
    assert extender.extend([]) is not None

"""Tests for the downstream task plumbing (alignment, classifier wrapper)."""

import numpy as np
import pytest

from repro.core import TupleEmbedding
from repro.evaluation.downstream import (
    DownstreamClassifier,
    align_embedding,
    cross_validated_accuracy,
)
from repro.ml import LogisticRegression


@pytest.fixture
def labelled_embedding():
    rng = np.random.default_rng(0)
    embedding = TupleEmbedding(4)
    labels = {}
    for fact_id in range(40):
        label = fact_id % 2
        center = np.full(4, 3.0 * label)
        embedding.set(fact_id, rng.normal(center, 0.4))
        labels[fact_id] = f"class{label}"
    return embedding, labels


def test_align_embedding_joins_by_fact_id(labelled_embedding):
    embedding, labels = labelled_embedding
    data = align_embedding(embedding, labels)
    assert len(data) == 40
    assert data.features.shape == (40, 4)
    assert set(data.labels) == {"class0", "class1"}


def test_align_embedding_skips_missing_labels_or_vectors(labelled_embedding):
    embedding, labels = labelled_embedding
    del labels[0]
    embedding.remove(1)
    data = align_embedding(embedding, labels)
    assert 0 not in data.fact_ids and 1 not in data.fact_ids
    assert len(data) == 38


def test_cross_validated_accuracy_separable(labelled_embedding):
    embedding, labels = labelled_embedding
    data = align_embedding(embedding, labels)
    mean, std = cross_validated_accuracy(data, n_splits=5, rng=0)
    assert mean > 0.9
    assert std >= 0.0


def test_downstream_classifier_train_and_evaluate(labelled_embedding):
    embedding, labels = labelled_embedding
    data = align_embedding(embedding, labels)
    classifier = DownstreamClassifier()
    classifier.train(data)
    assert classifier.accuracy(data) > 0.9


def test_downstream_classifier_custom_model(labelled_embedding):
    embedding, labels = labelled_embedding
    data = align_embedding(embedding, labels)
    classifier = DownstreamClassifier(lambda: LogisticRegression(rng=0))
    classifier.train(data)
    assert classifier.accuracy(data) > 0.9


def test_downstream_classifier_errors(labelled_embedding):
    embedding, labels = labelled_embedding
    classifier = DownstreamClassifier()
    with pytest.raises(RuntimeError):
        classifier.predict(np.zeros((1, 4)))
    with pytest.raises(ValueError):
        classifier.train(align_embedding(TupleEmbedding(4), {}))

"""Tests for the baselines used as comparison anchors."""

import numpy as np

from repro.datasets import load_dataset, make_movies
from repro.evaluation import FlatFeatureBaseline, majority_baseline_accuracy


def test_majority_baseline():
    assert majority_baseline_accuracy(["a", "a", "b"]) == 2 / 3


def test_flat_features_exclude_keys_fks_and_label():
    dataset = make_movies()
    baseline = FlatFeatureBaseline(dataset)
    # MOVIES attributes: mid (key), studio (FK), title, genre (label), budget.
    # Only title (categorical one-hot) and budget (numeric) remain.
    assert baseline._numeric_attrs == ["budget"]
    assert baseline._categorical_attrs == ["title"]


def test_flat_feature_matrix_shape_and_values():
    dataset = make_movies()
    baseline = FlatFeatureBaseline(dataset)
    facts = dataset.prediction_facts()
    features = baseline.features(facts)
    assert features.shape == (6, baseline.num_features)
    # Budget column holds the numeric values.
    assert set(features[:, 0]) == {200.0, 160.0, 150.0, 90.0, 100.0}
    # Each title one-hot row sums to one.
    assert np.allclose(features[:, 1:].sum(axis=1), 1.0)


def test_flat_features_on_mondial_prediction_relation_is_empty():
    """Mondial's TARGET relation has no usable local attributes: the baseline
    collapses to a single zero feature, demonstrating why FK context matters."""
    dataset = load_dataset("mondial", scale=0.05, seed=0)
    baseline = FlatFeatureBaseline(dataset)
    assert baseline.num_features == 0
    features = baseline.features(dataset.prediction_facts()[:5])
    assert features.shape == (5, 1)
    assert np.all(features == 0)


def test_max_categories_cap():
    dataset = load_dataset("world", scale=0.1, seed=0)
    baseline = FlatFeatureBaseline(dataset, max_categories=3)
    for values in baseline._categories.values():
        assert len(values) <= 3

"""Tests for the static and dynamic experiment drivers and reporting."""

import math

import numpy as np
import pytest

from repro.core import ForwardConfig, Node2VecConfig
from repro.datasets import load_dataset
from repro.evaluation import (
    ForwardMethod,
    Node2VecMethod,
    format_dynamic_table,
    format_figure5_series,
    format_static_table,
    format_timing_table,
    run_dynamic_experiment,
    run_ratio_sweep,
    run_static_experiment,
)
from repro.evaluation.timing import dynamic_timing_rows, static_timing_rows


FWD = ForwardMethod(
    ForwardConfig(
        dimension=16, n_samples=400, batch_size=1024, max_walk_length=2, epochs=8,
        learning_rate=0.02, n_new_samples=30,
    )
)
N2V = Node2VecMethod(
    Node2VecConfig(
        dimension=12, walks_per_node=4, walk_length=8, window_size=3,
        negatives_per_positive=4, batch_size=2048, epochs=2, dynamic_epochs=2,
        dynamic_walks_per_node=3,
    )
)


@pytest.fixture(scope="module")
def genes():
    return load_dataset("genes", scale=0.08, seed=23)


@pytest.fixture(scope="module")
def static_results(genes):
    return run_static_experiment(
        genes, [FWD, N2V], n_splits=4, fresh_embedding_per_fold=False, rng=0
    )


@pytest.fixture(scope="module")
def dynamic_results(genes):
    one_by_one = run_dynamic_experiment(
        genes, FWD, ratio_new=0.2, mode="one_by_one", n_runs=2, rng=1
    )
    all_at_once = run_dynamic_experiment(
        genes, N2V, ratio_new=0.2, mode="all_at_once", n_runs=1, rng=1
    )
    return [one_by_one, all_at_once]


class TestStaticExperiment:
    def test_one_result_per_method_plus_baselines(self, static_results):
        methods = [r.method for r in static_results]
        assert methods == ["forward", "node2vec", "flat_baseline", "majority_baseline"]

    def test_accuracies_are_valid_probabilities(self, static_results):
        for result in static_results:
            assert 0.0 <= result.accuracy_mean <= 1.0
            assert result.accuracy_std >= 0.0

    def test_embeddings_beat_majority_baseline(self, static_results):
        by_method = {r.method: r for r in static_results}
        majority = by_method["majority_baseline"].accuracy_mean
        assert by_method["node2vec"].accuracy_mean > majority
        assert by_method["forward"].accuracy_mean > majority

    def test_training_time_recorded(self, static_results):
        by_method = {r.method: r for r in static_results}
        assert by_method["forward"].train_seconds > 0
        assert by_method["node2vec"].train_seconds > 0

    def test_fresh_embedding_per_fold_protocol(self, genes):
        results = run_static_experiment(
            genes, [FWD], n_splits=3, fresh_embedding_per_fold=True,
            include_baselines=False, rng=2,
        )
        assert len(results) == 1
        assert len(results[0].fold_accuracies) == 3

    def test_static_table_rendering(self, static_results):
        table = format_static_table(static_results)
        assert "genes" in table and "forward" in table and "%" in table

    def test_static_timing_rows(self, static_results):
        rows = static_timing_rows(static_results)
        assert {row["method"] for row in rows} == {"forward", "node2vec"}


class TestDynamicExperiment:
    def test_result_fields(self, dynamic_results):
        for result in dynamic_results:
            assert 0.0 <= result.accuracy_mean <= 1.0
            assert result.seconds_per_new_tuple_mean > 0
            assert result.static_train_seconds_mean > 0
            assert result.runs

    def test_stability_holds_in_every_run(self, dynamic_results):
        for result in dynamic_results:
            for run in result.runs:
                assert run.max_drift == 0.0

    def test_invalid_mode_rejected(self, genes):
        with pytest.raises(ValueError):
            run_dynamic_experiment(genes, FWD, mode="bogus", n_runs=1, rng=0)

    def test_dynamic_table_rendering(self, dynamic_results):
        table = format_dynamic_table(dynamic_results)
        assert "one_by_one" in table and "all_at_once" in table

    def test_timing_tables(self, dynamic_results):
        static_table = format_timing_table(dynamic_results, per_tuple=False)
        per_tuple_table = format_timing_table(dynamic_results, per_tuple=True)
        assert "static seconds" in static_table
        assert "sec/new tuple" in per_tuple_table
        rows = dynamic_timing_rows(dynamic_results)
        assert all(row["seconds_per_new_tuple"] > 0 for row in rows)


class TestRatioSweep:
    def test_sweep_shapes_and_rendering(self, genes):
        sweep = run_ratio_sweep(
            genes, [FWD], ratios=(0.2, 0.5), mode="one_by_one", n_runs=1, rng=3
        )
        assert sweep.ratios == (0.2, 0.5)
        assert set(sweep.series) == {"forward", "baseline"}
        assert len(sweep.series["forward"]) == 2
        assert all(not math.isnan(v) for v in sweep.series["forward"])
        rendering = format_figure5_series(sweep)
        assert "Ratio" in rendering and "forward" in rendering

"""Tests for the synthetic benchmark dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_BUILDERS,
    dataset_structure_rows,
    format_table_i,
    list_datasets,
    load_dataset,
)
from repro.datasets.registry import PAPER_DATASETS

SMALL_SCALE = 0.05

EXPECTED_SHAPE = {
    # dataset: (prediction relation, prediction attribute, #relations, #classes)
    "hepatitis": ("DISPAT", "type", 7, 2),
    "genes": ("CLASSIFICATION", "localization", 3, 15),
    "mutagenesis": ("MOLECULE", "mutagenic", 3, 2),
    "world": ("COUNTRY", "continent", 3, 7),
    "mondial": ("TARGET", "target", 40, 2),
}


@pytest.fixture(scope="module")
def small_datasets():
    return {name: load_dataset(name, scale=SMALL_SCALE, seed=1) for name in PAPER_DATASETS}


class TestRegistry:
    def test_all_paper_datasets_available(self):
        assert set(PAPER_DATASETS) <= set(list_datasets())
        assert "movies" in list_datasets()

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("does-not-exist")

    def test_builders_are_callable(self):
        for builder in DATASET_BUILDERS.values():
            assert callable(builder)


class TestStructure:
    @pytest.mark.parametrize("name", PAPER_DATASETS)
    def test_prediction_task_shape(self, small_datasets, name):
        dataset = small_datasets[name]
        relation, attribute, num_relations, num_classes = EXPECTED_SHAPE[name]
        assert dataset.prediction_relation == relation
        assert dataset.prediction_attribute == attribute
        assert len(dataset.db.schema) == num_relations
        assert len(dataset.class_distribution()) <= num_classes

    @pytest.mark.parametrize("name", PAPER_DATASETS)
    def test_foreign_keys_satisfied(self, small_datasets, name):
        assert small_datasets[name].db.check_foreign_keys() == []

    @pytest.mark.parametrize("name", PAPER_DATASETS)
    def test_every_prediction_fact_is_labelled(self, small_datasets, name):
        dataset = small_datasets[name]
        assert len(dataset.labels()) == dataset.db.num_facts(dataset.prediction_relation)

    @pytest.mark.parametrize("name", PAPER_DATASETS)
    def test_masked_database_hides_labels_and_keeps_ids(self, small_datasets, name):
        dataset = small_datasets[name]
        masked = dataset.masked_database()
        for fact in masked.facts(dataset.prediction_relation):
            assert fact[dataset.prediction_attribute] is None
        assert {f.fact_id for f in masked} == {f.fact_id for f in dataset.db}

    def test_scale_controls_size(self):
        small = load_dataset("world", scale=0.05, seed=0)
        larger = load_dataset("world", scale=0.2, seed=0)
        assert len(larger.db) > len(small.db)

    def test_generation_is_reproducible(self):
        first = load_dataset("genes", scale=SMALL_SCALE, seed=9)
        second = load_dataset("genes", scale=SMALL_SCALE, seed=9)
        assert first.structure_summary() == second.structure_summary()
        assert first.class_distribution() == second.class_distribution()

    def test_different_seeds_differ(self):
        first = load_dataset("genes", scale=SMALL_SCALE, seed=1)
        second = load_dataset("genes", scale=SMALL_SCALE, seed=2)
        assert first.class_distribution() != second.class_distribution()


class TestFullScaleShape:
    """At scale=1.0 the structure approximates Table I (generation is cheap
    for the two smallest datasets; the others are covered at reduced scale)."""

    def test_genes_full_scale_matches_table_i(self):
        dataset = load_dataset("genes", scale=1.0, seed=0)
        summary = dataset.structure_summary()
        assert summary["samples"] == 862
        assert summary["relations"] == 3
        assert summary["attributes"] == 14
        assert 5000 <= summary["tuples"] <= 7000

    def test_world_full_scale_matches_table_i(self):
        dataset = load_dataset("world", scale=1.0, seed=0)
        summary = dataset.structure_summary()
        assert summary["samples"] == 239
        assert summary["relations"] == 3
        assert 4500 <= summary["tuples"] <= 6500


class TestSummaryTable:
    def test_rows_and_rendering(self, small_datasets):
        rows = dataset_structure_rows(small_datasets.values())
        assert len(rows) == len(PAPER_DATASETS)
        table = format_table_i(rows)
        for name in PAPER_DATASETS:
            assert name in table
        assert "#Relations" in table


class TestSignalPlacement:
    @pytest.mark.parametrize("name", ["genes", "world", "mondial"])
    def test_class_signal_reachable_through_foreign_keys(self, small_datasets, name):
        """At least one FK-reachable attribute must correlate with the class;
        this is the property the paper's experiments rely on."""
        dataset = small_datasets[name]
        labels = dataset.labels()
        db = dataset.db
        schema = db.schema
        # Collect, per prediction fact, the multiset of values of attributes in
        # directly referencing relations (one backward FK step).
        correlated = False
        for fk in schema.foreign_keys_to(dataset.prediction_relation):
            for attr in schema.non_fk_attributes(fk.source):
                by_label: dict = {}
                for fact in db.facts(dataset.prediction_relation):
                    referencing = db.referencing_facts(fact, fk)
                    values = tuple(sorted(str(r[attr.name]) for r in referencing))
                    by_label.setdefault(labels[fact.fact_id], []).append(values)
                if len(by_label) > 1:
                    correlated = True
        # For datasets whose prediction relation is referenced by others the
        # loop found candidate attributes; the detailed statistical check is
        # done end-to-end by the embedding-quality tests.
        prediction_is_referenced = bool(schema.foreign_keys_to(dataset.prediction_relation))
        fk_from_prediction = bool(schema.foreign_keys_from(dataset.prediction_relation))
        assert correlated or not prediction_is_referenced or fk_from_prediction

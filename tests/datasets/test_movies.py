"""Tests for the Figure-2 running example."""

from repro.datasets import make_movies
from repro.datasets.movies import movies_database


def test_counts_match_figure_2():
    db = movies_database()
    assert db.num_facts("MOVIES") == 6
    assert db.num_facts("ACTORS") == 5
    assert db.num_facts("STUDIOS") == 3
    assert db.num_facts("COLLABORATIONS") == 4


def test_foreign_keys_satisfied():
    assert movies_database().check_foreign_keys() == []


def test_godzilla_genre_is_null():
    db = movies_database()
    assert db.lookup_by_key("MOVIES", ["m03"])["genre"] is None


def test_example_2_1_studio_reference():
    """m1 (Titanic) references s3 (Paramount) via MOVIES[studio] ⊆ STUDIOS[sid]."""
    db = movies_database()
    fk = db.schema.foreign_keys_from("MOVIES")[0]
    titanic = db.lookup_by_key("MOVIES", ["m01"])
    assert db.referenced_fact(titanic, fk)["name"] == "Paramount"


def test_dataset_wrapper():
    dataset = make_movies()
    assert dataset.prediction_relation == "MOVIES"
    assert dataset.prediction_attribute == "genre"
    # The null genre of Godzilla is not a labelled sample.
    assert len(dataset.labels()) == 5
    assert dataset.class_distribution()["SciFi"] == 2

"""Importable smoke tests for every script in ``examples/``.

Each example is imported from its file and its ``main`` is run in-process
with reduced sizes, so an example that drifts from the library API fails
the test suite instead of rotting silently.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.core import ForwardConfig, Node2VecConfig

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

TINY_FORWARD = ForwardConfig(
    dimension=8, n_samples=60, batch_size=128, max_walk_length=1, epochs=2,
    learning_rate=0.02, n_new_samples=10,
)
TINY_NODE2VEC = Node2VecConfig(
    dimension=8, walks_per_node=2, walk_length=5, window_size=2,
    negatives_per_positive=2, batch_size=512, epochs=1, dynamic_epochs=1,
    dynamic_walks_per_node=2,
)

#: Example module -> reduced-size kwargs for its ``main``.
EXAMPLES: dict[str, dict] = {
    "quickstart": {},
    "custom_database": {},
    "dataset_catalog": {"scale": 0.04},
    "dynamic_insertion": {"scale": 0.06, "config": TINY_FORWARD},
    "method_comparison": {
        "scale": 0.12,
        "n_splits": 2,
        "n_runs": 1,
        "forward_config": TINY_FORWARD,
        "node2vec_config": TINY_NODE2VEC,
    },
    "streaming_service": {"scale": 0.06, "config": TINY_FORWARD},
    "ingest_csv": {"config": TINY_FORWARD},
    "unified_api": {
        "scale": 0.06,
        "spec": "forward(dimension=8, n_samples=60, batch_size=128, "
        "max_walk_length=1, epochs=2, n_new_samples=10)",
    },
}


def _load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


def test_every_example_is_covered():
    """A new example must be added to the smoke-test table."""
    on_disk = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES)


@pytest.mark.parametrize("name", sorted(EXAMPLES))
def test_example_runs(name, capsys):
    module = _load_example(name)
    module.main(**EXAMPLES[name])
    out = capsys.readouterr().out
    assert out.strip()  # every example narrates what it did

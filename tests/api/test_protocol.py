"""Protocol conformance and exact equivalence with the legacy core classes.

The acceptance bar of the API refactor: everything reachable through
``make_embedder(...)`` must reproduce the pre-refactor core paths *exactly*
(the same seed gives bit-identical embeddings), and the protocol's dynamic
surface (``partial_fit``) must match the raw extenders.
"""

import numpy as np
import pytest

from repro.api import (
    ForwardEmbedding,
    Node2VecEmbedding,
    NotFittedError,
    make_embedder,
)
from repro.core.forward import ForwardEmbedder
from repro.core.forward_dynamic import ForwardDynamicExtender
from repro.core.node2vec import Node2VecEmbedder
from repro.datasets import load_dataset
from repro.dynamic import partition_dataset

SEED = 13


@pytest.fixture(scope="module")
def genes():
    return load_dataset("genes", scale=0.06, seed=7)


def _max_abs_diff(a, b):
    assert set(a.fact_ids) == set(b.fact_ids)
    return max(
        float(np.max(np.abs(a.vector(fid) - b.vector(fid)))) for fid in a.fact_ids
    )


class TestForwardEquivalence:
    def test_fit_matches_legacy_embedder_exactly(self, genes, fast_forward_config):
        db_legacy = genes.masked_database()
        legacy = ForwardEmbedder(
            db_legacy, genes.prediction_relation, fast_forward_config, rng=SEED
        ).fit()

        embedder = ForwardEmbedding(fast_forward_config)
        embedder.fit(genes.masked_database(), genes.prediction_relation, rng=SEED)

        diff = _max_abs_diff(legacy.embedding(), embedder.transform())
        assert diff <= 1e-12  # in fact bit-identical
        assert diff == 0.0

    def test_two_fits_of_the_same_spec_are_bit_identical(self, genes):
        spec = "forward(dimension=12, n_samples=120, batch_size=256, epochs=3, lr=0.02)"
        runs = []
        for _ in range(2):
            embedder = make_embedder(spec)
            embedder.fit(genes.masked_database(), genes.prediction_relation, rng=SEED)
            runs.append(embedder.transform())
        assert _max_abs_diff(*runs) == 0.0

    def test_partial_fit_matches_legacy_extender_exactly(
        self, genes, fast_forward_config
    ):
        results = []
        for use_api in (False, True):
            partition = partition_dataset(genes, ratio_new=0.2, rng=SEED)
            model = ForwardEmbedder(
                partition.db, genes.prediction_relation, fast_forward_config, rng=SEED
            ).fit()
            new_facts = [f for batch in reversed(partition.new_batches)
                         for f in reversed(batch)]
            for fact in new_facts:
                partition.db.reinsert(fact)
            if use_api:
                embedder = ForwardEmbedding.from_model(model, partition.db)
                embedder.configure_extension(recompute_old_paths=True, rng=SEED)
                embedder.notify_inserted(new_facts)
                results.append(embedder.partial_fit(new_facts))
            else:
                extender = ForwardDynamicExtender(
                    model, partition.db, recompute_old_paths=True, rng=SEED
                )
                extender.notify_inserted(new_facts)
                results.append(extender.extend(new_facts))
        assert len(results[0]) > 0
        assert _max_abs_diff(*results) == 0.0

    def test_transform_restricts_to_requested_facts(self, genes, fast_forward_config):
        embedder = ForwardEmbedding(fast_forward_config)
        db = genes.masked_database()
        embedder.fit(db, genes.prediction_relation, rng=SEED)
        some = db.facts(genes.prediction_relation)[:3]
        restricted = embedder.transform(some)
        assert len(restricted) == 3
        assert set(restricted.fact_ids) == {f.fact_id for f in some}

    def test_fit_requires_a_relation(self, genes, fast_forward_config):
        with pytest.raises(ValueError, match="fit\\(db, relation\\)"):
            ForwardEmbedding(fast_forward_config).fit(genes.masked_database())

    def test_capabilities(self, genes, fast_forward_config):
        embedder = ForwardEmbedding(fast_forward_config)
        assert embedder.supports_partial_fit and embedder.supports_recompute
        embedder.fit(genes.masked_database(), genes.prediction_relation, rng=SEED)
        assert embedder.supports_on_arrival  # fresh fit has distributions
        assert embedder.tracked_relation == genes.prediction_relation
        assert embedder.dimension == fast_forward_config.dimension
        trained = embedder.embedded_fact_ids
        assert trained and all(embedder.is_trained(fid) for fid in trained)


class TestNode2VecEquivalence:
    def test_fit_matches_legacy_embedder_exactly(self, genes, fast_node2vec_config):
        legacy = Node2VecEmbedder(
            genes.masked_database(), fast_node2vec_config, rng=SEED
        ).fit()
        embedder = Node2VecEmbedding(fast_node2vec_config)
        embedder.fit(genes.masked_database(), rng=SEED)
        assert _max_abs_diff(legacy.embedding(), embedder.transform()) == 0.0

    def test_partial_fit_embeds_new_facts_and_freezes_old(
        self, genes, fast_node2vec_config
    ):
        partition = partition_dataset(genes, ratio_new=0.15, rng=SEED)
        embedder = Node2VecEmbedding(fast_node2vec_config)
        embedder.fit(partition.db, rng=SEED)
        before = embedder.transform()
        embedder.configure_extension(rng=SEED)
        new_facts = [f for batch in reversed(partition.new_batches)
                     for f in reversed(batch)]
        for fact in new_facts:
            partition.db.reinsert(fact)
        extended = embedder.partial_fit(new_facts)
        assert len(extended) == len(new_facts)
        after = embedder.transform()
        for fid in before.fact_ids:  # old embeddings are frozen (stability)
            np.testing.assert_array_equal(before.vector(fid), after.vector(fid))

    def test_retrained_variant_moves_old_embeddings(self, genes, fast_node2vec_config):
        partition = partition_dataset(genes, ratio_new=0.15, rng=SEED)
        embedder = make_embedder("node2vec_retrained")
        embedder.config = fast_node2vec_config
        embedder.fit(partition.db, rng=SEED)
        before = embedder.transform()
        embedder.configure_extension(rng=SEED + 1)
        new_facts = [f for batch in reversed(partition.new_batches)
                     for f in reversed(batch)]
        for fact in new_facts:
            partition.db.reinsert(fact)
        extended = embedder.partial_fit(new_facts)
        assert len(extended) == len(new_facts)
        after = embedder.transform()
        moved = any(
            not np.array_equal(before.vector(fid), after.vector(fid))
            for fid in before.fact_ids
        )
        assert moved  # no stability guarantee: the whole model was refit


class TestProtocolErrors:
    def test_unfitted_transform_raises(self, fast_forward_config):
        with pytest.raises(NotFittedError, match="not fitted"):
            ForwardEmbedding(fast_forward_config).transform()

    def test_unfitted_partial_fit_raises(self, fast_node2vec_config):
        with pytest.raises(NotFittedError):
            Node2VecEmbedding(fast_node2vec_config).partial_fit([])

    def test_node2vec_does_not_support_recompute(self, fast_node2vec_config):
        embedder = Node2VecEmbedding(fast_node2vec_config)
        assert not embedder.supports_recompute
        with pytest.raises(NotImplementedError, match="recompute"):
            embedder.recompute_extension([], seed=0)
